//! Deterministic causal spans and trace reconstruction.
//!
//! A *span* is a long-lived activity with a virtual-time start and end:
//! a sprint episode on one slot, a lease lifecycle (grant → renew →
//! lapse/release), one control-RPC round trip, a coordinator's term in
//! office, or a scheduled partition window. Spans are recorded through
//! the ordinary [`FlightRecorder`] as [`EventKind::SpanOpened`] /
//! [`EventKind::SpanClosed`] events, and causal edges between them as
//! [`EventKind::CauseLinked`] — so tracing inherits every house rule of
//! the recorder: it is off by default, draws no randomness, schedules
//! nothing, and stores only integers. Span ids are derived from the
//! run's root seed plus per-emitter sequence counters, so a replay of
//! the same spec produces a bit-identical trace.
//!
//! A [`TraceCtx`] (trace id + parent span id) rides *beside* simulated
//! network envelopes — correlation state only, never consulted by the
//! simulation — so a dropped renewal on node 7 links back to the
//! partition window that ate it and forward to the force-unsprint it
//! triggered.
//!
//! After a run, [`TraceGraph::from_telemetry`] reconstructs the span
//! tree and cause chains from one or more recorded telemetry parts
//! (the fleet recorder plus every per-node recorder). Reconstruction
//! is total: spans whose close event was evicted from the bounded ring
//! (or never emitted) are closed at the trace horizon with a
//! `truncated` marker, orphan closes are counted and skipped, and
//! cycles in the cause links are broken by a visited set — a trace
//! storm can lose data but can never panic the reader.

use crate::event::EventKind;
use crate::recorder::RunTelemetry;
use simcore::table::TextTable;
use std::collections::{BTreeMap, BTreeSet};

/// What kind of long-lived activity a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One sprint on one slot, engage → unsprint.
    SprintEpisode,
    /// One lease held by a node, grant → renewals → lapse/release.
    LeaseLifecycle,
    /// One control-plane RPC round trip, send → grant/deny/timeout.
    ControlRpc,
    /// One coordinator's term as primary, election → step-down/crash.
    CoordinatorTerm,
    /// One scheduled fleet partition window, start → heal.
    PartitionWindow,
}

impl SpanKind {
    /// All kinds, in rendering order.
    pub const ALL: [SpanKind; 5] = [
        SpanKind::SprintEpisode,
        SpanKind::LeaseLifecycle,
        SpanKind::ControlRpc,
        SpanKind::CoordinatorTerm,
        SpanKind::PartitionWindow,
    ];

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::SprintEpisode => "sprint-episode",
            SpanKind::LeaseLifecycle => "lease-lifecycle",
            SpanKind::ControlRpc => "control-rpc",
            SpanKind::CoordinatorTerm => "coordinator-term",
            SpanKind::PartitionWindow => "partition-window",
        }
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Sprint episode: the sprinted query completed normally.
    Completed,
    /// Sprint episode: the budget ran dry mid-sprint.
    BudgetDry,
    /// Sprint episode: the watchdog force-unsprinted it.
    Watchdog,
    /// Sprint episode: a thermal emergency unsprinted it.
    Thermal,
    /// Sprint episode: the executing slot crashed.
    Crash,
    /// Sprint episode: the node's fleet lease lapsed mid-sprint.
    LeaseLapsed,
    /// Control RPC: the coordinator granted (or renewed) the lease.
    Granted,
    /// Control RPC: the coordinator denied the request.
    Denied,
    /// Control RPC: no reply before the retry timeout.
    TimedOut,
    /// Lease lifecycle: released voluntarily at node completion.
    Released,
    /// Lease lifecycle: expired unrenewed (fail-safe unsprint).
    Lapsed,
    /// Coordinator term: self-fenced on peer-ack starvation.
    SteppedDown,
    /// Coordinator term: the coordinator crashed in office.
    Crashed,
    /// Partition window: the scheduled window elapsed.
    Healed,
    /// Synthesized at reconstruction: the close event was never seen
    /// (still open at the horizon, or evicted from the bounded ring).
    Truncated,
}

impl SpanOutcome {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::Completed => "completed",
            SpanOutcome::BudgetDry => "budget-dry",
            SpanOutcome::Watchdog => "watchdog",
            SpanOutcome::Thermal => "thermal",
            SpanOutcome::Crash => "crash",
            SpanOutcome::LeaseLapsed => "lease-lapsed",
            SpanOutcome::Granted => "granted",
            SpanOutcome::Denied => "denied",
            SpanOutcome::TimedOut => "timed-out",
            SpanOutcome::Released => "released",
            SpanOutcome::Lapsed => "lapsed",
            SpanOutcome::SteppedDown => "stepped-down",
            SpanOutcome::Crashed => "crashed",
            SpanOutcome::Healed => "healed",
            SpanOutcome::Truncated => "truncated",
        }
    }

    /// Maps an unsprint reason onto the sprint-episode outcome.
    pub fn from_unsprint(reason: crate::event::UnsprintReason) -> SpanOutcome {
        use crate::event::UnsprintReason as R;
        match reason {
            R::Completed => SpanOutcome::Completed,
            R::BudgetDry => SpanOutcome::BudgetDry,
            R::Watchdog => SpanOutcome::Watchdog,
            R::Thermal => SpanOutcome::Thermal,
            R::Crash => SpanOutcome::Crash,
            R::LeaseLapsed => SpanOutcome::LeaseLapsed,
        }
    }

    /// Whether this outcome is a *forced* unsprint — the control plane
    /// stopped the sprint rather than the sprint finishing on its own.
    pub fn is_forced_unsprint(self) -> bool {
        matches!(
            self,
            SpanOutcome::Watchdog | SpanOutcome::Thermal | SpanOutcome::LeaseLapsed
        )
    }
}

/// Why one span (the effect) was perturbed: the typed label on a
/// [`EventKind::CauseLinked`] edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CauseReason {
    /// A control message was randomly dropped.
    MessageDrop,
    /// A control message was delivered late.
    MessageDelay,
    /// A partition (link- or fleet-level) ate the message.
    Partition,
    /// A lease-RPC round trip hit its retry timeout.
    RenewalTimeout,
    /// A lease lapsed, forcing the dependent sprint down.
    LeaseLapse,
    /// A coordinator crash triggered the effect.
    CoordinatorCrash,
}

impl CauseReason {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            CauseReason::MessageDrop => "message-drop",
            CauseReason::MessageDelay => "message-delay",
            CauseReason::Partition => "partition",
            CauseReason::RenewalTimeout => "renewal-timeout",
            CauseReason::LeaseLapse => "lease-lapse",
            CauseReason::CoordinatorCrash => "coordinator-crash",
        }
    }
}

/// Trace correlation state carried *beside* a simulated message: the
/// run's trace id plus the span the message belongs to. Pure
/// observation — the simulation never reads it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Run-wide trace id (derived from the root seed).
    pub trace: u64,
    /// Parent span the message is part of (0 = none).
    pub span: u64,
}

/// One reconstructed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Span id (unique within the trace).
    pub id: u64,
    /// Activity kind.
    pub kind: SpanKind,
    /// Node the span belongs to (coordinator index for terms,
    /// `u32::MAX` for fleet-global spans like partition windows).
    pub node: u32,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Virtual open time, microseconds.
    pub open_us: u64,
    /// Virtual close time, microseconds (>= `open_us`).
    pub close_us: u64,
    /// How it ended ([`SpanOutcome::Truncated`] when synthesized).
    pub outcome: SpanOutcome,
    /// Whether the close was synthesized at reconstruction.
    pub truncated: bool,
}

impl Span {
    /// Virtual duration, microseconds.
    pub fn duration_us(&self) -> u64 {
        self.close_us.saturating_sub(self.open_us)
    }
}

/// One reconstructed causal edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CauseLink {
    /// Virtual time the edge was recorded, microseconds.
    pub at_us: u64,
    /// Span that was perturbed.
    pub effect: u64,
    /// Span that caused it (0 = no recorded cause span; the reason is
    /// the root).
    pub cause: u64,
    /// Typed reason.
    pub reason: CauseReason,
}

/// One step of a rendered cause chain: a reason plus how many
/// consecutive links of that reason hit the same effect span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainStep {
    /// The reason on this hop.
    pub reason: CauseReason,
    /// Consecutive same-reason links collapsed into this step.
    pub count: usize,
}

/// A cause chain walked backwards from a final effect span to its
/// root: `force-unsprint <- lease-lapse <- 3x renewal-timeout <-
/// partition`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CauseChain {
    /// The final effect span (chain head).
    pub effect: u64,
    /// The head span's kind.
    pub kind: SpanKind,
    /// Node the head span belongs to.
    pub node: u32,
    /// Steps, effect-first.
    pub steps: Vec<ChainStep>,
    /// The deepest cause span reached (0 = chain roots in a reason
    /// with no recorded span).
    pub anchor: u64,
    /// Kind of the anchor span, when present.
    pub anchor_kind: Option<SpanKind>,
}

impl CauseChain {
    /// The root cause: the reason on the deepest step.
    pub fn root_cause(&self) -> Option<CauseReason> {
        self.steps.last().map(|s| s.reason)
    }

    /// Renders the chain head label: forced unsprints read as
    /// `force-unsprint`, everything else as `kind:outcome`.
    pub fn head_label(&self, head_outcome: SpanOutcome) -> String {
        if self.kind == SpanKind::SprintEpisode && head_outcome.is_forced_unsprint() {
            "force-unsprint".to_string()
        } else {
            format!("{}:{}", self.kind.name(), head_outcome.name())
        }
    }

    /// Renders `head <- step <- ... <- anchor-kind`.
    pub fn render(&self, head_outcome: SpanOutcome) -> String {
        let mut parts = vec![self.head_label(head_outcome)];
        for s in &self.steps {
            if s.count > 1 {
                parts.push(format!("{}x {}", s.count, s.reason.name()));
            } else {
                parts.push(s.reason.name().to_string());
            }
        }
        if let Some(k) = self.anchor_kind {
            parts.push(k.name().to_string());
        }
        parts.join(" <- ")
    }
}

/// Exact per-kind duration statistics over the reconstructed spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanKindStats {
    /// Span kind.
    pub kind: SpanKind,
    /// Spans of this kind.
    pub count: usize,
    /// Median virtual duration, microseconds.
    pub p50_us: u64,
    /// 99th-percentile virtual duration, microseconds.
    pub p99_us: u64,
    /// Longest virtual duration, microseconds.
    pub max_us: u64,
    /// Total virtual duration, microseconds.
    pub sum_us: u64,
}

/// One entry of the critical-path breakdown: a slow sprint decision and
/// the cause chain that explains it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPathEntry {
    /// The slow sprint-episode span.
    pub span: Span,
    /// Its cause chain, when any link targets it (directly or through
    /// its lease parent).
    pub chain: Option<CauseChain>,
}

/// The reconstructed causal graph of one run.
#[derive(Debug, Clone, Default)]
pub struct TraceGraph {
    spans: BTreeMap<u64, Span>,
    links: Vec<CauseLink>,
    /// Events evicted from the source rings (spans may be missing).
    pub dropped: u64,
    /// Close events whose open was never seen (evicted), skipped.
    pub orphan_closes: u64,
    /// Latest event time seen, microseconds (the truncation horizon).
    pub end_us: u64,
}

impl TraceGraph {
    /// Reconstructs the graph from recorded telemetry parts (e.g. the
    /// fleet recorder plus every per-node recorder). Total: never
    /// panics on truncated or disordered input.
    pub fn from_telemetry(parts: &[&RunTelemetry]) -> TraceGraph {
        let mut g = TraceGraph::default();
        for t in parts {
            g.dropped += t.dropped();
            for e in t.events() {
                g.end_us = g.end_us.max(e.at.0);
                match e.kind {
                    EventKind::SpanOpened {
                        span,
                        parent,
                        kind,
                        node,
                    } => {
                        g.spans.insert(
                            span,
                            Span {
                                id: span,
                                kind,
                                node,
                                parent,
                                open_us: e.at.0,
                                close_us: e.at.0,
                                outcome: SpanOutcome::Truncated,
                                truncated: true,
                            },
                        );
                    }
                    EventKind::SpanClosed { span, outcome } => match g.spans.get_mut(&span) {
                        Some(s) => {
                            s.close_us = s.open_us.max(e.at.0);
                            s.outcome = outcome;
                            s.truncated = false;
                        }
                        None => g.orphan_closes += 1,
                    },
                    EventKind::CauseLinked {
                        effect,
                        cause,
                        reason,
                    } => g.links.push(CauseLink {
                        at_us: e.at.0,
                        effect,
                        cause,
                        reason,
                    }),
                    _ => {}
                }
            }
        }
        // Spans never closed (still open, or close evicted): close at
        // the horizon with the truncated marker.
        let end = g.end_us;
        for s in g.spans.values_mut() {
            if s.truncated {
                s.close_us = end.max(s.open_us);
            }
        }
        g
    }

    /// All spans, id-ascending.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.values()
    }

    /// Number of reconstructed spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the graph holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Looks up one span.
    pub fn span(&self, id: u64) -> Option<&Span> {
        self.spans.get(&id)
    }

    /// All cause links, in recording order.
    pub fn links(&self) -> &[CauseLink] {
        &self.links
    }

    fn incoming(&self, span: u64) -> Vec<&CauseLink> {
        self.links.iter().filter(|l| l.effect == span).collect()
    }

    /// Walks one chain backwards from `head`. Cycles are broken by a
    /// visited set; a missing cause span terminates the walk.
    fn walk(&self, head: u64) -> CauseChain {
        let (kind, node) = self
            .spans
            .get(&head)
            .map_or((SpanKind::SprintEpisode, u32::MAX), |s| (s.kind, s.node));
        let mut chain = CauseChain {
            effect: head,
            kind,
            node,
            steps: Vec::new(),
            anchor: 0,
            anchor_kind: None,
        };
        let mut visited = BTreeSet::new();
        visited.insert(head);
        let mut current = head;
        loop {
            let incoming = self.incoming(current);
            if incoming.is_empty() {
                break;
            }
            // Collapse consecutive same-reason links into counted steps.
            for l in &incoming {
                match chain.steps.last_mut() {
                    Some(step) if step.reason == l.reason => step.count += 1,
                    _ => chain.steps.push(ChainStep {
                        reason: l.reason,
                        count: 1,
                    }),
                }
            }
            // Descend into the deepest recorded cause span not yet
            // visited. Prefer a cause that itself has recorded causes
            // (it explains further back), and among those the latest:
            // e.g. of five timed-out renewals, follow one whose drop
            // was attributed to a partition, not one the coordinator
            // merely ignored. Fall back to the latest cause span.
            let explains = |span: u64| self.links.iter().any(|l| l.effect == span);
            let candidates: Vec<u64> = incoming
                .iter()
                .rev()
                .filter(|l| l.cause != 0 && !visited.contains(&l.cause))
                .map(|l| l.cause)
                .collect();
            let next = candidates
                .iter()
                .find(|&&c| explains(c))
                .or_else(|| candidates.first())
                .copied();
            match next {
                Some(c) => {
                    visited.insert(c);
                    chain.anchor = c;
                    chain.anchor_kind = self.spans.get(&c).map(|s| s.kind);
                    current = c;
                }
                None => break,
            }
        }
        chain
    }

    /// All cause chains: one per *head* span — a span that appears as
    /// an effect but never as a cause — id-ascending.
    pub fn chains(&self) -> Vec<CauseChain> {
        let causes: BTreeSet<u64> = self.links.iter().map(|l| l.cause).collect();
        let heads: BTreeSet<u64> = self
            .links
            .iter()
            .map(|l| l.effect)
            .filter(|e| !causes.contains(e))
            .collect();
        heads.into_iter().map(|h| self.walk(h)).collect()
    }

    /// The most frequent root cause across all chains (ties broken by
    /// reason order, so the answer is deterministic).
    pub fn dominant_root_cause(&self) -> Option<CauseReason> {
        let mut counts: BTreeMap<CauseReason, usize> = BTreeMap::new();
        for chain in self.chains() {
            if let Some(r) = chain.root_cause() {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(r, n)| (n, std::cmp::Reverse(r)))
            .map(|(r, _)| r)
    }

    /// Exact duration statistics per span kind (kinds with no spans are
    /// omitted), in [`SpanKind::ALL`] order.
    pub fn kind_stats(&self) -> Vec<SpanKindStats> {
        let mut out = Vec::new();
        for kind in SpanKind::ALL {
            let mut durs: Vec<u64> = self
                .spans
                .values()
                .filter(|s| s.kind == kind)
                .map(Span::duration_us)
                .collect();
            if durs.is_empty() {
                continue;
            }
            durs.sort_unstable();
            let q = |p: f64| -> u64 {
                let idx = ((p * durs.len() as f64).ceil() as usize).clamp(1, durs.len()) - 1;
                durs[idx]
            };
            out.push(SpanKindStats {
                kind,
                count: durs.len(),
                p50_us: q(0.50),
                p99_us: q(0.99),
                max_us: durs[durs.len() - 1],
                sum_us: durs.iter().sum(),
            });
        }
        out
    }

    /// The `top` slowest sprint episodes with the chain that explains
    /// each (directly, or through the episode's parent span).
    pub fn critical_path(&self, top: usize) -> Vec<CriticalPathEntry> {
        let mut episodes: Vec<&Span> = self
            .spans
            .values()
            .filter(|s| s.kind == SpanKind::SprintEpisode)
            .collect();
        episodes.sort_by_key(|s| (std::cmp::Reverse(s.duration_us()), s.id));
        episodes
            .into_iter()
            .take(top)
            .map(|s| {
                let direct = !self.incoming(s.id).is_empty();
                let via_parent = s.parent != 0 && !self.incoming(s.parent).is_empty();
                let chain = if direct {
                    Some(self.walk(s.id))
                } else if via_parent {
                    Some(self.walk(s.parent))
                } else {
                    None
                };
                CriticalPathEntry { span: *s, chain }
            })
            .collect()
    }

    /// Renders the root-cause table: one row per chain, head-span
    /// label, node, and the rendered chain.
    pub fn root_cause_table(&self) -> String {
        let mut t = TextTable::new(vec!["span", "node", "root cause", "chain"]);
        for chain in self.chains() {
            let outcome = self
                .span(chain.effect)
                .map_or(SpanOutcome::Truncated, |s| s.outcome);
            t.row(vec![
                format!("#{}", chain.effect),
                if chain.node == u32::MAX {
                    "-".to_string()
                } else {
                    chain.node.to_string()
                },
                chain
                    .root_cause()
                    .map_or("-", CauseReason::name)
                    .to_string(),
                chain.render(outcome),
            ]);
        }
        t.render()
    }

    /// Renders the per-span-kind virtual-latency table.
    pub fn latency_table(&self) -> String {
        let mut t = TextTable::new(vec!["span kind", "count", "p50", "p99", "max"]);
        for s in self.kind_stats() {
            t.row(vec![
                s.kind.name().to_string(),
                s.count.to_string(),
                format!("{:.3}s", s.p50_us as f64 / 1e6),
                format!("{:.3}s", s.p99_us as f64 / 1e6),
                format!("{:.3}s", s.max_us as f64 / 1e6),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;
    use simcore::time::SimTime;

    fn open(rec: &mut FlightRecorder, t: u64, span: u64, parent: u64, kind: SpanKind, node: u32) {
        rec.record(
            SimTime(t),
            EventKind::SpanOpened {
                span,
                parent,
                kind,
                node,
            },
        );
    }

    fn close(rec: &mut FlightRecorder, t: u64, span: u64, outcome: SpanOutcome) {
        rec.record(SimTime(t), EventKind::SpanClosed { span, outcome });
    }

    fn link(rec: &mut FlightRecorder, t: u64, effect: u64, cause: u64, reason: CauseReason) {
        rec.record(
            SimTime(t),
            EventKind::CauseLinked {
                effect,
                cause,
                reason,
            },
        );
    }

    #[test]
    fn reconstructs_the_split_brain_shape() {
        let mut rec = FlightRecorder::new(64);
        // partition window -> rpc timeouts -> lease lapse -> unsprint.
        open(&mut rec, 10, 900, 0, SpanKind::PartitionWindow, u32::MAX);
        open(&mut rec, 20, 100, 0, SpanKind::LeaseLifecycle, 7);
        open(&mut rec, 25, 500, 100, SpanKind::SprintEpisode, 7);
        for i in 0..3u64 {
            let rpc = 200 + i;
            open(&mut rec, 30 + i, rpc, 100, SpanKind::ControlRpc, 7);
            link(&mut rec, 31 + i, rpc, 900, CauseReason::Partition);
            close(&mut rec, 32 + i, rpc, SpanOutcome::TimedOut);
            link(&mut rec, 32 + i, 100, rpc, CauseReason::RenewalTimeout);
        }
        close(&mut rec, 80, 100, SpanOutcome::Lapsed);
        link(&mut rec, 80, 500, 100, CauseReason::LeaseLapse);
        close(&mut rec, 80, 500, SpanOutcome::LeaseLapsed);
        close(&mut rec, 160, 900, SpanOutcome::Healed);
        let t = rec.finish();
        let g = TraceGraph::from_telemetry(&[&t]);
        assert_eq!(g.len(), 6);
        let chains = g.chains();
        assert_eq!(chains.len(), 1, "one head: the sprint episode");
        let c = &chains[0];
        assert_eq!(c.effect, 500);
        assert_eq!(c.root_cause(), Some(CauseReason::Partition));
        assert_eq!(c.anchor, 900);
        assert_eq!(c.anchor_kind, Some(SpanKind::PartitionWindow));
        let rendered = c.render(SpanOutcome::LeaseLapsed);
        assert_eq!(
            rendered,
            "force-unsprint <- lease-lapse <- 3x renewal-timeout <- partition <- partition-window"
        );
        assert_eq!(g.dominant_root_cause(), Some(CauseReason::Partition));
    }

    #[test]
    fn chains_without_cause_spans_root_in_the_reason() {
        let mut rec = FlightRecorder::new(16);
        open(&mut rec, 5, 42, 0, SpanKind::SprintEpisode, 0);
        link(&mut rec, 6, 42, 0, CauseReason::MessageDrop);
        link(&mut rec, 7, 42, 0, CauseReason::MessageDrop);
        close(&mut rec, 9, 42, SpanOutcome::Watchdog);
        let t = rec.finish();
        let g = TraceGraph::from_telemetry(&[&t]);
        let chains = g.chains();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].root_cause(), Some(CauseReason::MessageDrop));
        assert_eq!(
            chains[0].render(SpanOutcome::Watchdog),
            "force-unsprint <- 2x message-drop"
        );
        assert_eq!(g.dominant_root_cause(), Some(CauseReason::MessageDrop));
    }

    #[test]
    fn open_spans_truncate_at_the_horizon() {
        let mut rec = FlightRecorder::new(16);
        open(&mut rec, 10, 1, 0, SpanKind::SprintEpisode, 0);
        open(&mut rec, 20, 2, 0, SpanKind::LeaseLifecycle, 0);
        close(&mut rec, 50, 2, SpanOutcome::Released);
        let t = rec.finish();
        let g = TraceGraph::from_telemetry(&[&t]);
        let s = g.span(1).unwrap();
        assert!(s.truncated);
        assert_eq!(s.outcome, SpanOutcome::Truncated);
        assert_eq!(s.close_us, 50, "truncated spans close at the horizon");
        assert!(!g.span(2).unwrap().truncated);
    }

    #[test]
    fn cyclic_links_terminate() {
        let mut rec = FlightRecorder::new(16);
        open(&mut rec, 1, 1, 0, SpanKind::ControlRpc, 0);
        open(&mut rec, 2, 2, 0, SpanKind::ControlRpc, 0);
        link(&mut rec, 3, 1, 2, CauseReason::MessageDrop);
        link(&mut rec, 4, 2, 1, CauseReason::MessageDrop);
        let t = rec.finish();
        let g = TraceGraph::from_telemetry(&[&t]);
        // Both spans are causes, so neither is a head; the walk itself
        // must terminate if invoked directly.
        assert!(g.chains().is_empty());
        let c = g.walk(1);
        assert!(c.steps.len() <= 2);
    }

    /// Satellite: a 100-node trace storm through a tiny ring. Oldest
    /// events evict first, spans whose close was evicted come back
    /// truncated, reconstruction never panics and stays bounded.
    #[test]
    fn hundred_node_trace_storm_truncates_cleanly() {
        let mut rec = FlightRecorder::new(64);
        let nodes = 100u64;
        for n in 0..nodes {
            let span = (n + 1) << 32;
            open(&mut rec, n * 10, span, 0, SpanKind::SprintEpisode, n as u32);
            // Only even nodes ever close; odd spans stay open forever.
            if n % 2 == 0 {
                close(&mut rec, n * 10 + 5, span, SpanOutcome::Completed);
            }
        }
        let t = rec.finish();
        assert!(t.dropped() > 0, "the storm must overflow the ring");
        assert_eq!(t.events().len(), 64);
        let g = TraceGraph::from_telemetry(&[&t]);
        assert!(g.dropped > 0);
        assert!(g.len() <= 64, "reconstruction is bounded by the ring");
        // Closes whose open was evicted are counted, not resurrected.
        assert!(g.orphan_closes > 0 || g.spans.values().all(|s| s.open_us > 0));
        // Every surviving odd-node span is truncated at the horizon.
        for s in g.spans() {
            if s.node % 2 == 1 {
                assert!(s.truncated);
                assert_eq!(s.outcome, SpanOutcome::Truncated);
                assert_eq!(s.close_us, g.end_us);
            }
            assert!(s.close_us >= s.open_us);
        }
    }

    #[test]
    fn kind_stats_and_tables_render() {
        let mut rec = FlightRecorder::new(64);
        for i in 0..10u64 {
            open(&mut rec, i * 100, i + 1, 0, SpanKind::SprintEpisode, 0);
            close(
                &mut rec,
                i * 100 + (i + 1) * 10,
                i + 1,
                SpanOutcome::Completed,
            );
        }
        let t = rec.finish();
        let g = TraceGraph::from_telemetry(&[&t]);
        let stats = g.kind_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].count, 10);
        assert_eq!(stats[0].max_us, 100);
        assert_eq!(stats[0].p50_us, 50);
        assert_eq!(stats[0].p99_us, 100);
        let cp = g.critical_path(3);
        assert_eq!(cp.len(), 3);
        assert_eq!(cp[0].span.duration_us(), 100);
        assert!(cp[0].chain.is_none());
        assert!(g.latency_table().contains("sprint-episode"));
        assert!(g.root_cause_table().lines().count() >= 2);
    }
}
