//! Hand-rolled process-wide metrics: atomic counters and
//! log₂-bucketed histograms.
//!
//! The registry is **disabled by default**: every increment first does
//! one relaxed atomic load and returns, so instrumented hot paths cost
//! one predictable branch when telemetry is off, and wall-clock timers
//! ([`start_timer`]) are only created when it is on. Increments are
//! pure integer operations — histogram values are microseconds /
//! nanoseconds / counts as `u64`, bucketed by leading-zero count — so
//! no float math ever runs on the increment path.
//!
//! Metric values are *observational* (some record wall-clock
//! durations) and are deliberately kept out of every determinism
//! contract: nothing in the simulators reads them back.

use simcore::json::Json;
use simcore::table::TextTable;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric collection on or off process-wide (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric collection is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a wall-clock timer if metrics are enabled; `None` otherwise.
/// Pair with [`Histogram::record_elapsed_us`] /
/// [`Histogram::record_elapsed_ns`].
pub fn start_timer() -> Option<Instant> {
    if is_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// A monotone event counter. Increments are relaxed atomics gated on
/// the global enable flag.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets: bucket 0 holds exactly zero, bucket `i ≥ 1`
/// holds `2^(i-1) ≤ v < 2^i`, and the last bucket absorbs overflow.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A histogram over `u64` values with logarithmic (power-of-two)
/// buckets. Recording a value is an integer leading-zeros computation
/// plus two relaxed atomic adds — no floats.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: 0 for 0, `floor(log2(v)) + 1`
    /// otherwise, saturating at the last bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Exclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if !is_enabled() {
            return;
        }
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records the microseconds elapsed since a [`start_timer`] call
    /// (no-op when the timer was never started, i.e. metrics were off).
    #[inline]
    pub fn record_elapsed_us(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record(t0.elapsed().as_micros() as u64);
        }
    }

    /// Records the nanoseconds elapsed since a [`start_timer`] call.
    #[inline]
    pub fn record_elapsed_ns(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &'static str) -> HistogramSnapshot {
        HistogramSnapshot {
            name,
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let c = b.load(Ordering::Relaxed);
                    (c > 0).then_some((Self::bucket_bound(i), c))
                })
                .collect(),
        }
    }
}

/// The fixed set of metric families the stack registers. `sprint_report`
/// refuses to render (exits non-zero) unless every family appears in
/// its output, so the list and the report cannot drift apart.
pub const FAMILY_NAMES: &[&str] = &[
    "pool_batches",
    "pool_tasks",
    "pool_queue_wait_us",
    "pool_task_run_us",
    "trace_cache_hits",
    "trace_cache_misses",
    "memo_hits",
    "memo_misses",
    "sim_evals",
    "anneal_searches",
    "anneal_candidates",
    "forest_flat_infer_ns",
    "forest_boxed_infer_ns",
    "fleet_predict_us",
    "sprints_engaged",
    "lease_renewals",
    "lease_expiries",
];

/// The process-wide registry of prediction-path metrics. All fields
/// are lock-free; reach it through [`global`].
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Batches submitted to the qsim worker pool.
    pub pool_batches: Counter,
    /// Tasks executed by the pool (workers and the draining caller).
    pub pool_tasks: Counter,
    /// Per-task wait between batch submission and task start (µs) —
    /// the pool's queueing delay.
    pub pool_queue_wait_us: Histogram,
    /// Per-task execution time (µs) — worker utilization comes from
    /// `sum(pool_task_run_us) / wall time`.
    pub pool_task_run_us: Histogram,
    /// CRN trace-cache lookups served from cache.
    pub trace_cache_hits: Counter,
    /// CRN trace-cache lookups that materialized a fresh trace.
    pub trace_cache_misses: Counter,
    /// Prediction-memo lookups served from the memo.
    pub memo_hits: Counter,
    /// Prediction-memo lookups that ran the simulator.
    pub memo_misses: Counter,
    /// Full simulator evaluations (each is `replications` runs).
    pub sim_evals: Counter,
    /// Annealing searches started.
    pub anneal_searches: Counter,
    /// Candidate timeouts evaluated across all searches;
    /// `sim_evals / anneal_candidates` is the evals-per-candidate rate
    /// (below 1.0 once the memo starts hitting).
    pub anneal_candidates: Counter,
    /// Flattened-arena forest inference time (ns per call).
    pub forest_flat_infer_ns: Histogram,
    /// Pointer-chasing (boxed-walk) forest inference time (ns per call).
    pub forest_boxed_infer_ns: Histogram,
    /// Per-node prediction-path time (µs) spent in the fleet planning
    /// pass's model evaluations — proves fleet-scale runs ride the
    /// pooled/shared-cache fast path.
    pub fleet_predict_us: Histogram,
    /// Sprints engaged by the testbed server (per node when scoped).
    pub sprints_engaged: Counter,
    /// Fleet lease renewals granted (per node when scoped).
    pub lease_renewals: Counter,
    /// Fleet lease expiries — each one a fail-safe unsprint window.
    pub lease_expiries: Counter,
}

impl MetricsRegistry {
    fn new() -> MetricsRegistry {
        MetricsRegistry {
            pool_batches: Counter::default(),
            pool_tasks: Counter::default(),
            pool_queue_wait_us: Histogram::new(),
            pool_task_run_us: Histogram::new(),
            trace_cache_hits: Counter::default(),
            trace_cache_misses: Counter::default(),
            memo_hits: Counter::default(),
            memo_misses: Counter::default(),
            sim_evals: Counter::default(),
            anneal_searches: Counter::default(),
            anneal_candidates: Counter::default(),
            forest_flat_infer_ns: Histogram::new(),
            forest_boxed_infer_ns: Histogram::new(),
            fleet_predict_us: Histogram::new(),
            sprints_engaged: Counter::default(),
            lease_renewals: Counter::default(),
            lease_expiries: Counter::default(),
        }
    }

    /// Zeroes every family (benchmark/test hygiene).
    pub fn reset(&self) {
        self.pool_batches.reset();
        self.pool_tasks.reset();
        self.pool_queue_wait_us.reset();
        self.pool_task_run_us.reset();
        self.trace_cache_hits.reset();
        self.trace_cache_misses.reset();
        self.memo_hits.reset();
        self.memo_misses.reset();
        self.sim_evals.reset();
        self.anneal_searches.reset();
        self.anneal_candidates.reset();
        self.forest_flat_infer_ns.reset();
        self.forest_boxed_infer_ns.reset();
        self.fleet_predict_us.reset();
        self.sprints_engaged.reset();
        self.lease_renewals.reset();
        self.lease_expiries.reset();
    }

    /// A point-in-time copy of every family, in [`FAMILY_NAMES`] order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                CounterSnapshot {
                    name: "pool_batches",
                    value: self.pool_batches.get(),
                },
                CounterSnapshot {
                    name: "pool_tasks",
                    value: self.pool_tasks.get(),
                },
                CounterSnapshot {
                    name: "trace_cache_hits",
                    value: self.trace_cache_hits.get(),
                },
                CounterSnapshot {
                    name: "trace_cache_misses",
                    value: self.trace_cache_misses.get(),
                },
                CounterSnapshot {
                    name: "memo_hits",
                    value: self.memo_hits.get(),
                },
                CounterSnapshot {
                    name: "memo_misses",
                    value: self.memo_misses.get(),
                },
                CounterSnapshot {
                    name: "sim_evals",
                    value: self.sim_evals.get(),
                },
                CounterSnapshot {
                    name: "anneal_searches",
                    value: self.anneal_searches.get(),
                },
                CounterSnapshot {
                    name: "anneal_candidates",
                    value: self.anneal_candidates.get(),
                },
                CounterSnapshot {
                    name: "sprints_engaged",
                    value: self.sprints_engaged.get(),
                },
                CounterSnapshot {
                    name: "lease_renewals",
                    value: self.lease_renewals.get(),
                },
                CounterSnapshot {
                    name: "lease_expiries",
                    value: self.lease_expiries.get(),
                },
            ],
            histograms: vec![
                self.pool_queue_wait_us.snapshot("pool_queue_wait_us"),
                self.pool_task_run_us.snapshot("pool_task_run_us"),
                self.forest_flat_infer_ns.snapshot("forest_flat_infer_ns"),
                self.forest_boxed_infer_ns.snapshot("forest_boxed_infer_ns"),
                self.fleet_predict_us.snapshot("fleet_predict_us"),
            ],
        }
    }
}

/// The process-wide metrics registry, created on first use.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

fn scoped_map() -> &'static Mutex<BTreeMap<u32, &'static MetricsRegistry>> {
    static SCOPED: OnceLock<Mutex<BTreeMap<u32, &'static MetricsRegistry>>> = OnceLock::new();
    SCOPED.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The per-node metrics registry for `node`, created on first use and
/// kept for the life of the process. Instrumentation sites write
/// through: the [`global`] registry stays the fleet-wide aggregate,
/// and the scoped registry holds the per-node view.
pub fn scoped(node: u32) -> &'static MetricsRegistry {
    let mut map = scoped_map().lock().unwrap_or_else(|e| e.into_inner());
    map.entry(node)
        .or_insert_with(|| Box::leak(Box::new(MetricsRegistry::new())))
}

/// Point-in-time snapshots of every per-node registry touched so far,
/// node-ascending. The fleet roll-up is the [`global`] registry.
pub fn scoped_snapshots() -> Vec<(u32, MetricsSnapshot)> {
    let map = scoped_map().lock().unwrap_or_else(|e| e.into_inner());
    map.iter().map(|(&n, r)| (n, r.snapshot())).collect()
}

/// Zeroes every per-node registry (benchmark/test hygiene; the
/// registries themselves survive, so outstanding references stay
/// valid).
pub fn reset_scoped() {
    let map = scoped_map().lock().unwrap_or_else(|e| e.into_inner());
    for r in map.values() {
        r.reset();
    }
}

/// Frozen value of one counter family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Family name.
    pub name: &'static str,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// Frozen state of one histogram family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Family name.
    pub name: &'static str,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(exclusive upper bound, count)`, bound-
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate as a bucket bound: the exclusive upper bound
    /// of the first bucket whose cumulative count reaches `q` of the
    /// total (0 when empty). **Caveat**: buckets are powers of two, so
    /// the true quantile lies somewhere below the returned bound —
    /// within a factor of two for values past the first bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for &(bound, n) in &self.buckets {
            acc += n;
            if acc >= target {
                return bound;
            }
        }
        self.buckets.last().map_or(0, |&(bound, _)| bound)
    }

    /// Median bucket bound (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile bucket bound (see
    /// [`HistogramSnapshot::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A frozen copy of the whole registry, renderable as a text table or
/// JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter families.
    pub counters: Vec<CounterSnapshot>,
    /// Histogram families.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Family names present in this snapshot (counters then
    /// histograms).
    pub fn family_names(&self) -> Vec<&'static str> {
        self.counters
            .iter()
            .map(|c| c.name)
            .chain(self.histograms.iter().map(|h| h.name))
            .collect()
    }

    /// Aligned text table with one row per family. Histogram `p50`/
    /// `p99` columns are bucket upper bounds (within 2x of the true
    /// quantile — see [`HistogramSnapshot::quantile`]).
    pub fn render_table(&self) -> String {
        let mut t = TextTable::new(vec!["metric", "kind", "count", "sum", "mean", "p50", "p99"]);
        for c in &self.counters {
            t.row(vec![
                c.name.to_string(),
                "counter".to_string(),
                c.value.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        for h in &self.histograms {
            t.row(vec![
                h.name.to_string(),
                "histogram".to_string(),
                h.count.to_string(),
                h.sum.to_string(),
                format!("{:.1}", h.mean()),
                h.p50().to_string(),
                h.p99().to_string(),
            ]);
        }
        t.render()
    }

    /// JSON object keyed by family name; histograms carry their
    /// non-empty buckets.
    pub fn to_json(&self) -> Json {
        let mut obj: Vec<(String, Json)> = Vec::new();
        for c in &self.counters {
            obj.push((c.name.to_string(), Json::Num(c.value as f64)));
        }
        for h in &self.histograms {
            obj.push((
                h.name.to_string(),
                Json::Obj(vec![
                    ("count".to_string(), Json::Num(h.count as f64)),
                    ("sum".to_string(), Json::Num(h.sum as f64)),
                    (
                        "buckets".to_string(),
                        Json::Arr(
                            h.buckets
                                .iter()
                                .map(|&(bound, n)| {
                                    Json::Arr(vec![Json::Num(bound as f64), Json::Num(n as f64)])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        Json::Obj(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counters_do_not_move() {
        set_enabled(false);
        let c = Counter::default();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = Histogram::new();
        h.record(5);
        assert_eq!(h.count(), 0);
        assert!(start_timer().is_none());
    }

    #[test]
    fn enabled_counters_accumulate() {
        set_enabled(true);
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        set_enabled(false);
    }

    #[test]
    fn bucket_bounds_are_strictly_monotone() {
        let bounds: Vec<u64> = (0..HISTOGRAM_BUCKETS)
            .map(Histogram::bucket_bound)
            .collect();
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bounds must strictly increase: {w:?}");
        }
    }

    #[test]
    fn values_land_below_their_bucket_bound() {
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_bound(i).saturating_sub(0));
            assert!(
                v < Histogram::bucket_bound(i) || i == HISTOGRAM_BUCKETS - 1,
                "v={v} bucket={i}"
            );
            if i > 0 {
                assert!(v >= Histogram::bucket_bound(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        set_enabled(true);
        let h = Histogram::new();
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 4);
        assert!((snap.mean() - 251.5).abs() < 1e-9);
        let total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 4);
        set_enabled(false);
    }

    #[test]
    fn quantiles_return_bucket_bounds() {
        set_enabled(true);
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot("t");
        // Median of 1..=100 is ~50, bucket bound 64; p99 is ~99,
        // bound 128.
        assert_eq!(snap.p50(), 64);
        assert_eq!(snap.p99(), 128);
        let empty = Histogram::new().snapshot("e");
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);
        set_enabled(false);
    }

    #[test]
    fn scoped_registries_are_stable_and_isolated() {
        set_enabled(true);
        scoped(1001).reset();
        scoped(1002).reset();
        scoped(1001).lease_renewals.incr();
        scoped(1001).lease_renewals.incr();
        scoped(1002).lease_expiries.incr();
        assert_eq!(scoped(1001).lease_renewals.get(), 2);
        assert_eq!(scoped(1001).lease_expiries.get(), 0);
        assert_eq!(scoped(1002).lease_expiries.get(), 1);
        // Same node resolves to the same registry.
        assert!(std::ptr::eq(scoped(1001), scoped(1001)));
        let snaps = scoped_snapshots();
        assert!(snaps.iter().any(|(n, s)| {
            *n == 1001
                && s.counters
                    .iter()
                    .any(|c| c.name == "lease_renewals" && c.value == 2)
        }));
        set_enabled(false);
    }

    #[test]
    fn snapshot_covers_every_registered_family() {
        let snap = global().snapshot();
        let names = snap.family_names();
        for fam in FAMILY_NAMES {
            assert!(names.contains(fam), "family {fam} missing from snapshot");
        }
        assert_eq!(names.len(), FAMILY_NAMES.len());
        // And the rendered table mentions each family by name.
        let table = snap.render_table();
        for fam in FAMILY_NAMES {
            assert!(table.contains(fam), "family {fam} missing from table");
        }
    }
}
