//! Schema snapshot: pins the exact JSONL/JSON shapes `sprint_report`
//! emits (event lines, telemetry envelope, metrics snapshot) against
//! committed fixtures. Any field rename, reorder, or format change
//! fails here first, making export-schema drift a reviewed decision
//! instead of an accident.

use obs::{
    AdmissionMode, BreakerLevel, CauseReason, CounterSnapshot, EventKind, FlightRecorder,
    HistogramSnapshot, MetricsSnapshot, SpanKind, SpanOutcome, UnsprintReason,
};
use simcore::json::Json;
use simcore::time::SimTime;

/// One event of every [`EventKind`] variant, with fixed field values.
///
/// Keep in sync with [`every_variant_is_constructed`] below — that
/// match statement fails to compile when a variant is added, forcing
/// both this list and the committed fixture to be extended.
fn all_kinds() -> Vec<EventKind> {
    vec![
        EventKind::SprintEngaged {
            slot: 0,
            stuck: false,
        },
        EventKind::SprintEngageFailed { slot: 1 },
        EventKind::SprintEnded {
            slot: 0,
            reason: UnsprintReason::BudgetDry,
        },
        EventKind::WatchdogFired { slot: 2 },
        EventKind::SlotCrashed { slot: 1, query: 42 },
        EventKind::SlotRestartScheduled {
            slot: 1,
            delay_micros: 250_000,
        },
        EventKind::SlotUp { slot: 1 },
        EventKind::SlotQuarantined { slot: 3 },
        EventKind::QueryShed {
            query: 43,
            queue_depth: 9,
        },
        EventKind::QueryRejected {
            query: 44,
            queue_depth: 12,
        },
        EventKind::AdmissionModeChanged {
            from: AdmissionMode::Normal,
            to: AdmissionMode::Shedding,
        },
        EventKind::QueueDepth { depth: 5 },
        EventKind::BreakerTransition {
            from: BreakerLevel::FullModel,
            to: BreakerLevel::StaleModel,
        },
        EventKind::ThermalEmergency { unsprinted: 2 },
        EventKind::MessageDelayed {
            from: 1,
            to: 0,
            delay_micros: 30_000_000,
        },
        EventKind::MessageDropped {
            from: 2,
            to: 0,
            partitioned: true,
        },
        EventKind::MessageDuplicated {
            from: 2,
            to: 0,
            delay_micros: 1_500_000,
        },
        EventKind::LeaseGranted {
            node: 7,
            epoch: 2,
            power: 1,
        },
        EventKind::LeaseExpired { node: 7, epoch: 2 },
        EventKind::LeaseReleased { node: 8, epoch: 2 },
        EventKind::CoordinatorCrashed { coordinator: 0 },
        EventKind::CoordinatorElected {
            coordinator: 1,
            epoch: 3,
        },
        EventKind::FleetDegradationSample {
            sprintable: 5,
            stale: 1,
            no_sprint: 2,
        },
        EventKind::SpanOpened {
            span: 4_294_967_297,
            parent: 17,
            kind: SpanKind::LeaseLifecycle,
            node: 7,
        },
        EventKind::SpanClosed {
            span: 4_294_967_297,
            outcome: SpanOutcome::Lapsed,
        },
        EventKind::CauseLinked {
            effect: 4_294_967_297,
            cause: 17,
            reason: CauseReason::RenewalTimeout,
        },
    ]
}

/// Compile-time tripwire: adding an [`EventKind`] variant makes this
/// match non-exhaustive, pointing whoever adds it at [`all_kinds`] and
/// the fixture.
#[allow(dead_code)]
fn every_variant_is_constructed(kind: &EventKind) {
    match kind {
        EventKind::SprintEngaged { .. }
        | EventKind::SprintEngageFailed { .. }
        | EventKind::SprintEnded { .. }
        | EventKind::WatchdogFired { .. }
        | EventKind::SlotCrashed { .. }
        | EventKind::SlotRestartScheduled { .. }
        | EventKind::SlotUp { .. }
        | EventKind::SlotQuarantined { .. }
        | EventKind::QueryShed { .. }
        | EventKind::QueryRejected { .. }
        | EventKind::AdmissionModeChanged { .. }
        | EventKind::QueueDepth { .. }
        | EventKind::BreakerTransition { .. }
        | EventKind::ThermalEmergency { .. }
        | EventKind::MessageDelayed { .. }
        | EventKind::MessageDropped { .. }
        | EventKind::MessageDuplicated { .. }
        | EventKind::LeaseGranted { .. }
        | EventKind::LeaseExpired { .. }
        | EventKind::LeaseReleased { .. }
        | EventKind::CoordinatorCrashed { .. }
        | EventKind::CoordinatorElected { .. }
        | EventKind::FleetDegradationSample { .. }
        | EventKind::SpanOpened { .. }
        | EventKind::SpanClosed { .. }
        | EventKind::CauseLinked { .. } => {}
    }
}

fn telemetry_with_all_kinds() -> obs::RunTelemetry {
    let mut rec = FlightRecorder::new(64);
    for (i, kind) in all_kinds().into_iter().enumerate() {
        rec.record(SimTime::from_secs(i as u64), kind);
    }
    rec.finish()
}

#[test]
fn event_jsonl_matches_committed_fixture() {
    let actual = telemetry_with_all_kinds().to_jsonl();
    if std::env::var("UPDATE_FIXTURES").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/events.jsonl");
        std::fs::write(path, &actual).expect("write fixture");
        return;
    }
    let expected = include_str!("fixtures/events.jsonl");
    assert_eq!(
        actual, expected,
        "event JSONL schema drifted from tests/fixtures/events.jsonl; \
         if the change is intentional, regenerate with UPDATE_FIXTURES=1"
    );
}

#[test]
fn fixture_covers_every_event_name_once() {
    let fixture = include_str!("fixtures/events.jsonl");
    assert_eq!(fixture.lines().count(), all_kinds().len());
    for kind in all_kinds() {
        let needle = format!("\"event\": \"{}\"", kind.name());
        assert_eq!(
            fixture.matches(&needle).count(),
            1,
            "fixture must contain exactly one {} line",
            kind.name()
        );
    }
}

#[test]
fn telemetry_envelope_keys_are_pinned() {
    let t = telemetry_with_all_kinds();
    let json = t.to_json();
    for key in ["capacity", "dropped", "events"] {
        assert!(json.get(key).is_some(), "telemetry envelope lost `{key}`");
    }
    let events = json.field("events").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), all_kinds().len());
    // Every event line is parseable JSON with the three required keys.
    for line in t.to_jsonl().lines() {
        let parsed = Json::parse(line).unwrap();
        for key in ["t_us", "seq", "event"] {
            assert!(parsed.get(key).is_some(), "event line lost `{key}`");
        }
    }
}

#[test]
fn metrics_snapshot_json_shape_is_pinned() {
    // Hand-built snapshot: wall-clock timer values never appear, only
    // the structure is pinned.
    let snap = MetricsSnapshot {
        counters: vec![CounterSnapshot {
            name: "qsim_runs",
            value: 3,
        }],
        histograms: vec![HistogramSnapshot {
            name: "predict_us",
            count: 2,
            sum: 300,
            buckets: vec![(128, 1), (256, 1)],
        }],
    };
    let expected = include_str!("fixtures/metrics.json");
    assert_eq!(
        snap.to_json().to_string_pretty() + "\n",
        expected,
        "metrics snapshot JSON shape drifted from tests/fixtures/metrics.json; \
         if the change is intentional, update the fixture"
    );
}
