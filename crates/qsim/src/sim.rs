//! The timeout-aware G/G/k simulation loop (Algorithm 1, generalized).
//!
//! Compared to the ground-truth testbed, this simulator is
//! deliberately *clean*: service is a single sampled duration, a sprint
//! multiplies the speed of all remaining work uniformly (Equation 1),
//! and toggling is free. Runtime effects the model cannot see are
//! folded into the effective sprint rate supplied via
//! [`QsimConfig::sprint_speedup`].

use crate::config::{QsimConfig, QsimResult, SimQuery};
use crate::trace::SimTrace;
use simcore::dist::Dist;
use simcore::event::EventQueue;
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use simcore::SprintError;
use std::collections::VecDeque;
use std::sync::Arc;

/// The simulator's randomness source: live distribution sampling or a
/// pre-materialized [`SimTrace`] replay (common random numbers).
///
/// Both engines (event-driven and direct) consume inputs exclusively
/// through this enum, which is what guarantees a trace-driven run is
/// bit-identical to a live run of the same seed: the trace was drawn
/// with the same stream derivation and draw order.
#[derive(Debug)]
pub(crate) enum Inputs {
    /// Draw from distributions as the simulation progresses.
    Live {
        arrival_dist: Dist,
        arrival_rng: SimRng,
        service_rng: SimRng,
    },
    /// Replay pre-drawn gaps and service demands by index.
    Trace {
        trace: Arc<SimTrace>,
        gaps_used: usize,
        services_used: usize,
    },
}

impl Inputs {
    /// Next inter-arrival gap.
    #[inline]
    pub(crate) fn next_gap(&mut self) -> SimDuration {
        match self {
            Inputs::Live {
                arrival_dist,
                arrival_rng,
                ..
            } => arrival_dist.sample(arrival_rng),
            Inputs::Trace {
                trace, gaps_used, ..
            } => {
                let g = trace.gap(*gaps_used);
                *gaps_used += 1;
                g
            }
        }
    }

    /// Next service demand in sustained-rate seconds, floored at 1 µs
    /// (sub-microsecond work would strand zero-length events).
    #[inline]
    pub(crate) fn next_service_secs(&mut self, service: &Dist) -> f64 {
        match self {
            Inputs::Live { service_rng, .. } => service.sample(service_rng).as_secs_f64().max(1e-6),
            Inputs::Trace {
                trace,
                services_used,
                ..
            } => {
                let s = trace.service_secs(*services_used);
                *services_used += 1;
                s
            }
        }
    }
}

/// Calendar payloads shared by the heap engine and the direct small-k
/// calendar in [`crate::direct`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    Arrival,
    Timeout(u64),
    Slot { slot: usize, gen: u64 },
}

/// Largest slot count served by the heap-free
/// [`DirectCalendar`](crate::direct::DirectCalendar); beyond it the
/// O(k) next-event scan loses to the binary heap.
pub(crate) const DIRECT_MAX_SLOTS: usize = 8;

/// The event calendar behind the simulation loop: the general binary
/// heap, or the direct small-k structure that exploits the loop's
/// scheduling patterns (one pending arrival, monotone timeouts, one
/// live event per slot). Both implement identical (time, insertion
/// sequence) ordering, so the loop's behavior — and therefore every
/// result bit — is independent of the variant (asserted by the k-grid
/// tests in [`crate::direct`] and the conformance oracle).
#[derive(Debug)]
enum Calendar {
    Heap(EventQueue<Ev>),
    Direct(crate::direct::DirectCalendar),
}

impl Calendar {
    #[inline]
    fn schedule(&mut self, at: SimTime, ev: Ev) {
        match self {
            Calendar::Heap(q) => q.schedule(at, ev),
            Calendar::Direct(d) => d.schedule(at, ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        match self {
            Calendar::Heap(q) => q.pop(),
            Calendar::Direct(d) => d.pop(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum QState {
    Queued,
    Running(usize),
    Done,
}

#[derive(Debug)]
struct QInfo {
    arrival: SimTime,
    depart: SimTime,
    service_secs: f64,
    timed_out: bool,
    sprinted: bool,
    sprint_secs: f64,
    state: QState,
}

#[derive(Debug)]
struct RunningQuery {
    query: u64,
    /// Work remaining, measured in sustained-rate seconds.
    remaining_work: f64,
    sprinting: bool,
    sprint_secs: f64,
    last_update: SimTime,
    gen: u64,
}

impl RunningQuery {
    /// Integrates remaining work up to `now` at the current speed.
    fn advance(&mut self, now: SimTime, sprint_speedup: f64) {
        let dt = now.since(self.last_update).as_secs_f64();
        self.last_update = now;
        let speed = if self.sprinting { sprint_speedup } else { 1.0 };
        if self.sprinting {
            self.sprint_secs += dt;
        }
        self.remaining_work = (self.remaining_work - dt * speed).max(0.0);
    }
}

/// Lazy sprint-budget pool (drains while sprinting, refills when idle).
#[derive(Debug)]
pub(crate) struct Pool {
    pub(crate) capacity: f64,
    pub(crate) level: f64,
    pub(crate) refill_secs: f64,
    pub(crate) sprinting: usize,
    pub(crate) last: SimTime,
}

impl Pool {
    /// A full pool for `cfg`, last updated at time zero.
    pub(crate) fn new(cfg: &QsimConfig) -> Pool {
        Pool {
            capacity: cfg.budget_capacity_secs,
            level: cfg.budget_capacity_secs,
            refill_secs: cfg.refill_secs.max(1e-9),
            sprinting: 0,
            last: SimTime::ZERO,
        }
    }

    pub(crate) fn update(&mut self, now: SimTime) {
        let dt = now.since(self.last).as_secs_f64();
        self.last = now;
        if self.capacity.is_infinite() {
            return;
        }
        if self.sprinting == 0 {
            self.level = (self.level + self.capacity / self.refill_secs * dt).min(self.capacity);
        } else {
            self.level = (self.level - self.sprinting as f64 * dt).max(0.0);
        }
    }

    pub(crate) fn available(&self) -> bool {
        // Levels below one microsecond count as empty so exhaustion
        // horizons never round to zero-length events.
        self.level > 1e-6 || self.capacity.is_infinite()
    }

    pub(crate) fn seconds_to_exhaustion(&self) -> Option<f64> {
        if self.sprinting == 0 || self.capacity.is_infinite() {
            None
        } else {
            Some(self.level / self.sprinting as f64)
        }
    }
}

/// Looks up a slot that the event logic requires to be occupied,
/// surfacing a typed runtime error (instead of a panic) if it is not.
fn occupied<'s>(
    slots: &'s mut [Option<RunningQuery>],
    slot: usize,
    ctx: &'static str,
) -> Result<&'s mut RunningQuery, SprintError> {
    slots
        .get_mut(slot)
        .and_then(Option::as_mut)
        .ok_or_else(|| SprintError::runtime(ctx, format!("slot {slot} unexpectedly empty")))
}

/// Validates a configuration; shared by every constructor and engine.
pub(crate) fn validate(cfg: &QsimConfig) -> Result<(), SprintError> {
    SprintError::require_nonzero("QsimConfig::slots", cfg.slots)?;
    SprintError::require_nonzero("QsimConfig::num_queries", cfg.num_queries)?;
    // Effective sprint rates below the service rate are permitted:
    // Eq. 2's calibration may push µe under µ when runtime drag
    // (interrupt servicing, toggles) slows loaded systems beyond
    // what any sprint speedup explains.
    SprintError::require_positive("QsimConfig::sprint_speedup", cfg.sprint_speedup)?;
    SprintError::require_non_negative(
        "QsimConfig::budget_capacity_secs",
        cfg.budget_capacity_secs,
    )?;
    // Zero refill means "instant" (clamped at use); negative or NaN
    // is rejected.
    if cfg.refill_secs.is_nan() || cfg.refill_secs < 0.0 {
        return Err(SprintError::invalid(
            "QsimConfig::refill_secs",
            format!("must be >= 0 and not NaN, got {}", cfg.refill_secs),
        ));
    }
    Ok(())
}

/// Whether this configuration can sprint at all: a real speedup, a
/// non-empty budget, and a finite timeout.
pub(crate) fn sprinting_possible(cfg: &QsimConfig) -> bool {
    (cfg.sprint_speedup - 1.0).abs() > 1e-12
        && (cfg.budget_capacity_secs > 0.0 || cfg.budget_capacity_secs.is_infinite())
        && cfg.timeout < SimDuration::MAX
}

/// The queue simulator.
pub struct Qsim {
    cfg: Arc<QsimConfig>,
    events: Calendar,
    fifo: VecDeque<u64>,
    slots: Vec<Option<RunningQuery>>,
    pool: Pool,
    queries: Vec<QInfo>,
    done: usize,
    arrivals_left: usize,
    inputs: Inputs,
    next_gen: u64,
}

impl Qsim {
    /// Builds a simulator for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] on zero slots/queries, a
    /// non-positive sprint speedup, or an invalid budget.
    pub fn new(cfg: QsimConfig) -> Result<Qsim, SprintError> {
        Qsim::shared(Arc::new(cfg))
    }

    /// Builds a simulator over a shared configuration — the batch path,
    /// which avoids cloning the (possibly large, empirical-table-
    /// carrying) config per task.
    ///
    /// # Errors
    ///
    /// Same validation as [`Qsim::new`].
    pub fn shared(cfg: Arc<QsimConfig>) -> Result<Qsim, SprintError> {
        validate(&cfg)?;
        let mut root = SimRng::new(cfg.seed);
        let arrival_rng = root.split(1);
        let service_rng = root.split(2);
        let arrival_dist = Dist::Parametric {
            kind: cfg.arrival_kind,
            mean: cfg.arrival_rate.mean_interval(),
        };
        Ok(Qsim::build(
            cfg,
            Inputs::Live {
                arrival_dist,
                arrival_rng,
                service_rng,
            },
        ))
    }

    /// Builds a simulator that replays a pre-materialized trace instead
    /// of drawing live randomness (`cfg.seed` is ignored; the trace
    /// carries its own). See [`crate::trace`] for why: trace reuse
    /// eliminates redundant sampling and gives candidate policies
    /// common random numbers.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] if the config is invalid
    /// or the trace is shorter than `cfg.num_queries`.
    pub fn with_trace(cfg: Arc<QsimConfig>, trace: Arc<SimTrace>) -> Result<Qsim, SprintError> {
        validate(&cfg)?;
        if trace.len() < cfg.num_queries {
            return Err(SprintError::invalid(
                "Qsim::with_trace",
                format!(
                    "trace covers {} queries, config needs {}",
                    trace.len(),
                    cfg.num_queries
                ),
            ));
        }
        Ok(Qsim::build(
            cfg,
            Inputs::Trace {
                trace,
                gaps_used: 0,
                services_used: 0,
            },
        ))
    }

    fn build(cfg: Arc<QsimConfig>, inputs: Inputs) -> Qsim {
        Qsim {
            events: Calendar::Heap(EventQueue::new()),
            fifo: VecDeque::new(),
            slots: (0..cfg.slots).map(|_| None).collect(),
            pool: Pool::new(&cfg),
            queries: Vec::with_capacity(cfg.num_queries),
            done: 0,
            arrivals_left: cfg.num_queries,
            inputs,
            next_gen: 0,
            cfg,
        }
    }

    /// Runs to completion and returns steady-state per-query outcomes.
    ///
    /// Single-slot configurations (k = 1, the entire prediction path)
    /// take the heap-free direct recurrence in [`crate::direct`];
    /// small multi-slot configurations (k ≤ [`DIRECT_MAX_SLOTS`]) run
    /// the same event loop as the reference engine but over the
    /// heap-free [`DirectCalendar`](crate::direct::DirectCalendar);
    /// larger configurations take the binary-heap calendar. All three
    /// produce bit-identical results where their domains overlap — the
    /// direct paths replicate the calendar's microsecond quantization,
    /// floating-point operation order, and event tie order exactly, and
    /// regression tests sweep randomized configurations across a k grid
    /// to hold that line.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::Runtime`] if the event calendar drains
    /// with queries outstanding or a slot invariant is violated — both
    /// indicate a simulator bug, surfaced as a typed error rather than
    /// a panic so batch sweeps can report and continue.
    pub fn run(mut self) -> Result<QsimResult, SprintError> {
        if self.cfg.slots == 1 {
            let Qsim {
                cfg, mut inputs, ..
            } = self;
            crate::direct::run_direct(&cfg, &mut inputs)
        } else if self.cfg.slots <= DIRECT_MAX_SLOTS {
            self.events = Calendar::Direct(crate::direct::DirectCalendar::new(self.cfg.slots));
            self.run_loop()
        } else {
            self.run_loop()
        }
    }

    /// Runs to completion and returns only the steady-state mean
    /// response time — bit-identical to
    /// `run()?.mean_response_secs()` (same values summed in the same
    /// order) but without materializing per-query records on the
    /// single-slot fast path. Prediction batches use this.
    ///
    /// # Errors
    ///
    /// As [`Qsim::run`].
    ///
    /// # Panics
    ///
    /// Panics if the run produced no steady-state queries, mirroring
    /// [`QsimResult::mean_response_secs`].
    pub fn run_mean_response(self) -> Result<f64, SprintError> {
        if self.cfg.slots == 1 {
            let Qsim {
                cfg, mut inputs, ..
            } = self;
            crate::direct::run_direct_mean(&cfg, &mut inputs)
        } else {
            Ok(self.run()?.mean_response_secs())
        }
    }

    /// Runs to completion on the binary-heap event calendar regardless
    /// of slot count — the reference implementation the direct engines
    /// are tested against.
    ///
    /// # Errors
    ///
    /// As [`Qsim::run`].
    pub fn run_event_driven(self) -> Result<QsimResult, SprintError> {
        // `build` installs the heap calendar; run the shared loop on it.
        debug_assert!(matches!(self.events, Calendar::Heap(_)));
        self.run_loop()
    }

    /// The event loop shared by the heap and direct calendars.
    fn run_loop(mut self) -> Result<QsimResult, SprintError> {
        let gap = self.inputs.next_gap();
        self.events.schedule(SimTime::ZERO + gap, Ev::Arrival);
        while self.done < self.cfg.num_queries {
            let Some((now, ev)) = self.events.pop() else {
                return Err(SprintError::runtime(
                    "Qsim::run",
                    format!(
                        "event queue drained with {} of {} queries outstanding",
                        self.cfg.num_queries - self.done,
                        self.cfg.num_queries
                    ),
                ));
            };
            match ev {
                Ev::Arrival => self.on_arrival(now)?,
                Ev::Timeout(id) => self.on_timeout(now, id)?,
                Ev::Slot { slot, gen } => self.on_slot(now, slot, gen)?,
            }
        }
        let queries = self
            .queries
            .iter()
            .skip(self.cfg.warmup)
            .map(|q| SimQuery {
                arrival_secs: q.arrival.as_secs_f64(),
                depart_secs: q.depart.as_secs_f64(),
                timed_out: q.timed_out,
                sprinted: q.sprinted,
                sprint_secs: q.sprint_secs,
            })
            .collect();
        Ok(QsimResult { queries })
    }

    fn on_arrival(&mut self, now: SimTime) -> Result<(), SprintError> {
        let id = self.queries.len() as u64;
        let service_secs = self.inputs.next_service_secs(&self.cfg.service);
        self.queries.push(QInfo {
            arrival: now,
            depart: SimTime::ZERO,
            service_secs,
            timed_out: false,
            sprinted: false,
            sprint_secs: 0.0,
            state: QState::Queued,
        });
        if self.sprinting_possible() {
            let at = now.saturating_add(self.cfg.timeout);
            if at < SimTime::MAX {
                self.events.schedule(at, Ev::Timeout(id));
            }
        }
        if let Some(slot) = self.slots.iter().position(Option::is_none) {
            self.dispatch(now, id, slot)?;
        } else {
            self.fifo.push_back(id);
        }
        self.arrivals_left -= 1;
        if self.arrivals_left > 0 {
            let gap = self.inputs.next_gap();
            self.events.schedule(now + gap, Ev::Arrival);
        }
        Ok(())
    }

    fn on_timeout(&mut self, now: SimTime, id: u64) -> Result<(), SprintError> {
        match self.queries[id as usize].state {
            QState::Done => {}
            QState::Queued => {
                self.queries[id as usize].timed_out = true;
            }
            QState::Running(slot) => {
                self.queries[id as usize].timed_out = true;
                self.pool.update(now);
                if !self.pool.available() {
                    return Ok(());
                }
                let speedup = self.cfg.sprint_speedup;
                let r = occupied(&mut self.slots, slot, "Qsim::on_timeout")?;
                if !r.sprinting {
                    r.advance(now, speedup);
                    r.sprinting = true;
                    self.queries[id as usize].sprinted = true;
                    self.pool.sprinting += 1;
                    self.reschedule_all_sprinting(now)?;
                }
            }
        }
        Ok(())
    }

    fn on_slot(&mut self, now: SimTime, slot: usize, gen: u64) -> Result<(), SprintError> {
        let Some(r) = self.slots[slot].as_ref() else {
            return Ok(());
        };
        if r.gen != gen {
            return Ok(());
        }
        self.pool.update(now);
        let speedup = self.cfg.sprint_speedup;
        let r = occupied(&mut self.slots, slot, "Qsim::on_slot")?;
        let was_sprinting = r.sprinting;
        r.advance(now, speedup);
        // Two microseconds of slack: completion events are scheduled at
        // microsecond resolution and may round down by up to half a
        // microsecond.
        if r.remaining_work <= 2e-6 {
            self.complete(now, slot)?;
        } else if was_sprinting && !self.pool.available() {
            // Budget ran dry mid-sprint: fall back to sustained speed.
            r.sprinting = false;
            self.pool.sprinting -= 1;
            self.reschedule_all_sprinting(now)?;
            self.reschedule(now, slot)?;
        } else {
            self.reschedule(now, slot)?;
        }
        Ok(())
    }

    fn complete(&mut self, now: SimTime, slot: usize) -> Result<(), SprintError> {
        let r = self.slots[slot].take().ok_or_else(|| {
            SprintError::runtime("Qsim::complete", format!("slot {slot} unexpectedly empty"))
        })?;
        if r.sprinting {
            self.pool.sprinting -= 1;
            self.reschedule_all_sprinting(now)?;
        }
        let info = &mut self.queries[r.query as usize];
        info.state = QState::Done;
        info.depart = now;
        info.sprint_secs = r.sprint_secs;
        self.done += 1;
        if let Some(next) = self.fifo.pop_front() {
            self.dispatch(now, next, slot)?;
        }
        Ok(())
    }

    fn dispatch(&mut self, now: SimTime, id: u64, slot: usize) -> Result<(), SprintError> {
        let info = &mut self.queries[id as usize];
        info.state = QState::Running(slot);
        let timed_out = info.timed_out;
        let remaining_work = info.service_secs;
        let mut sprinting = false;
        if timed_out && self.sprinting_possible() {
            self.pool.update(now);
            if self.pool.available() {
                sprinting = true;
                self.queries[id as usize].sprinted = true;
                self.pool.sprinting += 1;
            }
        }
        self.slots[slot] = Some(RunningQuery {
            query: id,
            remaining_work,
            sprinting,
            sprint_secs: 0.0,
            last_update: now,
            gen: 0,
        });
        if sprinting {
            // Drain rate changed for every other sprinting slot too.
            self.reschedule_all_sprinting(now)?;
        } else {
            self.reschedule(now, slot)?;
        }
        Ok(())
    }

    fn reschedule(&mut self, now: SimTime, slot: usize) -> Result<(), SprintError> {
        self.next_gen += 1;
        let gen = self.next_gen;
        let r = occupied(&mut self.slots, slot, "Qsim::reschedule")?;
        r.gen = gen;
        let speed = if r.sprinting {
            self.cfg.sprint_speedup
        } else {
            1.0
        };
        let mut horizon = r.remaining_work / speed;
        if r.sprinting {
            if let Some(exhaust) = self.pool.seconds_to_exhaustion() {
                horizon = horizon.min(exhaust);
            }
        }
        self.events.schedule(
            now + SimDuration::from_secs_f64_ceil(horizon),
            Ev::Slot { slot, gen },
        );
        Ok(())
    }

    fn reschedule_all_sprinting(&mut self, now: SimTime) -> Result<(), SprintError> {
        let speedup = self.cfg.sprint_speedup;
        for i in 0..self.slots.len() {
            let needs = matches!(&self.slots[i], Some(r) if r.sprinting);
            if needs {
                let r = occupied(&mut self.slots, i, "Qsim::reschedule_all_sprinting")?;
                r.advance(now, speedup);
                self.reschedule(now, i)?;
            }
        }
        Ok(())
    }

    fn sprinting_possible(&self) -> bool {
        sprinting_possible(&self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::DistKind;
    use simcore::time::Rate;

    fn cfg_mm1(util: f64, mean_service_secs: f64, seed: u64) -> QsimConfig {
        let mu = 3_600.0 / mean_service_secs;
        QsimConfig::mm1(
            Rate::per_hour(mu * util),
            Dist::exponential(SimDuration::from_secs_f64(mean_service_secs)),
            seed,
        )
    }

    /// M/M/1 mean response time: 1 / (µ - λ).
    fn mm1_expected(util: f64, mean_service_secs: f64) -> f64 {
        mean_service_secs / (1.0 - util)
    }

    #[test]
    fn mm1_matches_closed_form_low_load() {
        let mut c = cfg_mm1(0.3, 60.0, 7);
        c.num_queries = 40_000;
        c.warmup = 2_000;
        let r = Qsim::new(c).unwrap().run().unwrap();
        let expect = mm1_expected(0.3, 60.0);
        let got = r.mean_response_secs();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "M/M/1 at 30%: {got:.1} vs {expect:.1}"
        );
    }

    #[test]
    fn mm1_matches_closed_form_high_load() {
        let mut c = cfg_mm1(0.8, 60.0, 11);
        c.num_queries = 200_000;
        c.warmup = 20_000;
        let r = Qsim::new(c).unwrap().run().unwrap();
        let expect = mm1_expected(0.8, 60.0);
        let got = r.mean_response_secs();
        assert!(
            (got - expect).abs() / expect < 0.08,
            "M/M/1 at 80%: {got:.1} vs {expect:.1}"
        );
    }

    #[test]
    fn md1_waiting_time_half_of_mm1() {
        // M/D/1 mean wait = ρ/(2(1-ρ)) * s — half the M/M/1 wait.
        let util = 0.7;
        let s = 60.0;
        let mut c = cfg_mm1(util, s, 13);
        c.service = Dist::deterministic(SimDuration::from_secs_f64(s));
        c.num_queries = 100_000;
        c.warmup = 10_000;
        let r = Qsim::new(c).unwrap().run().unwrap();
        let expect = s + util * s / (2.0 * (1.0 - util));
        let got = r.mean_response_secs();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "M/D/1: {got:.1} vs {expect:.1}"
        );
    }

    #[test]
    fn mmk_runs_and_beats_mm1_wait() {
        let mut c = cfg_mm1(0.8, 60.0, 17);
        c.slots = 4;
        c.arrival_rate = Rate::per_hour(4.0 * 0.8 * 60.0);
        c.num_queries = 50_000;
        c.warmup = 5_000;
        let r = Qsim::new(c).unwrap().run().unwrap();
        // With 4 servers at the same per-server utilization, waiting is
        // much shorter than M/M/1; response must be below M/M/1's 300 s.
        assert!(r.mean_response_secs() < 300.0 * 0.7);
        assert!(r.mean_response_secs() > 60.0);
    }

    #[test]
    fn always_sprint_with_unlimited_budget_scales_service() {
        let mut c = cfg_mm1(0.3, 60.0, 19);
        c.sprint_speedup = 2.0;
        c.timeout = SimDuration::ZERO;
        c.budget_capacity_secs = f64::INFINITY;
        c.num_queries = 30_000;
        c.warmup = 3_000;
        let r = Qsim::new(c).unwrap().run().unwrap();
        // Every query sprints from dispatch: service effectively 30 s,
        // λ unchanged -> utilization 0.15.
        let expect = 30.0 / (1.0 - 0.15);
        let got = r.mean_response_secs();
        assert!(
            (got - expect).abs() / expect < 0.06,
            "sprinted M/M/1: {got:.1} vs {expect:.1}"
        );
        assert!((r.sprint_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_never_sprints() {
        let mut c = cfg_mm1(0.5, 60.0, 23);
        c.sprint_speedup = 3.0;
        c.timeout = SimDuration::ZERO;
        c.budget_capacity_secs = 0.0;
        c.num_queries = 5_000;
        c.warmup = 500;
        let r = Qsim::new(c).unwrap().run().unwrap();
        assert_eq!(r.sprint_fraction(), 0.0);
    }

    #[test]
    fn tight_budget_sprints_some_not_all() {
        let mut c = cfg_mm1(0.9, 60.0, 29);
        c.sprint_speedup = 2.0;
        c.timeout = SimDuration::from_secs(90);
        c.budget_capacity_secs = 120.0;
        c.refill_secs = 2_000.0;
        c.num_queries = 20_000;
        c.warmup = 2_000;
        let r = Qsim::new(c).unwrap().run().unwrap();
        let f = r.sprint_fraction();
        assert!(f > 0.0, "some queries must sprint");
        assert!(f < 0.9, "budget must throttle sprinting, got {f}");
    }

    #[test]
    fn sprinting_reduces_response_time_under_load() {
        let base_cfg = {
            let mut c = cfg_mm1(0.85, 60.0, 31);
            c.num_queries = 30_000;
            c.warmup = 3_000;
            c
        };
        let base = Qsim::new(base_cfg.clone())
            .unwrap()
            .run()
            .unwrap()
            .mean_response_secs();
        let mut sprint_cfg = base_cfg;
        sprint_cfg.sprint_speedup = 2.0;
        sprint_cfg.timeout = SimDuration::from_secs(120);
        sprint_cfg.budget_capacity_secs = 400.0;
        sprint_cfg.refill_secs = 800.0;
        let fast = Qsim::new(sprint_cfg)
            .unwrap()
            .run()
            .unwrap()
            .mean_response_secs();
        assert!(
            fast < base * 0.85,
            "sprinting should cut response time: {fast:.0} vs {base:.0}"
        );
    }

    #[test]
    fn deterministic_replay() {
        let mut c = cfg_mm1(0.7, 60.0, 37);
        c.sprint_speedup = 1.8;
        c.timeout = SimDuration::from_secs(100);
        c.budget_capacity_secs = 100.0;
        c.refill_secs = 500.0;
        c.num_queries = 3_000;
        c.warmup = 300;
        let a = Qsim::new(c.clone()).unwrap().run().unwrap();
        let b = Qsim::new(c).unwrap().run().unwrap();
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn timeout_marks_only_slow_queries() {
        let mut c = cfg_mm1(0.8, 60.0, 41);
        c.sprint_speedup = 2.0;
        c.timeout = SimDuration::from_secs(100);
        c.budget_capacity_secs = f64::INFINITY;
        c.num_queries = 10_000;
        c.warmup = 1_000;
        let r = Qsim::new(c).unwrap().run().unwrap();
        for q in &r.queries {
            if q.timed_out {
                assert!(q.response_secs() >= 100.0 - 1e-6);
            } else {
                assert!(q.response_secs() < 100.0 + 1e-6);
            }
        }
    }

    #[test]
    fn pareto_arrivals_heavier_queueing_than_poisson() {
        let mut pois = cfg_mm1(0.6, 60.0, 43);
        pois.num_queries = 40_000;
        pois.warmup = 4_000;
        let mut par = pois.clone();
        par.arrival_kind = DistKind::Pareto { alpha: 0.5 };
        par.seed = 44;
        let rp = Qsim::new(pois).unwrap().run().unwrap().mean_response_secs();
        let rr = Qsim::new(par).unwrap().run().unwrap().mean_response_secs();
        assert!(
            rr > rp,
            "heavy-tailed arrivals should queue worse: {rr:.0} !> {rp:.0}"
        );
    }

    #[test]
    fn rejects_invalid_configs() {
        let mut c = cfg_mm1(0.5, 60.0, 47);
        c.sprint_speedup = 0.0;
        assert!(Qsim::new(c).is_err());
        let mut c = cfg_mm1(0.5, 60.0, 47);
        c.slots = 0;
        assert!(Qsim::new(c).is_err());
        let mut c = cfg_mm1(0.5, 60.0, 47);
        c.budget_capacity_secs = f64::NAN;
        assert!(Qsim::new(c).is_err());
        let mut c = cfg_mm1(0.5, 60.0, 47);
        c.refill_secs = -1.0;
        assert!(Qsim::new(c).is_err());
    }

    #[test]
    fn sub_unit_speedup_slows_timed_out_queries() {
        // A negative effective correction (µe < µ) makes sprinted
        // queries slower — Eq. 2's way of absorbing runtime drag.
        let mut c = cfg_mm1(0.5, 60.0, 53);
        c.num_queries = 20_000;
        c.warmup = 2_000;
        let base = Qsim::new(c.clone())
            .unwrap()
            .run()
            .unwrap()
            .mean_response_secs();
        c.sprint_speedup = 0.8;
        c.timeout = SimDuration::from_secs(90);
        c.budget_capacity_secs = f64::INFINITY;
        let slowed = Qsim::new(c).unwrap().run().unwrap().mean_response_secs();
        assert!(slowed > base, "{slowed} !> {base}");
    }
}
