//! Request cloning with processor-sharing service.
//!
//! "Modeling of Request Cloning in Cloud Server Systems using
//! Processor Sharing" studies a workload class the sprint testbed never
//! exercised: every request is *cloned* to several execution slots, the
//! clones race, the first finisher wins, and the siblings are cancelled
//! (cancel-on-first-complete). Each slot serves its resident clones
//! processor-sharing — n residents each progress at `1/n` of the slot's
//! speed — so cloning trades lower low-load latency (the race) against
//! extra service pressure at high load (the siblings occupy capacity
//! until cancelled).
//!
//! The engine composes that semantics with the paper's sprinting model:
//! a request whose timeout fires engages a sprint (budget permitting),
//! multiplying the PS share of *its* clones by the sprint speedup until
//! the request departs or the shared budget runs dry.
//!
//! Cloning-specific fault classes ride along, each drawn from the seed
//! up-front so replay is bit-identical regardless of dynamics:
//!
//! - **spawn-fail** — a secondary clone fails to launch (the request
//!   always keeps its primary clone);
//! - **straggler** — a clone's service requirement is inflated by a
//!   fixed factor;
//! - **cancel-loss** — a cancellation message is lost, leaving a
//!   *ghost* clone that runs to completion, wasting capacity; a ghost
//!   finishing must never double-count as a request departure.
//!
//! Two engines share every arithmetic expression but keep state
//! differently: [`Cloning::run`] maintains slot occupancy, sprint drain
//! and the live-clone sets incrementally, while [`Cloning::run_reference`]
//! recomputes all of them from scratch at every event. Their outputs
//! must match bit-for-bit — the differential oracle that guards the
//! incremental bookkeeping (see the conformance crate).

use simcore::dist::Dist;
use simcore::stats::Percentiles;
use simcore::time::{Rate, SimDuration};
use simcore::SprintError;

use crate::config::SimQuery;

/// Service requirements below this floor are clamped, mirroring the
/// G/G/k engine's guard against zero-length service draws.
const MIN_SERVICE_SECS: f64 = 1e-6;

/// Budget level at or below which the pool counts as exhausted.
const BUDGET_EPS: f64 = 1e-6;

/// Hard cap on processed events; exceeding it means the simulation is
/// stuck and a typed error is returned instead of looping forever.
const MAX_EVENTS: u64 = 50_000_000;

/// Cloning-specific fault classes. All probabilities are per-clone and
/// drawn up-front from the seed, so a plan's randomness is independent
/// of the run's dynamics (bit-identical replay under every class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloningFaults {
    /// Probability that a *secondary* clone fails to spawn (the primary
    /// clone always launches, so every request keeps at least one).
    pub spawn_fail_prob: f64,
    /// Probability that a clone's cancellation is lost when its sibling
    /// wins, leaving a ghost that runs to completion.
    pub cancel_loss_prob: f64,
    /// Probability that a clone is a straggler.
    pub straggler_prob: f64,
    /// Service-requirement inflation applied to stragglers (≥ 1).
    pub straggler_factor: f64,
}

impl Default for CloningFaults {
    fn default() -> Self {
        CloningFaults {
            spawn_fail_prob: 0.0,
            cancel_loss_prob: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
        }
    }
}

impl CloningFaults {
    /// Whether every fault class is disabled.
    pub fn is_noop(&self) -> bool {
        self.spawn_fail_prob == 0.0 && self.cancel_loss_prob == 0.0 && self.straggler_prob == 0.0
    }

    /// Validates probabilities and the straggler factor.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] on a probability outside
    /// `[0, 1]` or a straggler factor below 1.
    pub fn validate(&self) -> Result<(), SprintError> {
        for (what, p) in [
            ("CloningFaults::spawn_fail_prob", self.spawn_fail_prob),
            ("CloningFaults::cancel_loss_prob", self.cancel_loss_prob),
            ("CloningFaults::straggler_prob", self.straggler_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(SprintError::invalid(
                    what,
                    format!("probability must be in [0, 1], got {p}"),
                ));
            }
        }
        if !self.straggler_factor.is_finite() || self.straggler_factor < 1.0 {
            return Err(SprintError::invalid(
                "CloningFaults::straggler_factor",
                format!("must be finite and >= 1, got {}", self.straggler_factor),
            ));
        }
        Ok(())
    }
}

/// Configuration for one cloning run.
#[derive(Debug, Clone)]
pub struct CloningConfig {
    /// Mean request arrival rate λ (Poisson arrivals).
    pub arrival_rate: Rate,
    /// Per-clone service-requirement distribution (clones draw i.i.d.).
    pub service: Dist,
    /// Clones spawned per request, racing on distinct slots.
    pub clones: usize,
    /// Execution slots, each serving its residents processor-sharing.
    pub slots: usize,
    /// Speedup multiplying a sprinting request's PS shares.
    pub sprint_speedup: f64,
    /// Timeout after arrival that triggers sprinting;
    /// [`SimDuration::MAX`] disables sprinting.
    pub timeout: SimDuration,
    /// Sprint budget capacity in sprint-seconds.
    pub budget_capacity_secs: f64,
    /// Time for an empty budget to refill while nothing sprints.
    pub refill_secs: f64,
    /// Requests to simulate.
    pub num_queries: usize,
    /// Leading requests excluded from statistics.
    pub warmup: usize,
    /// RNG seed; arrivals, service draws and fault draws all derive
    /// from it.
    pub seed: u64,
    /// Cloning fault plan.
    pub faults: CloningFaults,
}

impl CloningConfig {
    /// A fault-free low-load racing setup: `clones` clones over twice
    /// as many slots, exponential service, no sprinting.
    pub fn low_load(
        arrival_rate: Rate,
        mean_service: SimDuration,
        clones: usize,
        seed: u64,
    ) -> CloningConfig {
        CloningConfig {
            arrival_rate,
            service: Dist::exponential(mean_service),
            clones,
            slots: clones.max(1) * 2,
            sprint_speedup: 1.0,
            timeout: SimDuration::MAX,
            budget_capacity_secs: 0.0,
            refill_secs: 1.0,
            num_queries: 2_000,
            warmup: 200,
            seed,
            faults: CloningFaults::default(),
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(&self, seed: u64) -> CloningConfig {
        CloningConfig {
            seed,
            ..self.clone()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] on out-of-range sizing,
    /// rates, probabilities, or `clones > slots`.
    pub fn validate(&self) -> Result<(), SprintError> {
        SprintError::require_positive("CloningConfig::arrival_rate", self.arrival_rate.qps())?;
        SprintError::require_nonzero("CloningConfig::clones", self.clones)?;
        SprintError::require_nonzero("CloningConfig::slots", self.slots)?;
        if self.clones > self.slots {
            return Err(SprintError::invalid(
                "CloningConfig::clones",
                format!(
                    "clones race on distinct slots: {} clones need {} slots, have {}",
                    self.clones, self.clones, self.slots
                ),
            ));
        }
        if !self.sprint_speedup.is_finite() || self.sprint_speedup < 1.0 {
            return Err(SprintError::invalid(
                "CloningConfig::sprint_speedup",
                format!("must be finite and >= 1, got {}", self.sprint_speedup),
            ));
        }
        SprintError::require_non_negative(
            "CloningConfig::budget_capacity_secs",
            self.budget_capacity_secs,
        )?;
        SprintError::require_positive("CloningConfig::refill_secs", self.refill_secs)?;
        SprintError::require_nonzero("CloningConfig::num_queries", self.num_queries)?;
        if self.warmup >= self.num_queries {
            return Err(SprintError::invalid(
                "CloningConfig::warmup",
                format!(
                    "warmup {} must stay below num_queries {}",
                    self.warmup, self.num_queries
                ),
            ));
        }
        let mean = self.service.mean().as_secs_f64();
        SprintError::require_positive("CloningConfig::service", mean)?;
        self.faults.validate()
    }

    /// First-order model of the cloning dynamics at *low load*: clones
    /// race on otherwise-idle slots, so with exponential service of
    /// mean `m` the winner of `d` i.i.d. clones departs after `m / d`
    /// on average; a from-arrival sprint (zero timeout, unlimited
    /// budget) further divides by the sprint speedup. The sprint model
    /// predicting the cloning dynamics is anchored against this value
    /// in the conformance suite.
    pub fn predicted_low_load_mean_secs(&self) -> f64 {
        let base = self.service.mean().as_secs_f64() / self.clones as f64;
        if self.timeout.is_zero() && self.budget_capacity_secs.is_infinite() {
            base / self.sprint_speedup
        } else {
            base
        }
    }
}

/// Aggregated outcome of one cloning run.
#[derive(Debug, Clone, PartialEq)]
pub struct CloningResult {
    /// Steady-state per-request outcomes (warmup removed), in arrival
    /// order. A request departs exactly once — when its first clone
    /// completes.
    pub queries: Vec<SimQuery>,
    /// Clones actually launched.
    pub spawned: u64,
    /// Requests completed by a winning clone (equals the configured
    /// request count on a conserving run).
    pub winners: u64,
    /// Sibling clones cancelled when their request's winner finished.
    pub cancelled: u64,
    /// Clones whose cancellation was lost and kept running (ghosts).
    pub ghosts: u64,
    /// Secondary clones that failed to spawn.
    pub spawn_failed: u64,
    /// Clones whose service requirement was straggler-inflated.
    pub stragglers: u64,
    /// Service work consumed by clones that did not win, in seconds at
    /// sustained speed.
    pub wasted_secs: f64,
}

impl CloningResult {
    /// Mean response time over steady-state requests, seconds.
    ///
    /// # Panics
    ///
    /// Panics if the run produced no steady-state requests.
    pub fn mean_response_secs(&self) -> f64 {
        assert!(!self.queries.is_empty(), "empty cloning result");
        self.queries
            .iter()
            .map(SimQuery::response_secs)
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// Response-time quantile over steady-state requests, seconds.
    pub fn response_quantile_secs(&self, q: f64) -> f64 {
        Percentiles::from_samples(self.queries.iter().map(SimQuery::response_secs).collect())
            .quantile(q)
    }

    /// Fraction of steady-state requests that sprinted.
    pub fn sprint_fraction(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().filter(|q| q.sprinted).count() as f64 / self.queries.len() as f64
    }

    /// Fraction of steady-state requests whose timeout fired but that
    /// never sprinted (budget starvation).
    pub fn starved_fraction(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .filter(|q| q.timed_out && !q.sprinted)
            .count() as f64
            / self.queries.len() as f64
    }

    /// Cancel-on-first-complete conservation: every launched clone is
    /// accounted exactly once as a winner, a cancelled sibling, or a
    /// ghost — no double-counted completions.
    pub fn conserves_clones(&self) -> bool {
        self.spawned == self.winners + self.cancelled + self.ghosts
    }
}

/// One pre-drawn clone: its service requirement and fault draws. All
/// randomness lives here, fixed before the first event.
#[derive(Debug, Clone, Copy)]
struct ClonePlan {
    work_secs: f64,
    spawn_fails: bool,
    straggler: bool,
    cancel_lost: bool,
}

/// One pre-drawn request: arrival instant plus its clones' plans.
#[derive(Debug, Clone)]
struct RequestPlan {
    arrival_secs: f64,
    clones: Vec<ClonePlan>,
}

/// Draws the complete run plan from the seed: arrival times, per-clone
/// service requirements and fault coin flips, in a fixed order that
/// does not depend on simulation dynamics.
fn draw_plan(cfg: &CloningConfig) -> Vec<RequestPlan> {
    let mut root = simcore::rng::SimRng::new(cfg.seed);
    let mut arrival_rng = root.split(1);
    let mut service_rng = root.split(2);
    let mut fault_rng = root.split(3);
    let arrival_dist = Dist::exponential(cfg.arrival_rate.mean_interval());
    let mut at = 0.0_f64;
    let mut plans = Vec::with_capacity(cfg.num_queries);
    for _ in 0..cfg.num_queries {
        at += arrival_dist.sample(&mut arrival_rng).as_secs_f64();
        let mut clones = Vec::with_capacity(cfg.clones);
        for c in 0..cfg.clones {
            let mut work = cfg
                .service
                .sample(&mut service_rng)
                .as_secs_f64()
                .max(MIN_SERVICE_SECS);
            let spawn_fails = c > 0 && fault_rng.chance(cfg.faults.spawn_fail_prob);
            let straggler = fault_rng.chance(cfg.faults.straggler_prob);
            if straggler {
                work *= cfg.faults.straggler_factor;
            }
            let cancel_lost = fault_rng.chance(cfg.faults.cancel_loss_prob);
            clones.push(ClonePlan {
                work_secs: work,
                spawn_fails,
                straggler,
                cancel_lost,
            });
        }
        plans.push(RequestPlan {
            arrival_secs: at,
            clones,
        });
    }
    plans
}

/// Live clone state.
#[derive(Debug, Clone, Copy)]
struct LiveClone {
    /// Owning request index; `usize::MAX`-free — ghosts keep it for
    /// accounting but no longer affect the request.
    req: usize,
    slot: usize,
    remaining_secs: f64,
    initial_secs: f64,
    /// A ghost's request already departed; it drains at sustained speed
    /// and its completion is not a departure.
    ghost: bool,
}

/// Per-request dynamic state.
#[derive(Debug, Clone, Copy)]
struct ReqState {
    arrival_secs: f64,
    timed_out: bool,
    sprinting: bool,
    sprinted: bool,
    sprint_secs: f64,
    departed: bool,
    live_clones: usize,
}

/// The next event the engine will process, in deterministic priority
/// order on time ties.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A clone (by live-table key) finishes its remaining work.
    Completion(u64),
    /// The draining budget pool hits empty.
    BudgetEmpty,
    /// A request's sprint timeout fires.
    Timeout(usize),
    /// The next request arrives.
    Arrival,
}

impl Ev {
    /// Priority on exact time ties (lower wins): completions resolve
    /// before budget/timeout bookkeeping, arrivals last.
    fn rank(self) -> u8 {
        match self {
            Ev::Completion(_) => 0,
            Ev::BudgetEmpty => 1,
            Ev::Timeout(_) => 2,
            Ev::Arrival => 3,
        }
    }
}

/// The PS share progress rate of a clone: its slot speed split over the
/// residents, multiplied by the sprint factor. Both engines call this
/// one expression so candidate times agree bit-for-bit.
#[inline]
fn clone_rate(factor: f64, residents: usize) -> f64 {
    factor / residents as f64
}

/// Request-cloning simulator with processor-sharing slots.
#[derive(Debug, Clone)]
pub struct Cloning {
    cfg: CloningConfig,
}

impl Cloning {
    /// Validates the configuration and builds a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] on an invalid
    /// configuration.
    pub fn new(cfg: CloningConfig) -> Result<Cloning, SprintError> {
        cfg.validate()?;
        Ok(Cloning { cfg })
    }

    /// Runs the incremental engine.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::Runtime`] if the event budget is
    /// exhausted (a stuck simulation).
    pub fn run(&self) -> Result<CloningResult, SprintError> {
        simulate(&self.cfg, false)
    }

    /// Runs the reference engine: identical arithmetic, but slot
    /// occupancy, sprint drain and candidate completions are recomputed
    /// from scratch at every event instead of being maintained
    /// incrementally. Output must be bit-identical to [`Cloning::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::Runtime`] if the event budget is
    /// exhausted (a stuck simulation).
    pub fn run_reference(&self) -> Result<CloningResult, SprintError> {
        simulate(&self.cfg, true)
    }
}

/// Whether two results are bit-identical (floats compared by bits, so
/// `-0.0 != 0.0` and NaNs never sneak through an equality).
pub fn results_bit_identical(a: &CloningResult, b: &CloningResult) -> bool {
    let f = |x: f64, y: f64| x.to_bits() == y.to_bits();
    a.queries.len() == b.queries.len()
        && a.queries.iter().zip(&b.queries).all(|(x, y)| {
            f(x.arrival_secs, y.arrival_secs)
                && f(x.depart_secs, y.depart_secs)
                && x.timed_out == y.timed_out
                && x.sprinted == y.sprinted
                && f(x.sprint_secs, y.sprint_secs)
        })
        && a.spawned == b.spawned
        && a.winners == b.winners
        && a.cancelled == b.cancelled
        && a.ghosts == b.ghosts
        && a.spawn_failed == b.spawn_failed
        && a.stragglers == b.stragglers
        && f(a.wasted_secs, b.wasted_secs)
}

#[allow(clippy::too_many_lines)]
fn simulate(cfg: &CloningConfig, reference: bool) -> Result<CloningResult, SprintError> {
    let plan = draw_plan(cfg);
    let sprint_on = cfg.timeout != SimDuration::MAX && cfg.budget_capacity_secs > 0.0;
    let timeout_secs = cfg.timeout.as_secs_f64();
    let refill_rate = cfg.budget_capacity_secs / cfg.refill_secs;

    let mut reqs: Vec<ReqState> = Vec::with_capacity(cfg.num_queries);
    // Live clones keyed by a monotonically increasing id; the map stays
    // insertion-ordered via a Vec of (key, clone) pairs so both engines
    // iterate identically.
    let mut live: Vec<(u64, LiveClone)> = Vec::new();
    let mut next_key: u64 = 0;
    // Incremental state (the fast path's bookkeeping under test).
    let mut slot_residents = vec![0usize; cfg.slots];
    let mut sprinting_reqs: usize = 0;

    let mut depart_secs = vec![0.0_f64; cfg.num_queries];
    let mut budget = cfg.budget_capacity_secs;
    let mut now = 0.0_f64;
    let mut next_arrival = 0usize;
    let mut departed = 0usize;
    // Timeouts fire in arrival order (constant offset), so a cursor
    // suffices; departed requests are skipped when it advances.
    let mut timeout_cursor = 0usize;

    let mut spawned = 0u64;
    let mut winners = 0u64;
    let mut cancelled = 0u64;
    let mut ghosts = 0u64;
    let mut spawn_failed = 0u64;
    let mut stragglers = 0u64;
    let mut wasted = 0.0_f64;
    let mut events = 0u64;

    while departed < cfg.num_queries {
        events += 1;
        if events > MAX_EVENTS {
            return Err(SprintError::runtime(
                "cloning::simulate",
                format!("event budget exhausted after {MAX_EVENTS} events"),
            ));
        }

        // The reference engine recomputes occupancy and drain from
        // scratch; the incremental engine trusts its counters.
        let (residents_of, drain_reqs): (Vec<usize>, usize) = if reference {
            let mut res = vec![0usize; cfg.slots];
            for (_, c) in &live {
                res[c.slot] += 1;
            }
            let drains = reqs.iter().filter(|r| r.sprinting && !r.departed).count();
            (res, drains)
        } else {
            (slot_residents.clone(), sprinting_reqs)
        };
        let drain_rate = drain_reqs as f64;

        // Candidate: next completion. The incremental engine scans per
        // slot (per-slot minimum, then global minimum of the minima);
        // the reference engine scans the flat table. Identical
        // candidate sets and the shared `clone_rate` expression make
        // the winning (time, key) bit-identical.
        let mut best: Option<(f64, u64)> = None;
        let mut consider = |t: f64, key: u64| match best {
            Some((bt, bk)) if (bt, bk) <= (t, key) => {}
            _ => best = Some((t, key)),
        };
        if reference {
            for (key, c) in &live {
                let factor = if !c.ghost && reqs[c.req].sprinting {
                    cfg.sprint_speedup
                } else {
                    1.0
                };
                let t = now + c.remaining_secs / clone_rate(factor, residents_of[c.slot]);
                consider(t, *key);
            }
        } else {
            for slot in 0..cfg.slots {
                let mut slot_best: Option<(f64, u64)> = None;
                for (key, c) in live.iter().filter(|(_, c)| c.slot == slot) {
                    let factor = if !c.ghost && reqs[c.req].sprinting {
                        cfg.sprint_speedup
                    } else {
                        1.0
                    };
                    let t = now + c.remaining_secs / clone_rate(factor, residents_of[c.slot]);
                    match slot_best {
                        Some((bt, bk)) if (bt, bk) <= (t, *key) => {}
                        _ => slot_best = Some((t, *key)),
                    }
                }
                if let Some((t, key)) = slot_best {
                    consider(t, key);
                }
            }
        }

        let mut next: Option<(f64, Ev)> = best.map(|(t, k)| (t, Ev::Completion(k)));
        let mut offer = |t: f64, ev: Ev| match next {
            Some((nt, nev)) if (nt, nev.rank()) <= (t, ev.rank()) => {}
            _ => next = Some((t, ev)),
        };
        if drain_rate > 0.0 && budget > BUDGET_EPS {
            offer(now + budget / drain_rate, Ev::BudgetEmpty);
        }
        if sprint_on {
            // Advance the cursor past departed/handled requests, then
            // offer the next pending timeout.
            while timeout_cursor < reqs.len()
                && (reqs[timeout_cursor].departed || reqs[timeout_cursor].timed_out)
            {
                timeout_cursor += 1;
            }
            if timeout_cursor < reqs.len() {
                offer(
                    reqs[timeout_cursor].arrival_secs + timeout_secs,
                    Ev::Timeout(timeout_cursor),
                );
            }
        }
        if next_arrival < plan.len() {
            offer(plan[next_arrival].arrival_secs, Ev::Arrival);
        }

        let Some((at, ev)) = next else {
            return Err(SprintError::runtime(
                "cloning::simulate",
                format!(
                    "no next event with {} of {} requests departed",
                    departed, cfg.num_queries
                ),
            ));
        };
        let dt = at - now;

        // Advance every live clone by its PS progress over dt, charge
        // sprinting requests, and move the budget.
        if dt > 0.0 {
            for (_, c) in &mut live {
                let factor = if !c.ghost && reqs[c.req].sprinting {
                    cfg.sprint_speedup
                } else {
                    1.0
                };
                c.remaining_secs -= dt * clone_rate(factor, residents_of[c.slot]);
                if c.remaining_secs < 0.0 {
                    c.remaining_secs = 0.0;
                }
            }
            for r in reqs.iter_mut().filter(|r| r.sprinting && !r.departed) {
                r.sprint_secs += dt;
            }
            if drain_rate > 0.0 {
                budget = (budget - dt * drain_rate).max(0.0);
            } else {
                budget = (budget + dt * refill_rate).min(cfg.budget_capacity_secs);
            }
        }
        now = at;

        match ev {
            Ev::Arrival => {
                let rp = &plan[next_arrival];
                let req_idx = reqs.len();
                reqs.push(ReqState {
                    arrival_secs: rp.arrival_secs,
                    timed_out: false,
                    sprinting: false,
                    sprinted: false,
                    sprint_secs: 0.0,
                    departed: false,
                    live_clones: 0,
                });
                // Clones race on the least-loaded distinct slots
                // (lowest index on ties) — chosen once, at spawn.
                let mut order: Vec<usize> = (0..cfg.slots).collect();
                order.sort_by_key(|&s| (residents_of[s], s));
                let mut placed = 0usize;
                for (c, cp) in rp.clones.iter().enumerate() {
                    if cp.straggler {
                        stragglers += 1;
                    }
                    if cp.spawn_fails {
                        spawn_failed += 1;
                        continue;
                    }
                    let slot = order[placed.min(cfg.slots - 1)];
                    placed += 1;
                    live.push((
                        next_key,
                        LiveClone {
                            req: req_idx,
                            slot,
                            remaining_secs: rp.clones[c].work_secs,
                            initial_secs: rp.clones[c].work_secs,
                            ghost: false,
                        },
                    ));
                    next_key += 1;
                    spawned += 1;
                    reqs[req_idx].live_clones += 1;
                    slot_residents[slot] += 1;
                }
                next_arrival += 1;
            }
            Ev::Timeout(idx) => {
                let r = &mut reqs[idx];
                r.timed_out = true;
                if budget > BUDGET_EPS {
                    r.sprinting = true;
                    r.sprinted = true;
                    sprinting_reqs += 1;
                }
            }
            Ev::BudgetEmpty => {
                budget = 0.0;
                // Force-unsprint everyone; starved requests never
                // re-engage (the pool refills only once nothing
                // sprints, and sprint engagement is at-timeout-only).
                for r in reqs.iter_mut().filter(|r| r.sprinting) {
                    r.sprinting = false;
                }
                sprinting_reqs = 0;
            }
            Ev::Completion(key) => {
                let pos = live
                    .iter()
                    .position(|(k, _)| *k == key)
                    .expect("completion key must be live");
                let (_, done) = live.remove(pos);
                slot_residents[done.slot] -= 1;
                if done.ghost {
                    wasted += done.initial_secs;
                    continue;
                }
                let req_idx = done.req;
                winners += 1;
                departed += 1;
                depart_secs[req_idx] = now;
                let r = &mut reqs[req_idx];
                r.departed = true;
                if r.sprinting {
                    r.sprinting = false;
                    sprinting_reqs -= 1;
                }
                r.live_clones -= 1;
                // Cancel-on-first-complete: siblings either leave now
                // or ghost on if their cancellation was lost.
                let mut keep: Vec<(u64, LiveClone)> = Vec::with_capacity(live.len());
                for (k, mut c) in live.drain(..) {
                    if c.req != req_idx {
                        keep.push((k, c));
                        continue;
                    }
                    // The clone's pre-drawn cancel-loss flag decides.
                    let clone_plan_idx = usize::try_from(k - first_key_of(req_idx, &plan, cfg))
                        .expect("sibling key offset fits");
                    let lost = sibling_cancel_lost(&plan[req_idx], clone_plan_idx);
                    if lost {
                        c.ghost = true;
                        ghosts += 1;
                        keep.push((k, c));
                    } else {
                        cancelled += 1;
                        wasted += c.initial_secs - c.remaining_secs;
                        slot_residents[c.slot] -= 1;
                    }
                }
                live = keep;
                reqs[req_idx].live_clones = 0;
            }
        }
    }

    // Ghosts still draining when the last request departs were already
    // counted at conversion; charge the work they consumed so far.
    for (_, c) in &live {
        wasted += c.initial_secs - c.remaining_secs;
    }

    let queries = reqs
        .iter()
        .enumerate()
        .skip(cfg.warmup)
        .map(|(i, r)| SimQuery {
            arrival_secs: r.arrival_secs,
            depart_secs: depart_secs[i],
            timed_out: r.timed_out,
            sprinted: r.sprinted,
            sprint_secs: r.sprint_secs,
        })
        .collect();
    Ok(CloningResult {
        queries,
        spawned,
        winners,
        cancelled,
        ghosts,
        spawn_failed,
        stragglers,
        wasted_secs: wasted,
    })
}

/// The live-table key of request `req`'s first *launched* clone: keys
/// are assigned in spawn order, so it equals the number of clones
/// launched by all earlier requests.
fn first_key_of(req: usize, plan: &[RequestPlan], cfg: &CloningConfig) -> u64 {
    let _ = cfg;
    plan[..req]
        .iter()
        .flat_map(|r| r.clones.iter())
        .filter(|c| !c.spawn_fails)
        .count() as u64
}

/// Whether the `launched_idx`-th *launched* clone of a request had its
/// cancellation pre-drawn as lost.
fn sibling_cancel_lost(rp: &RequestPlan, launched_idx: usize) -> bool {
    rp.clones
        .iter()
        .filter(|c| !c.spawn_fails)
        .nth(launched_idx)
        .is_some_and(|c| c.cancel_lost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(seed: u64) -> CloningConfig {
        CloningConfig::low_load(Rate::per_hour(30.0), SimDuration::from_secs(60), 2, seed)
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = base(1);
        c.clones = 5;
        c.slots = 2;
        assert!(Cloning::new(c).is_err());
        let mut c = base(1);
        c.sprint_speedup = 0.5;
        assert!(Cloning::new(c).is_err());
        let mut c = base(1);
        c.faults.cancel_loss_prob = 1.5;
        assert!(Cloning::new(c).is_err());
        let mut c = base(1);
        c.warmup = c.num_queries;
        assert!(Cloning::new(c).is_err());
        assert!(Cloning::new(base(1)).is_ok());
    }

    #[test]
    fn fault_free_run_conserves_and_races() {
        let mut c = base(7);
        c.num_queries = 500;
        c.warmup = 50;
        let r = Cloning::new(c.clone()).unwrap().run().unwrap();
        assert_eq!(r.winners, c.num_queries as u64);
        assert!(r.conserves_clones());
        assert_eq!(r.ghosts, 0);
        assert_eq!(r.spawn_failed, 0);
        assert_eq!(r.queries.len(), c.num_queries - c.warmup);
        for q in &r.queries {
            assert!(q.depart_secs > q.arrival_secs);
        }
    }

    #[test]
    fn cloning_beats_no_cloning_at_low_load() {
        // min of two i.i.d. exponentials halves the mean; queueing at
        // 5% utilization barely moves it.
        let mut solo = base(11);
        solo.clones = 1;
        solo.slots = 2;
        solo.num_queries = 4_000;
        solo.warmup = 400;
        let mut duo = base(11);
        duo.clones = 2;
        duo.slots = 4;
        duo.num_queries = 4_000;
        duo.warmup = 400;
        let rs = Cloning::new(solo).unwrap().run().unwrap();
        let rd = Cloning::new(duo).unwrap().run().unwrap();
        assert!(
            rd.mean_response_secs() < rs.mean_response_secs(),
            "cloning must win at low load: {} vs {}",
            rd.mean_response_secs(),
            rs.mean_response_secs()
        );
    }

    #[test]
    fn low_load_mean_tracks_the_model() {
        let mut c = base(13);
        c.num_queries = 6_000;
        c.warmup = 600;
        let r = Cloning::new(c.clone()).unwrap().run().unwrap();
        let predicted = c.predicted_low_load_mean_secs();
        let measured = r.mean_response_secs();
        let rel = (measured - predicted).abs() / predicted;
        assert!(
            rel < 0.15,
            "model {predicted:.1}s vs measured {measured:.1}s (rel {rel:.3})"
        );
    }

    #[test]
    fn sprinting_speeds_up_the_race() {
        let mut slow = base(17);
        slow.num_queries = 2_000;
        slow.warmup = 200;
        let mut fast = slow.clone();
        fast.timeout = SimDuration::ZERO;
        fast.budget_capacity_secs = f64::INFINITY;
        fast.sprint_speedup = 2.0;
        let rs = Cloning::new(slow).unwrap().run().unwrap();
        let rf = Cloning::new(fast.clone()).unwrap().run().unwrap();
        assert!(rf.sprint_fraction() > 0.99);
        assert!(
            rf.mean_response_secs() < rs.mean_response_secs() * 0.7,
            "sprint {} vs sustained {}",
            rf.mean_response_secs(),
            rs.mean_response_secs()
        );
        let predicted = fast.predicted_low_load_mean_secs();
        let rel = (rf.mean_response_secs() - predicted).abs() / predicted;
        assert!(rel < 0.15, "sprinting model off by {rel:.3}");
    }

    #[test]
    fn budget_exhaustion_starves_late_requests() {
        let mut c = base(19);
        c.timeout = SimDuration::ZERO;
        c.sprint_speedup = 3.0;
        c.budget_capacity_secs = 30.0;
        c.refill_secs = 1e9;
        c.num_queries = 400;
        c.warmup = 0;
        let r = Cloning::new(c).unwrap().run().unwrap();
        assert!(r.sprint_fraction() > 0.0, "someone must sprint");
        assert!(
            r.starved_fraction() > 0.0,
            "a 30 s budget with no refill must starve later timeouts"
        );
    }

    fn fault_grid() -> Vec<CloningFaults> {
        vec![
            CloningFaults::default(),
            CloningFaults {
                spawn_fail_prob: 0.4,
                ..CloningFaults::default()
            },
            CloningFaults {
                cancel_loss_prob: 0.5,
                ..CloningFaults::default()
            },
            CloningFaults {
                straggler_prob: 0.3,
                straggler_factor: 4.0,
                ..CloningFaults::default()
            },
            CloningFaults {
                spawn_fail_prob: 0.25,
                cancel_loss_prob: 0.25,
                straggler_prob: 0.25,
                straggler_factor: 3.0,
            },
        ]
    }

    #[test]
    fn replay_is_bit_identical_under_every_fault_class() {
        for (i, faults) in fault_grid().into_iter().enumerate() {
            let mut c = base(23 + i as u64);
            c.num_queries = 600;
            c.warmup = 60;
            c.timeout = SimDuration::from_secs(30);
            c.budget_capacity_secs = 100.0;
            c.sprint_speedup = 2.0;
            c.faults = faults;
            let sim = Cloning::new(c).unwrap();
            let a = sim.run().unwrap();
            let b = sim.run().unwrap();
            assert!(
                results_bit_identical(&a, &b),
                "fault class {i} replay diverged"
            );
        }
    }

    #[test]
    fn reference_engine_is_bit_identical_under_every_fault_class() {
        for (i, faults) in fault_grid().into_iter().enumerate() {
            let mut c = base(101 + i as u64);
            c.num_queries = 600;
            c.warmup = 60;
            c.timeout = SimDuration::from_secs(45);
            c.budget_capacity_secs = 80.0;
            c.sprint_speedup = 2.5;
            c.faults = faults;
            let sim = Cloning::new(c).unwrap();
            let fast = sim.run().unwrap();
            let reference = sim.run_reference().unwrap();
            assert!(
                results_bit_identical(&fast, &reference),
                "fault class {i}: incremental vs reference diverged"
            );
        }
    }

    #[test]
    fn cancel_loss_produces_ghosts_but_conserves() {
        let mut c = base(31);
        c.num_queries = 800;
        c.warmup = 0;
        c.faults.cancel_loss_prob = 0.6;
        let r = Cloning::new(c.clone()).unwrap().run().unwrap();
        assert!(r.ghosts > 0, "60% cancel loss must leave ghosts");
        assert_eq!(r.winners, c.num_queries as u64, "one departure per request");
        assert!(r.conserves_clones());
        assert!(r.wasted_secs > 0.0);
    }

    #[test]
    fn spawn_failures_never_kill_the_primary() {
        let mut c = base(37);
        c.num_queries = 500;
        c.warmup = 0;
        c.faults.spawn_fail_prob = 1.0;
        let r = Cloning::new(c.clone()).unwrap().run().unwrap();
        // Every secondary failed: requests degrade to solo execution
        // but every one of them still departs.
        assert_eq!(r.winners, c.num_queries as u64);
        assert_eq!(r.spawn_failed, c.num_queries as u64);
        assert_eq!(r.spawned, c.num_queries as u64);
        assert!(r.conserves_clones());
    }
}
