//! Persistent worker pool for prediction batches.
//!
//! Fig. 11 measures *sustained* prediction throughput — hundreds of
//! predictions per minute — and at that rate the cost of spawning a
//! fresh `thread::scope` per prediction is pure overhead. [`SimPool`]
//! keeps a fixed set of workers alive for the process lifetime and
//! hands them batches through a shared queue.
//!
//! Ordering and determinism: [`SimPool::run_ordered`] returns results
//! in input order regardless of which worker ran which task, and the
//! tasks themselves are deterministic (seeded simulations), so the pool
//! is bit-identical to sequential execution by construction.
//!
//! Deadlock freedom on small machines: the *caller* participates in
//! draining its own batch, so a batch completes even with zero free
//! workers (or a single-core host where the pool has one worker that is
//! busy elsewhere). Worker panics are confined to the panicking task's
//! slot (`None`), never poisoning the pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_available: Condvar,
}

/// A long-lived pool of simulation workers.
///
/// Most callers want [`SimPool::global`], which lazily spawns one pool
/// sized to the machine and reuses it for every batch in the process.
pub struct SimPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// One batch of same-typed tasks, drained cooperatively by pool workers
/// and the submitting caller.
struct Batch<T> {
    #[allow(clippy::type_complexity)]
    tasks: Vec<Mutex<Option<Box<dyn FnOnce() -> T + Send>>>>,
    results: Vec<Mutex<Option<T>>>,
    next: AtomicUsize,
    remaining: Mutex<usize>,
    done: Condvar,
    /// Submission instant, present only when telemetry is enabled;
    /// tasks measure queue wait against it as they are claimed.
    submitted: Option<std::time::Instant>,
}

fn drain<T>(batch: &Batch<T>) {
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.tasks.len() {
            return;
        }
        let task = batch.tasks[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        let m = obs::global();
        m.pool_tasks.incr();
        m.pool_queue_wait_us.record_elapsed_us(batch.submitted);
        let run_timer = obs::start_timer();
        // Claimed indexes are unique (fetch_add), so the task is always
        // present; a panicking task leaves `None` in its result slot.
        let out = task.and_then(|t| catch_unwind(AssertUnwindSafe(t)).ok());
        m.pool_task_run_us.record_elapsed_us(run_timer);
        *batch.results[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = out;
        let mut remaining = batch
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *remaining -= 1;
        if *remaining == 0 {
            batch.done.notify_all();
        }
    }
}

impl SimPool {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> SimPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        SimPool { shared, workers }
    }

    /// The process-wide pool, sized to the machine and spawned on first
    /// use.
    pub fn global() -> &'static SimPool {
        static GLOBAL: OnceLock<SimPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            SimPool::new(n)
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    fn submit(&self, job: Job) {
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        q.jobs.push_back(job);
        drop(q);
        self.shared.work_available.notify_one();
    }

    /// Runs `tasks` with at most `parallelism` concurrent executors
    /// (the caller plus up to `parallelism - 1` pool workers) and
    /// returns results in input order. A slot is `None` only if its
    /// task panicked.
    ///
    /// The caller always participates in draining the batch, so this
    /// never deadlocks even if every pool worker is busy with other
    /// batches.
    pub fn run_ordered<T, F>(&self, tasks: Vec<F>, parallelism: usize) -> Vec<Option<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        obs::global().pool_batches.incr();
        let batch = Arc::new(Batch {
            tasks: tasks
                .into_iter()
                .map(|f| Mutex::new(Some(Box::new(f) as Box<dyn FnOnce() -> T + Send>)))
                .collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            submitted: obs::start_timer(),
        });
        let helpers = parallelism
            .saturating_sub(1)
            .min(self.workers.len())
            .min(n.saturating_sub(1));
        for _ in 0..helpers {
            let batch = Arc::clone(&batch);
            self.submit(Box::new(move || drain(&batch)));
        }
        drain(&batch);
        let mut remaining = batch
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *remaining > 0 {
            remaining = batch
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(remaining);
        batch
            .results
            .iter()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner).take())
            .collect()
    }
}

impl Drop for SimPool {
    fn drop(&mut self) {
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = shared
                    .work_available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            // Jobs are panic-safe (drain catches per-task panics), but
            // shield the worker thread regardless.
            Some(job) => drop(catch_unwind(AssertUnwindSafe(job))),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let pool = SimPool::new(4);
        let tasks: Vec<_> = (0..64usize).map(|i| move || i * 3).collect();
        let out = pool.run_ordered(tasks, 4);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, Some(i * 3));
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = SimPool::new(2);
        for round in 0..10usize {
            let tasks: Vec<_> = (0..8usize).map(|i| move || i + round).collect();
            let out = pool.run_ordered(tasks, 2);
            assert!(out.iter().enumerate().all(|(i, r)| *r == Some(i + round)));
        }
    }

    #[test]
    fn panicking_task_yields_none_without_poisoning() {
        let pool = SimPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom")), Box::new(|| 3)];
        let out = pool.run_ordered(tasks, 2);
        assert_eq!(out, vec![Some(1), None, Some(3)]);
        // The pool still works afterwards.
        let again = pool.run_ordered(vec![|| 7usize], 2);
        assert_eq!(again, vec![Some(7)]);
    }

    #[test]
    fn caller_drains_alone_at_parallelism_one() {
        let pool = SimPool::new(4);
        let tasks: Vec<_> = (0..16usize).map(|i| move || i).collect();
        assert_eq!(
            pool.run_ordered(tasks, 1),
            (0..16usize).map(Some).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = SimPool::new(1);
        let out: Vec<Option<usize>> = pool.run_ordered(Vec::<fn() -> usize>::new(), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn global_pool_exists_and_is_sized() {
        let p = SimPool::global();
        assert!(p.workers() >= 1);
        let out = p.run_ordered(vec![|| 42usize], 8);
        assert_eq!(out, vec![Some(42)]);
    }
}
