//! Heap-free direct engines for small-k simulations.
//!
//! The entire prediction path simulates G/G/1 queues (the paper's
//! conditions fix one execution slot), yet the general engine pays for
//! a binary-heap event calendar, a timeout event per arrival, and
//! stale-generation slot events on every sprint transition. For k = 1
//! none of that machinery is needed: service is FIFO and serial, so
//! each query's departure follows from `start = max(arrival,
//! previous departure)` plus a tiny per-query state machine with at
//! most four instants of interest — dispatch, the query's own timeout,
//! a budget-exhaustion wake-up, and completion.
//!
//! For 2 ≤ k ≤ [`DIRECT_MAX_SLOTS`](crate::sim::DIRECT_MAX_SLOTS) the
//! FIFO recurrence no longer applies (departures interleave across
//! slots), but the binary heap is still overkill: the event loop only
//! ever has **one** pending arrival, timeout events whose due times
//! are *monotone in schedule order* (each is its query's arrival plus
//! the one configured timeout), and at most one *live* event per slot
//! (rescheduling bumps the generation, turning the previously
//! scheduled event into a guaranteed no-op). [`DirectCalendar`]
//! encodes exactly that: an `Option` for the arrival, a `VecDeque` for
//! the timeouts, a fixed slot array holding each slot's latest event,
//! and an O(k) scan for the next event — no heap, no stale-event
//! traffic. It replicates the heap's sequence-number assignment (one
//! per `schedule` call, in call order) so (time, seq) tie-breaking is
//! bit-compatible, and the same event loop runs over either calendar.
//!
//! **Bit-identity contract.** This engine reproduces the event
//! calendar's results exactly, not approximately. That requires
//! replicating three details:
//!
//! - *Quantization*: event times are microsecond-ceiled
//!   ([`SimDuration::from_secs_f64_ceil`]) and work is integrated over
//!   the quantized intervals, in the same floating-point operation
//!   order as [`RunningQuery::advance`][advance].
//! - *Budget arithmetic*: the pool level is a running float sum, so
//!   [`Pool::update`] must be called at exactly the calendar's update
//!   instants (dispatch of a timed-out query, a running query's
//!   timeout, and every live slot event) — splitting or merging the
//!   intervals would change the bits.
//! - *Tie order*: at equal instants the calendar pops the event with
//!   the smaller sequence number. A query's timeout event is always
//!   scheduled before its completion event, so at a tie the timeout
//!   wins — which is why the timeout check below uses `<=` against the
//!   pending slot event. (The one genuinely order-dependent tie —
//!   timeout vs. the *predecessor's* completion at the dispatch
//!   instant — converges: both orders perform one pool update at that
//!   instant and start the sprint from dispatch.)
//!
//! A randomized sweep in the tests below holds the engines bitwise
//! equal across utilizations, timeouts, budgets, speedups, and
//! arrival shapes.
//!
//! [advance]: crate::sim
use crate::config::{QsimConfig, QsimResult, SimQuery};
use crate::sim::{sprinting_possible, Ev, Inputs, Pool};
use simcore::time::{SimDuration, SimTime};
use simcore::SprintError;
use std::collections::VecDeque;

/// Heap-free event calendar for small multi-slot simulations
/// (2 ≤ k ≤ [`DIRECT_MAX_SLOTS`](crate::sim::DIRECT_MAX_SLOTS)).
///
/// Exploits three structural facts about the qsim event loop:
///
/// 1. **One pending arrival.** The loop schedules arrival *n + 1*
///    only while handling arrival *n*, so a single `Option` replaces
///    the heap's arrival entries.
/// 2. **Monotone timeouts.** Every timeout is scheduled as its
///    query's arrival instant plus the one configured timeout, and
///    arrivals are scheduled in increasing time order — so timeout
///    due times are non-decreasing in schedule order and a FIFO
///    `VecDeque` keeps them sorted for free. Timeouts for queries
///    that already completed stay queued and pop as no-ops, exactly
///    like under the heap.
/// 3. **One live event per slot.** The loop bumps a slot's generation
///    counter before every reschedule, so at most one scheduled slot
///    event can ever match; superseded events would pop as
///    gen-mismatch no-ops (checked before any state is touched), so
///    overwriting the slot's entry drops nothing observable.
///
/// Sequence numbers are assigned one per `schedule` call, in call
/// order, replicating [`simcore::event::EventQueue`] — so (time, seq)
/// tie-breaking, and therefore every popped event and every result
/// bit, is identical to the heap calendar. Asserted by the k-grid
/// tests below and the conformance oracle.
#[derive(Debug)]
pub(crate) struct DirectCalendar {
    /// Insertion counter, incremented on every `schedule` exactly like
    /// the heap's, so tie-breaks are bit-compatible.
    next_seq: u64,
    /// Clock of the last popped event; only guards the
    /// no-scheduling-into-the-past contract.
    now: SimTime,
    /// The single pending arrival as (due, seq).
    arrival: Option<(SimTime, u64)>,
    /// Pending timeouts as (due, seq, query id), due-monotone.
    timeouts: VecDeque<(SimTime, u64, u64)>,
    /// Latest scheduled event per slot as (due, seq, generation).
    slots: Vec<Option<(SimTime, u64, u64)>>,
}

/// Where the winning pop candidate lives.
#[derive(Clone, Copy)]
enum Src {
    Arrival,
    Timeout,
    Slot(usize),
}

impl DirectCalendar {
    pub(crate) fn new(slots: usize) -> Self {
        Self {
            next_seq: 0,
            now: SimTime::ZERO,
            arrival: None,
            timeouts: VecDeque::new(),
            slots: vec![None; slots],
        }
    }

    pub(crate) fn schedule(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        match ev {
            Ev::Arrival => {
                debug_assert!(self.arrival.is_none(), "second pending arrival");
                self.arrival = Some((at, seq));
            }
            Ev::Timeout(id) => {
                debug_assert!(
                    self.timeouts
                        .back()
                        .is_none_or(|&(bat, bseq, _)| (bat, bseq) < (at, seq)),
                    "timeout due times must be monotone in schedule order"
                );
                self.timeouts.push_back((at, seq, id));
            }
            Ev::Slot { slot, gen } => self.slots[slot] = Some((at, seq, gen)),
        }
    }

    /// O(k) scan for the candidate with the smallest (time, seq),
    /// matching the heap's ordering exactly.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, Ev)> {
        let mut best: Option<(SimTime, u64, Src)> = None;
        if let Some((at, seq)) = self.arrival {
            best = Some((at, seq, Src::Arrival));
        }
        if let Some(&(at, seq, _)) = self.timeouts.front() {
            if best.is_none_or(|(b, s, _)| (at, seq) < (b, s)) {
                best = Some((at, seq, Src::Timeout));
            }
        }
        for (i, e) in self.slots.iter().enumerate() {
            if let Some((at, seq, _)) = *e {
                if best.is_none_or(|(b, s, _)| (at, seq) < (b, s)) {
                    best = Some((at, seq, Src::Slot(i)));
                }
            }
        }
        let (at, _seq, src) = best?;
        self.now = at;
        let ev = match src {
            Src::Arrival => {
                self.arrival = None;
                Ev::Arrival
            }
            Src::Timeout => {
                let (_, _, id) = self.timeouts.pop_front()?;
                Ev::Timeout(id)
            }
            Src::Slot(i) => {
                let (_, _, gen) = self.slots[i].take()?;
                Ev::Slot { slot: i, gen }
            }
        };
        Some((at, ev))
    }
}

/// Runs a single-slot simulation to completion without an event heap.
///
/// # Errors
///
/// Never fails today (the config is validated by the caller and the
/// direct recurrence has no calendar to drain early); the `Result`
/// mirrors the event engine's signature.
pub(crate) fn run_direct(cfg: &QsimConfig, inputs: &mut Inputs) -> Result<QsimResult, SprintError> {
    let mut queries = Vec::with_capacity(cfg.num_queries.saturating_sub(cfg.warmup));
    drive(
        cfg,
        inputs,
        |arrival, depart, timed_out, sprinted, sprint_secs| {
            queries.push(SimQuery {
                arrival_secs: arrival.as_secs_f64(),
                depart_secs: depart.as_secs_f64(),
                timed_out,
                sprinted,
                sprint_secs,
            });
        },
    );
    Ok(QsimResult { queries })
}

/// Runs a single-slot simulation and streams the steady-state mean
/// response time without materializing per-query records —
/// bit-identical to `run_direct(..)` followed by
/// [`QsimResult::mean_response_secs`] (same values summed in the same
/// order), minus the allocation. This is the prediction hot path.
///
/// # Errors
///
/// See [`run_direct`].
///
/// # Panics
///
/// Panics if the run produced no steady-state queries, mirroring
/// [`QsimResult::mean_response_secs`].
pub(crate) fn run_direct_mean(cfg: &QsimConfig, inputs: &mut Inputs) -> Result<f64, SprintError> {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    drive(cfg, inputs, |arrival, depart, _, _, _| {
        sum += depart.as_secs_f64() - arrival.as_secs_f64();
        count += 1;
    });
    assert!(count > 0, "empty simulation result");
    Ok(sum / count as f64)
}

/// Dispatches to a monomorphized core per input source, so the trace
/// path iterates raw slices (no per-query enum match or bounds check)
/// and the live path samples inline.
fn drive(
    cfg: &QsimConfig,
    inputs: &mut Inputs,
    emit: impl FnMut(SimTime, SimTime, bool, bool, f64),
) {
    debug_assert_eq!(cfg.slots, 1, "direct engine is single-slot only");
    let n = cfg.num_queries;
    match inputs {
        Inputs::Trace { trace, .. } => {
            // Length >= n is checked at construction.
            let feed = trace.gaps()[..n]
                .iter()
                .copied()
                .zip(trace.services()[..n].iter().copied());
            run_core(cfg, feed, emit);
        }
        Inputs::Live {
            arrival_dist,
            arrival_rng,
            service_rng,
        } => {
            // Per-query draw order (gap, then service) matches the
            // event engine; the two streams are independent RNGs, so
            // interleaving within a query is immaterial.
            let service = &cfg.service;
            let feed = std::iter::from_fn(|| {
                Some((
                    arrival_dist.sample(arrival_rng),
                    service.sample(service_rng).as_secs_f64().max(1e-6),
                ))
            });
            run_core(cfg, feed, emit);
        }
    }
}

#[inline(always)]
fn run_core(
    cfg: &QsimConfig,
    feed: impl Iterator<Item = (SimDuration, f64)>,
    mut emit: impl FnMut(SimTime, SimTime, bool, bool, f64),
) {
    let n = cfg.num_queries;
    let sp = sprinting_possible(cfg);
    let mut pool = Pool::new(cfg);
    let mut arrival = SimTime::ZERO;
    let mut prev_depart = SimTime::ZERO;
    for (i, (gap, w)) in feed.take(n).enumerate() {
        arrival += gap;
        let start = if arrival > prev_depart {
            arrival
        } else {
            prev_depart
        };
        let (depart, timed_out, sprinted, sprint_secs) = if sp {
            serve_sprintable(cfg, &mut pool, arrival, start, w)
        } else {
            // No sprinting: one completion event at the ceiled horizon.
            (
                start + SimDuration::from_secs_f64_ceil(w),
                false,
                false,
                0.0,
            )
        };
        prev_depart = depart;
        if i >= cfg.warmup {
            emit(arrival, depart, timed_out, sprinted, sprint_secs);
        }
    }
}

/// Serves one query on the (single) slot, mirroring the event
/// calendar's transitions: returns `(depart, timed_out, sprinted,
/// sprint_secs)`.
fn serve_sprintable(
    cfg: &QsimConfig,
    pool: &mut Pool,
    arrival: SimTime,
    start: SimTime,
    w: f64,
) -> (SimTime, bool, bool, f64) {
    let speedup = cfg.sprint_speedup;
    let t_to = arrival.saturating_add(cfg.timeout);
    // The calendar only schedules timeouts strictly before the sentinel.
    let has_to = t_to < SimTime::MAX;
    let mut timed_out = false;
    let mut sprinted = false;
    let mut sprint_secs = 0.0f64;
    let mut sprinting = false;
    let mut remaining = w;
    let mut last = start;
    if has_to && t_to <= start {
        // Timeout fired while queued (or at the dispatch instant):
        // sprint from dispatch, budget permitting.
        timed_out = true;
        pool.update(start);
        if pool.available() {
            sprinting = true;
            sprinted = true;
            pool.sprinting = 1;
        }
    }
    loop {
        // The pending slot event: completion, or the budget-exhaustion
        // horizon while sprinting — exactly `reschedule`'s arithmetic
        // (`remaining / 1.0` is bitwise `remaining`, so the sustained
        // branch skips the division).
        let mut horizon = if sprinting {
            remaining / speedup
        } else {
            remaining
        };
        if sprinting {
            if let Some(exhaust) = pool.seconds_to_exhaustion() {
                horizon = horizon.min(exhaust);
            }
        }
        let t_next = last + SimDuration::from_secs_f64_ceil(horizon);
        if has_to && !timed_out && t_to <= t_next {
            // The query's own timeout pops first (`<=`: its sequence
            // number is older than any of its slot events).
            timed_out = true;
            pool.update(t_to);
            if pool.available() {
                // advance() at the pre-sprint speed, then switch.
                let dt = t_to.since(last).as_secs_f64();
                last = t_to;
                remaining = (remaining - dt).max(0.0);
                sprinting = true;
                sprinted = true;
                pool.sprinting = 1;
            }
            // Budget empty: the timeout is recorded but the pending
            // slot event stands unchanged — starved, like the calendar.
            continue;
        }
        // Live slot event at `t_next`.
        pool.update(t_next);
        let was_sprinting = sprinting;
        let dt = t_next.since(last).as_secs_f64();
        last = t_next;
        if sprinting {
            sprint_secs += dt;
        }
        // `dt * 1.0` is bitwise `dt`: only the sprint branch multiplies.
        let done = if sprinting { dt * speedup } else { dt };
        remaining = (remaining - done).max(0.0);
        // Two microseconds of slack, as in the calendar: completion
        // horizons are ceiled to microsecond resolution.
        if remaining <= 2e-6 {
            if sprinting {
                pool.sprinting = 0;
            }
            return (t_next, timed_out, sprinted, sprint_secs);
        }
        if was_sprinting && !pool.available() {
            // Budget ran dry mid-sprint: fall back to sustained speed.
            sprinting = false;
            pool.sprinting = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::QsimConfig;
    use crate::sim::Qsim;
    use simcore::dist::{Dist, DistKind};
    use simcore::rng::SimRng;
    use simcore::time::{Rate, SimDuration};

    fn base(util: f64, seed: u64) -> QsimConfig {
        let mu = 3_600.0 / 60.0;
        let mut c = QsimConfig::mm1(
            Rate::per_hour(mu * util),
            Dist::exponential(SimDuration::from_secs(60)),
            seed,
        );
        c.num_queries = 800;
        c.warmup = 80;
        c
    }

    fn assert_engines_agree(cfg: &QsimConfig, label: &str) {
        let direct = Qsim::new(cfg.clone()).unwrap().run().unwrap();
        let event = Qsim::new(cfg.clone()).unwrap().run_event_driven().unwrap();
        assert_eq!(
            direct.queries.len(),
            event.queries.len(),
            "{label}: length mismatch"
        );
        for (i, (d, e)) in direct.queries.iter().zip(event.queries.iter()).enumerate() {
            assert_eq!(d, e, "{label}: query {i} diverged");
        }
    }

    #[test]
    fn matches_event_engine_without_sprinting() {
        for util in [0.3, 0.7, 0.95] {
            let c = base(util, 11);
            assert_engines_agree(&c, &format!("plain M/M/1 util {util}"));
        }
    }

    #[test]
    fn matches_event_engine_with_sprinting() {
        for (timeout, budget, refill, speedup) in [
            (0.0, f64::INFINITY, 1.0, 2.0),
            (80.0, 80.0, 200.0, 1.5),
            (100.0, 20.0, 2_000.0, 2.5),
            (300.0, 5.0, 50.0, 1.8),
            (90.0, f64::INFINITY, 1.0, 0.8), // Sub-unit effective speedup.
        ] {
            let mut c = base(0.8, 17);
            c.timeout = SimDuration::from_secs_f64(timeout);
            c.budget_capacity_secs = budget;
            c.refill_secs = refill;
            c.sprint_speedup = speedup;
            assert_engines_agree(&c, &format!("sprint t={timeout} b={budget} s={speedup}"));
        }
    }

    #[test]
    fn matches_event_engine_randomized_sweep() {
        // Seeded fuzz over the whole configuration space the direct
        // engine claims: any divergence from the calendar fails here.
        let mut rng = SimRng::new(0xD1EC7);
        for trial in 0..40 {
            let mut c = base(rng.uniform(0.2, 1.05), 1_000 + trial);
            c.num_queries = 400;
            c.warmup = 40;
            c.sprint_speedup = rng.uniform(0.7, 3.0);
            c.timeout = match trial % 4 {
                0 => SimDuration::MAX,
                1 => SimDuration::ZERO,
                _ => SimDuration::from_secs_f64(rng.uniform(1.0, 400.0)),
            };
            c.budget_capacity_secs = match trial % 5 {
                0 => 0.0,
                1 => f64::INFINITY,
                _ => rng.uniform(1.0, 300.0),
            };
            c.refill_secs = rng.uniform(0.0, 1_000.0);
            c.arrival_kind = match trial % 3 {
                0 => DistKind::Exponential,
                1 => DistKind::Pareto { alpha: 1.5 },
                _ => DistKind::Hyperexponential { cov: 2.0 },
            };
            if trial % 6 == 0 {
                c.service = Dist::deterministic(SimDuration::from_secs(60));
            }
            assert_engines_agree(&c, &format!("fuzz trial {trial}"));
        }
    }

    #[test]
    fn direct_calendar_matches_heap_across_k_grid() {
        // k > 1 routes through DirectCalendar (see `Qsim::run`);
        // run_event_driven pins the binary heap. Any divergence in
        // event ordering — arrival vs timeout vs slot tie-breaks,
        // dropped-stale-slot-event bookkeeping — diverges a query.
        for k in [2, 4, 8] {
            for util in [0.3, 0.8, 1.2] {
                let mut c = base(util, 29);
                c.slots = k;
                assert_engines_agree(&c, &format!("M/M/{k} util {util}"));
            }
            for (timeout, budget, refill, speedup) in [
                (80.0, 80.0, 200.0, 1.5),
                (100.0, 20.0, 2_000.0, 2.5),
                (300.0, 5.0, 50.0, 1.8),
            ] {
                let mut c = base(0.9, 31);
                c.slots = k;
                c.timeout = SimDuration::from_secs_f64(timeout);
                c.budget_capacity_secs = budget;
                c.refill_secs = refill;
                c.sprint_speedup = speedup;
                assert_engines_agree(&c, &format!("sprint k={k} t={timeout} b={budget}"));
            }
        }
    }

    #[test]
    fn direct_calendar_matches_heap_randomized_sweep() {
        let mut rng = SimRng::new(0xCA1E);
        for trial in 0..30 {
            let mut c = base(rng.uniform(0.2, 1.4), 3_000 + trial);
            c.num_queries = 400;
            c.warmup = 40;
            c.slots = 2 + (trial as usize % 7); // 2..=8
            c.sprint_speedup = rng.uniform(0.7, 3.0);
            c.timeout = match trial % 4 {
                0 => SimDuration::MAX,
                1 => SimDuration::ZERO,
                _ => SimDuration::from_secs_f64(rng.uniform(1.0, 400.0)),
            };
            c.budget_capacity_secs = match trial % 5 {
                0 => 0.0,
                1 => f64::INFINITY,
                _ => rng.uniform(1.0, 300.0),
            };
            c.refill_secs = rng.uniform(0.0, 1_000.0);
            c.arrival_kind = match trial % 3 {
                0 => DistKind::Exponential,
                1 => DistKind::Pareto { alpha: 1.5 },
                _ => DistKind::Hyperexponential { cov: 2.0 },
            };
            assert_engines_agree(&c, &format!("k-grid fuzz trial {trial} k={}", c.slots));
        }
    }

    #[test]
    fn trace_replay_matches_live_run_bitwise() {
        use crate::trace::SimTrace;
        use std::sync::Arc;
        let mut c = base(0.85, 23);
        c.timeout = SimDuration::from_secs(90);
        c.budget_capacity_secs = 60.0;
        c.refill_secs = 400.0;
        c.sprint_speedup = 1.6;
        let live = Qsim::new(c.clone()).unwrap().run().unwrap();
        let cfg = Arc::new(c);
        let trace = Arc::new(SimTrace::materialize(&cfg));
        let replay = Qsim::with_trace(Arc::clone(&cfg), Arc::clone(&trace))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(live.queries, replay.queries);
        // And on the event engine too.
        let replay_ev = Qsim::with_trace(cfg, trace)
            .unwrap()
            .run_event_driven()
            .unwrap();
        assert_eq!(live.queries, replay_ev.queries);
    }

    #[test]
    fn short_trace_rejected() {
        use crate::trace::SimTrace;
        use std::sync::Arc;
        let c = base(0.5, 29);
        let mut short = c.clone();
        short.num_queries = 10;
        let trace = Arc::new(SimTrace::materialize(&short));
        assert!(Qsim::with_trace(Arc::new(c), trace).is_err());
    }
}
