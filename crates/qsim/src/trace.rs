//! Common-random-number traces: pre-materialized simulation inputs.
//!
//! Every replication of the queue simulator consumes exactly two
//! random streams — inter-arrival gaps and service demands. A
//! [`SimTrace`] materializes both once per seed, in the exact order the
//! live-RNG simulator would draw them, so that
//!
//! 1. reruns skip all distribution sampling (and, for empirical
//!    service distributions, all table lookups), and
//! 2. *different* candidate policies replay *identical* randomness —
//!    the classic common-random-numbers (CRN) variance reduction. The
//!    annealing explorer (§4.2) evaluates ~150 candidate timeouts per
//!    search; with shared traces the difference between two candidates
//!    is purely the policy, never the noise.
//!
//! Timeout, budget, and sprint speedup do not affect the draws (they
//! only change how the simulator *consumes* work), so a trace is
//! reusable across every candidate policy at a fixed arrival process,
//! service distribution, and replication seed. [`TraceCache`] keys on
//! exactly that tuple.

use crate::config::QsimConfig;
use crate::shared::AtomicTable;
use simcore::dist::{Dist, DistKind};
use simcore::rng::SimRng;
use simcore::time::SimDuration;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Pre-drawn inputs for one simulation run: `num_queries` arrival gaps
/// and service demands, in draw order.
///
/// Materialization reproduces the live simulator's stream derivation
/// bit-for-bit (`SimRng::new(seed)` split into arrival and service
/// streams), so a trace-driven run is bit-identical to a live-RNG run
/// of the same configuration and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrace {
    seed: u64,
    arrival_gaps: Vec<SimDuration>,
    service_secs: Vec<f64>,
}

impl SimTrace {
    /// Materializes the trace a live run of `cfg` would draw.
    pub fn materialize(cfg: &QsimConfig) -> SimTrace {
        Self::materialize_with_seed(cfg, cfg.seed)
    }

    /// Materializes the trace a live run of `cfg.with_seed(seed)` would
    /// draw. The draw-order contract with [`crate::sim::Qsim`]: one
    /// root RNG split into an arrival stream (label 1) and a service
    /// stream (label 2); gaps and services are each drawn sequentially
    /// within their stream, and service demands are floored at 1 µs
    /// exactly as the simulator floors them.
    pub fn materialize_with_seed(cfg: &QsimConfig, seed: u64) -> SimTrace {
        let mut root = SimRng::new(seed);
        let mut arrival_rng = root.split(1);
        let mut service_rng = root.split(2);
        let arrival_dist = Dist::Parametric {
            kind: cfg.arrival_kind,
            mean: cfg.arrival_rate.mean_interval(),
        };
        let n = cfg.num_queries;
        let arrival_gaps = (0..n)
            .map(|_| arrival_dist.sample(&mut arrival_rng))
            .collect();
        let service_secs = (0..n)
            .map(|_| cfg.service.sample(&mut service_rng).as_secs_f64().max(1e-6))
            .collect();
        SimTrace {
            seed,
            arrival_gaps,
            service_secs,
        }
    }

    /// The seed the trace was drawn with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of queries the trace covers.
    pub fn len(&self) -> usize {
        self.arrival_gaps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrival_gaps.is_empty()
    }

    /// The `i`-th inter-arrival gap.
    #[inline]
    pub fn gap(&self, i: usize) -> SimDuration {
        self.arrival_gaps[i]
    }

    /// All inter-arrival gaps, in draw order.
    pub(crate) fn gaps(&self) -> &[SimDuration] {
        &self.arrival_gaps
    }

    /// All service demands (sustained-rate seconds), in draw order.
    pub(crate) fn services(&self) -> &[f64] {
        &self.service_secs
    }

    /// The `i`-th service demand in sustained-rate seconds (already
    /// floored at 1 µs).
    #[inline]
    pub fn service_secs(&self, i: usize) -> f64 {
        self.service_secs[i]
    }
}

/// Everything that determines the drawn values. The service
/// distribution is folded in as a fingerprint (variant, parameters,
/// and a hash of empirical samples) rather than a deep comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TraceKey {
    seed: u64,
    num_queries: usize,
    arrival_rate_bits: u64,
    arrival_kind: (u8, u64),
    service_fp: u64,
}

fn kind_key(kind: DistKind) -> (u8, u64) {
    match kind {
        DistKind::Exponential => (0, 0),
        DistKind::Pareto { alpha } => (1, alpha.to_bits()),
        DistKind::Deterministic => (2, 0),
        DistKind::Lognormal { cov } => (3, cov.to_bits()),
        DistKind::Hyperexponential { cov } => (4, cov.to_bits()),
    }
}

/// FNV-1a fold of the fields that determine service draws.
fn service_fingerprint(service: &Dist) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    match service {
        Dist::Parametric { kind, mean } => {
            let (tag, param) = kind_key(*kind);
            mix(1);
            mix(tag as u64);
            mix(param);
            mix(mean.0);
        }
        Dist::Empirical { samples } => {
            mix(2);
            mix(samples.len() as u64);
            for s in samples {
                mix(s.0);
            }
        }
    }
    h
}

/// Slot capacity of a trace table. At the intended load (an annealing
/// search touches `replications` traces per condition, a fleet run a
/// few hundred) the table stays far below half full; if it ever fills,
/// inserts are dropped and runs keep materializing uncached — a leak
/// guard, not a tuning knob.
const TRACE_TABLE_SLOTS: usize = 8_192;

/// A shareable, thread-safe memo of materialized traces with a
/// lock-free read path ([`AtomicTable`]): a warm lookup is a hash plus
/// a few atomic loads — no mutex — so every pool worker and every
/// model instance can hit one cache concurrently without contention.
///
/// Clones share the underlying cache (it is an `Arc`), so a model can
/// hand the same cache to every prediction it makes. The key
/// fingerprints *everything* that determines the drawn values (seed,
/// query count, arrival process, service distribution), so sharing a
/// cache across profiles — including the process-global
/// [`TraceCache::shared`] instance — is sound: a hit from a foreign
/// worker is bit-identical to a local materialization.
#[derive(Clone)]
pub struct TraceCache {
    inner: Arc<AtomicTable<TraceKey, Arc<SimTrace>>>,
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache {
            inner: Arc::new(AtomicTable::new(TRACE_TABLE_SLOTS)),
        }
    }
}

impl TraceCache {
    /// Creates an empty private cache.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// The process-global shared cache. All models built with default
    /// options share this instance, so concurrent workers (and
    /// repeated model constructions over the same profile) reuse each
    /// other's materializations instead of redrawing identical traces
    /// per worker.
    pub fn shared() -> TraceCache {
        static SHARED: OnceLock<TraceCache> = OnceLock::new();
        SHARED.get_or_init(TraceCache::new).clone()
    }

    /// Returns the trace a live run of `cfg.with_seed(seed)` would
    /// draw, materializing and caching it on first use.
    pub fn trace_for(&self, cfg: &QsimConfig, seed: u64) -> Arc<SimTrace> {
        let key = TraceKey {
            seed,
            num_queries: cfg.num_queries,
            arrival_rate_bits: cfg.arrival_rate.qph().to_bits(),
            arrival_kind: kind_key(cfg.arrival_kind),
            service_fp: service_fingerprint(&cfg.service),
        };
        if let Some(t) = self.inner.get(&key) {
            obs::global().trace_cache_hits.incr();
            return Arc::clone(t);
        }
        obs::global().trace_cache_misses.incr();
        let trace = Arc::new(SimTrace::materialize_with_seed(cfg, seed));
        match self.inner.insert(key, Arc::clone(&trace)) {
            // The canonical entry (ours, or a racer's bit-identical
            // one — the key pins every drawn value).
            Some(t) => Arc::clone(t),
            // Table full: hand back the uncached materialization.
            None => trace,
        }
    }

    /// Number of traces currently cached.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCache")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::Rate;

    fn cfg(seed: u64) -> QsimConfig {
        let mut c = QsimConfig::mm1(
            Rate::per_hour(30.0),
            Dist::exponential(SimDuration::from_secs(60)),
            seed,
        );
        c.num_queries = 500;
        c.warmup = 50;
        c
    }

    #[test]
    fn materialization_is_deterministic() {
        let a = SimTrace::materialize(&cfg(7));
        let b = SimTrace::materialize(&cfg(7));
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SimTrace::materialize(&cfg(7));
        let b = SimTrace::materialize(&cfg(8));
        assert_ne!(a, b);
    }

    #[test]
    fn policy_knobs_do_not_change_the_trace() {
        let base = SimTrace::materialize(&cfg(7));
        let mut c = cfg(7);
        c.timeout = SimDuration::from_secs(80);
        c.sprint_speedup = 1.5;
        c.budget_capacity_secs = 100.0;
        c.refill_secs = 300.0;
        assert_eq!(SimTrace::materialize(&c), base);
    }

    #[test]
    fn cache_hits_on_repeat_and_misses_on_rate_change() {
        let cache = TraceCache::new();
        let a = cache.trace_for(&cfg(7), 7);
        let b = cache.trace_for(&cfg(7), 7);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        assert_eq!(cache.len(), 1);
        let mut faster = cfg(7);
        faster.arrival_rate = Rate::per_hour(40.0);
        let c = cache.trace_for(&faster, 7);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_distinguishes_service_tables() {
        let cache = TraceCache::new();
        let mut e1 = cfg(7);
        e1.service = Dist::empirical(vec![SimDuration::from_secs(10), SimDuration::from_secs(30)]);
        let mut e2 = cfg(7);
        e2.service = Dist::empirical(vec![SimDuration::from_secs(15), SimDuration::from_secs(25)]);
        // Same mean, same length — only the sample values differ.
        let a = cache.trace_for(&e1, 7);
        let b = cache.trace_for(&e2, 7);
        assert_ne!(a.service_secs(0), b.service_secs(0));
    }

    #[test]
    fn clones_share_storage() {
        let cache = TraceCache::new();
        let clone = cache.clone();
        let _ = cache.trace_for(&cfg(1), 1);
        assert_eq!(clone.len(), 1);
    }
}
