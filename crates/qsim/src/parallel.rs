//! Parallel batch execution of queue simulations.
//!
//! §2.2: the simulator "executes quickly, parallelizing execution
//! across multiple cores and servers easily", and Fig. 11 measures
//! prediction throughput scaling from 1 to 12 cores. A *prediction*
//! averages a handful of replicated runs with different seeds; a batch
//! fans independent configurations out over workers.
//!
//! Three interchangeable backends execute a batch:
//!
//! - [`Backend::Pool`] (the default) reuses the process-wide
//!   [`SimPool`](crate::pool::SimPool) — no thread spawns per call, and
//!   configurations are shared by `Arc` instead of deep-cloned per
//!   task.
//! - [`Backend::Scoped`] spawns a fresh `thread::scope` per call but
//!   still `Arc`-shares configurations. Kept as an independent
//!   implementation for determinism cross-checks.
//! - [`Backend::Reference`] is the frozen pre-fast-path code: scoped
//!   threads, a deep `QsimConfig` clone per task (including any
//!   empirical service table), and the event-calendar engine. It exists
//!   as the perf baseline and bit-identity oracle for `perf_smoke`.
//!
//! All three return input-ordered, bit-identical results for any
//! thread count.

use crate::config::{QsimConfig, QsimResult};
use crate::pool::SimPool;
use crate::sim::Qsim;
use crate::trace::TraceCache;
use simcore::SprintError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which execution strategy a batch uses. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Persistent process-wide worker pool, `Arc`-shared configs.
    #[default]
    Pool,
    /// Fresh scoped threads per call, `Arc`-shared configs.
    Scoped,
    /// Pre-fast-path baseline: scoped threads, deep config clone per
    /// task, event-calendar engine. Slow on purpose — do not use
    /// outside benchmarks and oracle tests.
    Reference,
}

/// The golden-ratio seed stride used to derive per-replication seeds
/// from a prediction's base seed.
const SEED_STRIDE: u64 = 0x9E37_79B9;

/// Derives replication `i`'s simulator seed from a prediction's base
/// seed. Exposed so trace-driven and live-RNG predictions agree on the
/// randomness they (re)use.
pub fn replication_seed(base: u64, i: usize) -> u64 {
    base.wrapping_add(SEED_STRIDE * (i as u64 + 1))
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Simulates one shared config, converting a worker panic into a typed
/// error instead of unwinding into shared batch state.
fn run_one_shared(cfg: Arc<QsimConfig>, index: usize) -> Result<QsimResult, SprintError> {
    match catch_unwind(AssertUnwindSafe(|| Qsim::shared(cfg).and_then(Qsim::run))) {
        Ok(result) => result,
        Err(payload) => Err(SprintError::WorkerPanic {
            index,
            message: panic_message(payload),
        }),
    }
}

/// The frozen baseline worker: deep config clone, event-calendar
/// engine.
fn run_one_reference(cfg: QsimConfig, index: usize) -> Result<QsimResult, SprintError> {
    match catch_unwind(AssertUnwindSafe(|| {
        Qsim::new(cfg).and_then(Qsim::run_event_driven)
    })) {
        Ok(result) => result,
        Err(payload) => Err(SprintError::WorkerPanic {
            index,
            message: panic_message(payload),
        }),
    }
}

/// Runs each configuration to completion on the default backend (the
/// persistent pool), fanning out over `threads` concurrent executors
/// (1 = sequential). Results keep input order and are identical
/// regardless of thread count or backend.
///
/// A panicking worker does not abort the batch: the panic is caught,
/// the failing config's slot is marked with
/// [`SprintError::WorkerPanic`], and every other configuration still
/// runs to completion. The first failure (by input order) is then
/// returned as the batch error.
///
/// # Errors
///
/// Returns [`SprintError::InvalidConfig`] if `threads` is zero or a
/// config fails validation, and [`SprintError::WorkerPanic`] if a
/// worker panicked mid-simulation.
pub fn run_batch(configs: Vec<QsimConfig>, threads: usize) -> Result<Vec<QsimResult>, SprintError> {
    run_batch_with(configs, threads, Backend::Pool)
}

/// [`run_batch`] with an explicit [`Backend`].
///
/// # Errors
///
/// Same contract as [`run_batch`].
pub fn run_batch_with(
    configs: Vec<QsimConfig>,
    threads: usize,
    backend: Backend,
) -> Result<Vec<QsimResult>, SprintError> {
    SprintError::require_nonzero("run_batch::threads", threads)?;
    match backend {
        Backend::Pool => {
            if threads == 1 {
                // Sequential fast path: skip the batch bookkeeping
                // entirely. Same per-task code, same order.
                return configs
                    .into_iter()
                    .map(Arc::new)
                    .enumerate()
                    .map(|(i, cfg)| run_one_shared(cfg, i))
                    .collect();
            }
            let tasks: Vec<_> = configs
                .into_iter()
                .map(Arc::new)
                .enumerate()
                .map(|(i, cfg)| move || run_one_shared(cfg, i))
                .collect();
            SimPool::global()
                .run_ordered(tasks, threads)
                .into_iter()
                .enumerate()
                .map(|(i, slot)| {
                    slot.unwrap_or_else(|| {
                        Err(SprintError::WorkerPanic {
                            index: i,
                            message: "pool task panicked".to_string(),
                        })
                    })
                })
                .collect()
        }
        Backend::Scoped => run_batch_scoped(configs, threads),
        Backend::Reference => run_batch_reference(configs, threads),
    }
}

/// Scoped-thread backend: spawns per call, `Arc`-shares configs.
fn run_batch_scoped(
    configs: Vec<QsimConfig>,
    threads: usize,
) -> Result<Vec<QsimResult>, SprintError> {
    let configs: Vec<Arc<QsimConfig>> = configs.into_iter().map(Arc::new).collect();
    if threads == 1 || configs.len() <= 1 {
        return configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| run_one_shared(c, i))
            .collect();
    }
    let n = configs.len();
    let slots: Vec<Mutex<Option<Result<QsimResult, SprintError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let configs = &configs;
    let slots_ref = &slots;
    let next_ref = &next;
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let out = run_one_shared(Arc::clone(&configs[i]), i);
                // run_one_shared cannot unwind, so the mutex is never
                // poisoned by this worker; recover defensively anyway.
                let mut slot = slots_ref[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                *slot = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(SprintError::runtime(
                        "qsim::run_batch_shared",
                        "worker exited before filling its result slot",
                    ))
                })
        })
        .collect()
}

/// The frozen pre-fast-path batch: deep clones and the event calendar.
fn run_batch_reference(
    configs: Vec<QsimConfig>,
    threads: usize,
) -> Result<Vec<QsimResult>, SprintError> {
    if threads == 1 || configs.len() <= 1 {
        return configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| run_one_reference(c, i))
            .collect();
    }
    let n = configs.len();
    let slots: Vec<Mutex<Option<Result<QsimResult, SprintError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let configs = &configs;
    let slots_ref = &slots;
    let next_ref = &next;
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let out = run_one_reference(configs[i].clone(), i);
                let mut slot = slots_ref[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                *slot = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(SprintError::runtime(
                        "qsim::run_batch_reference",
                        "worker exited before filling its result slot",
                    ))
                })
        })
        .collect()
}

/// Predicts mean response time by averaging `replications` simulator
/// runs with derived seeds — one "prediction" in the Fig. 11 sense.
///
/// # Errors
///
/// Returns an error if `replications` or `threads` is zero, or if any
/// replication fails.
pub fn predict_mean_response(
    cfg: &QsimConfig,
    replications: usize,
    threads: usize,
) -> Result<f64, SprintError> {
    SprintError::require_nonzero("predict_mean_response::replications", replications)?;
    SprintError::require_nonzero("predict_mean_response::threads", threads)?;
    let tasks: Vec<_> = (0..replications)
        .map(|i| {
            let c = cfg.with_seed(replication_seed(cfg.seed, i));
            move || match catch_unwind(AssertUnwindSafe(|| {
                Qsim::new(c).and_then(Qsim::run_mean_response)
            })) {
                Ok(result) => result,
                Err(payload) => Err(SprintError::WorkerPanic {
                    index: i,
                    message: panic_message(payload),
                }),
            }
        })
        .collect();
    average_pool_tasks(tasks, threads, replications)
}

/// [`predict_mean_response`] on the frozen pre-fast-path baseline.
/// Bit-identical output, pre-PR cost profile; exists for `perf_smoke`
/// and oracle tests.
///
/// # Errors
///
/// Same contract as [`predict_mean_response`].
pub fn predict_mean_response_reference(
    cfg: &QsimConfig,
    replications: usize,
    threads: usize,
) -> Result<f64, SprintError> {
    SprintError::require_nonzero("predict_mean_response::replications", replications)?;
    let configs: Vec<QsimConfig> = (0..replications)
        .map(|i| cfg.with_seed(replication_seed(cfg.seed, i)))
        .collect();
    let results = run_batch_with(configs, threads, Backend::Reference)?;
    Ok(average_mean_response(&results, replications))
}

/// [`predict_mean_response`] with common-random-number traces: each
/// replication's inputs are materialized once per seed (via `cache`)
/// and replayed, so repeated predictions at the same arrival/service
/// process — e.g. the ~150 candidate timeouts of one annealing search —
/// skip all distribution sampling *and* share identical randomness
/// (CRN). Bit-identical to [`predict_mean_response`] at equal seeds:
/// the trace replays exactly the draws the live RNG would make, and the
/// simulator never consumes randomness elsewhere.
///
/// # Errors
///
/// Returns an error if `replications` or `threads` is zero, or if any
/// replication fails.
pub fn predict_mean_response_traced(
    cfg: &QsimConfig,
    replications: usize,
    threads: usize,
    cache: &TraceCache,
) -> Result<f64, SprintError> {
    SprintError::require_nonzero("predict_mean_response::replications", replications)?;
    SprintError::require_nonzero("predict_mean_response::threads", threads)?;
    // One shared config for every replication: in trace mode the
    // simulator never reads `cfg.seed`, so the deep per-replication
    // `with_seed` clone of the live path is unnecessary.
    let shared = Arc::new(cfg.clone());
    let tasks: Vec<_> = (0..replications)
        .map(|i| {
            let trace = cache.trace_for(cfg, replication_seed(cfg.seed, i));
            let cfg = Arc::clone(&shared);
            move || match catch_unwind(AssertUnwindSafe(|| {
                Qsim::with_trace(cfg, trace).and_then(Qsim::run_mean_response)
            })) {
                Ok(result) => result,
                Err(payload) => Err(SprintError::WorkerPanic {
                    index: i,
                    message: panic_message(payload),
                }),
            }
        })
        .collect();
    average_pool_tasks(tasks, threads, replications)
}

/// Runs per-replication mean-response tasks on the global pool and
/// averages them in input order — the summation order every prediction
/// variant shares, so their floating-point results can be compared
/// bitwise.
fn average_pool_tasks(
    tasks: Vec<impl FnOnce() -> Result<f64, SprintError> + Send + 'static>,
    threads: usize,
    replications: usize,
) -> Result<f64, SprintError> {
    if threads == 1 {
        // Sequential fast path: no boxing, no batch bookkeeping. Same
        // task order, so the sum is bitwise the pooled result.
        let mut sum = 0.0;
        for task in tasks {
            sum += task()?;
        }
        return Ok(sum / replications as f64);
    }
    let means: Vec<f64> = SimPool::global()
        .run_ordered(tasks, threads)
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                Err(SprintError::WorkerPanic {
                    index: i,
                    message: "pool task panicked".to_string(),
                })
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(means.into_iter().sum::<f64>() / replications as f64)
}

/// Input-order average of full batch results; keeps the same summation
/// order as [`average_pool_tasks`].
fn average_mean_response(results: &[QsimResult], replications: usize) -> f64 {
    results
        .iter()
        .map(QsimResult::mean_response_secs)
        .sum::<f64>()
        / replications as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::Dist;
    use simcore::time::{Rate, SimDuration};

    fn small_cfg(seed: u64) -> QsimConfig {
        let mut c = QsimConfig::mm1(
            Rate::per_hour(30.0),
            Dist::exponential(SimDuration::from_secs(60)),
            seed,
        );
        c.num_queries = 2_000;
        c.warmup = 200;
        c
    }

    #[test]
    fn batch_preserves_order_and_determinism() {
        let configs: Vec<QsimConfig> = (0..8).map(small_cfg).collect();
        let seq = run_batch(configs.clone(), 1).unwrap();
        let par = run_batch(configs, 4).unwrap();
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.queries, b.queries);
        }
    }

    #[test]
    fn backends_are_bit_identical() {
        let configs: Vec<QsimConfig> = (0..6).map(small_cfg).collect();
        let pool = run_batch_with(configs.clone(), 4, Backend::Pool).unwrap();
        let scoped = run_batch_with(configs.clone(), 4, Backend::Scoped).unwrap();
        let reference = run_batch_with(configs, 4, Backend::Reference).unwrap();
        for ((p, s), r) in pool.iter().zip(scoped.iter()).zip(reference.iter()) {
            assert_eq!(p.queries, s.queries, "pool vs scoped");
            assert_eq!(p.queries, r.queries, "pool vs reference");
        }
    }

    #[test]
    fn predict_averages_replications() {
        let cfg = small_cfg(5);
        let p1 = predict_mean_response(&cfg, 4, 1).unwrap();
        let p2 = predict_mean_response(&cfg, 4, 4).unwrap();
        assert_eq!(p1, p2, "thread count must not change the estimate");
        // Sanity: near the M/M/1 closed form 1/(µ-λ) = 120 s at 50% load.
        assert!((p1 - 120.0).abs() / 120.0 < 0.15, "estimate {p1}");
    }

    #[test]
    fn traced_prediction_is_bit_identical_to_live() {
        let cfg = small_cfg(5);
        let cache = TraceCache::new();
        let live = predict_mean_response(&cfg, 4, 2).unwrap();
        let traced = predict_mean_response_traced(&cfg, 4, 2, &cache).unwrap();
        let reference = predict_mean_response_reference(&cfg, 4, 2).unwrap();
        assert_eq!(live.to_bits(), traced.to_bits());
        assert_eq!(live.to_bits(), reference.to_bits());
        assert_eq!(cache.len(), 4, "one trace per replication");
        // Second traced call hits the cache and stays identical.
        assert_eq!(
            traced.to_bits(),
            predict_mean_response_traced(&cfg, 4, 2, &cache)
                .unwrap()
                .to_bits()
        );
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn single_job_batch() {
        let r = run_batch(vec![small_cfg(1)], 8).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(run_batch(vec![], 0).is_err());
        assert!(predict_mean_response(&small_cfg(1), 0, 4).is_err());
        assert!(predict_mean_response_traced(&small_cfg(1), 0, 4, &TraceCache::new()).is_err());
    }

    #[test]
    fn invalid_config_marks_slot_without_aborting_batch() {
        let mut bad = small_cfg(2);
        bad.slots = 0;
        let configs = vec![small_cfg(1), bad, small_cfg(3)];
        let err = run_batch(configs, 4).expect_err("bad config must surface");
        assert!(matches!(err, SprintError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn worker_panic_is_caught_and_typed() {
        // An empty empirical distribution panics when sampled — a
        // mid-run worker panic, not a config-validation failure. The
        // batch must finish the healthy configs and report the panic as
        // a typed error instead of poisoning shared state.
        for backend in [Backend::Pool, Backend::Scoped, Backend::Reference] {
            let mut poisoned = small_cfg(2);
            poisoned.service = Dist::Empirical { samples: vec![] };
            let configs = vec![small_cfg(1), poisoned, small_cfg(3)];
            let err = run_batch_with(configs, 4, backend).expect_err("worker panic must surface");
            match err {
                SprintError::WorkerPanic { index, .. } => assert_eq!(index, 1),
                other => panic!("expected WorkerPanic, got {other} ({backend:?})"),
            }
        }
    }
}
