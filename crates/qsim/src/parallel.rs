//! Parallel batch execution of queue simulations.
//!
//! §2.2: the simulator "executes quickly, parallelizing execution
//! across multiple cores and servers easily", and Fig. 11 measures
//! prediction throughput scaling from 1 to 12 cores. A *prediction*
//! averages a handful of replicated runs with different seeds; a batch
//! fans independent configurations out over scoped worker threads.

use crate::config::{QsimConfig, QsimResult};
use crate::sim::Qsim;
use simcore::SprintError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Simulates one config, converting a worker panic into a typed error
/// instead of unwinding into (and poisoning) shared batch state.
fn run_one(cfg: QsimConfig, index: usize) -> Result<QsimResult, SprintError> {
    match catch_unwind(AssertUnwindSafe(|| Qsim::new(cfg).and_then(Qsim::run))) {
        Ok(result) => result,
        Err(payload) => Err(SprintError::WorkerPanic {
            index,
            message: panic_message(payload),
        }),
    }
}

/// Runs each configuration to completion, fanning out over `threads`
/// worker threads (1 = sequential). Results keep input order and are
/// identical regardless of thread count.
///
/// A panicking worker does not abort the batch: the panic is caught,
/// the failing config's slot is marked with
/// [`SprintError::WorkerPanic`], and every other configuration still
/// runs to completion. The first failure (by input order) is then
/// returned as the batch error.
///
/// # Errors
///
/// Returns [`SprintError::InvalidConfig`] if `threads` is zero or a
/// config fails validation, and [`SprintError::WorkerPanic`] if a
/// worker panicked mid-simulation.
pub fn run_batch(configs: Vec<QsimConfig>, threads: usize) -> Result<Vec<QsimResult>, SprintError> {
    SprintError::require_nonzero("run_batch::threads", threads)?;
    if threads == 1 || configs.len() <= 1 {
        return configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| run_one(c, i))
            .collect();
    }
    let n = configs.len();
    let slots: Vec<Mutex<Option<Result<QsimResult, SprintError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let configs = &configs;
    let slots_ref = &slots;
    let next_ref = &next;
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let out = run_one(configs[i].clone(), i);
                // run_one cannot unwind, so the mutex is never poisoned
                // by this worker; recover defensively anyway.
                let mut slot = slots_ref[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                *slot = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every job completed")
        })
        .collect()
}

/// Predicts mean response time by averaging `replications` simulator
/// runs with derived seeds — one "prediction" in the Fig. 11 sense.
///
/// # Errors
///
/// Returns an error if `replications` or `threads` is zero, or if any
/// replication fails.
pub fn predict_mean_response(
    cfg: &QsimConfig,
    replications: usize,
    threads: usize,
) -> Result<f64, SprintError> {
    SprintError::require_nonzero("predict_mean_response::replications", replications)?;
    let configs: Vec<QsimConfig> = (0..replications)
        .map(|i| cfg.with_seed(cfg.seed.wrapping_add(0x9E37_79B9 * (i as u64 + 1))))
        .collect();
    let results = run_batch(configs, threads)?;
    Ok(results
        .iter()
        .map(QsimResult::mean_response_secs)
        .sum::<f64>()
        / replications as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::Dist;
    use simcore::time::{Rate, SimDuration};

    fn small_cfg(seed: u64) -> QsimConfig {
        let mut c = QsimConfig::mm1(
            Rate::per_hour(30.0),
            Dist::exponential(SimDuration::from_secs(60)),
            seed,
        );
        c.num_queries = 2_000;
        c.warmup = 200;
        c
    }

    #[test]
    fn batch_preserves_order_and_determinism() {
        let configs: Vec<QsimConfig> = (0..8).map(small_cfg).collect();
        let seq = run_batch(configs.clone(), 1).unwrap();
        let par = run_batch(configs, 4).unwrap();
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.queries, b.queries);
        }
    }

    #[test]
    fn predict_averages_replications() {
        let cfg = small_cfg(5);
        let p1 = predict_mean_response(&cfg, 4, 1).unwrap();
        let p2 = predict_mean_response(&cfg, 4, 4).unwrap();
        assert_eq!(p1, p2, "thread count must not change the estimate");
        // Sanity: near the M/M/1 closed form 1/(µ-λ) = 120 s at 50% load.
        assert!((p1 - 120.0).abs() / 120.0 < 0.15, "estimate {p1}");
    }

    #[test]
    fn single_job_batch() {
        let r = run_batch(vec![small_cfg(1)], 8).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(run_batch(vec![], 0).is_err());
        assert!(predict_mean_response(&small_cfg(1), 0, 4).is_err());
    }

    #[test]
    fn invalid_config_marks_slot_without_aborting_batch() {
        let mut bad = small_cfg(2);
        bad.slots = 0;
        let configs = vec![small_cfg(1), bad, small_cfg(3)];
        let err = run_batch(configs, 4).expect_err("bad config must surface");
        assert!(matches!(err, SprintError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn worker_panic_is_caught_and_typed() {
        // An empty empirical distribution panics when sampled — a
        // mid-run worker panic, not a config-validation failure. The
        // batch must finish the healthy configs and report the panic as
        // a typed error instead of poisoning shared state.
        let mut poisoned = small_cfg(2);
        poisoned.service = Dist::Empirical { samples: vec![] };
        let configs = vec![small_cfg(1), poisoned, small_cfg(3)];
        let err = run_batch(configs, 4).expect_err("worker panic must surface");
        match err {
            SprintError::WorkerPanic { index, .. } => assert_eq!(index, 1),
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }
}
