//! Parallel batch execution of queue simulations.
//!
//! §2.2: the simulator "executes quickly, parallelizing execution
//! across multiple cores and servers easily", and Fig. 11 measures
//! prediction throughput scaling from 1 to 12 cores. A *prediction*
//! averages a handful of replicated runs with different seeds; a batch
//! fans independent configurations out over scoped worker threads.

use crate::config::{QsimConfig, QsimResult};
use crate::sim::Qsim;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs each configuration to completion, fanning out over `threads`
/// worker threads (1 = sequential). Results keep input order and are
/// identical regardless of thread count.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker panics.
pub fn run_batch(configs: Vec<QsimConfig>, threads: usize) -> Vec<QsimResult> {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || configs.len() <= 1 {
        return configs.into_iter().map(|c| Qsim::new(c).run()).collect();
    }
    let n = configs.len();
    let slots: Vec<Mutex<Option<QsimResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let configs = &configs;
    let slots_ref = &slots;
    let next_ref = &next;
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(move |_| loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let out = Qsim::new(configs[i].clone()).run();
                *slots_ref[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    })
    .expect("worker thread panicked");
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job completed")
        })
        .collect()
}

/// Predicts mean response time by averaging `replications` simulator
/// runs with derived seeds — one "prediction" in the Fig. 11 sense.
///
/// # Panics
///
/// Panics if `replications` is zero.
pub fn predict_mean_response(cfg: &QsimConfig, replications: usize, threads: usize) -> f64 {
    assert!(replications > 0, "need at least one replication");
    let configs: Vec<QsimConfig> = (0..replications)
        .map(|i| cfg.with_seed(cfg.seed.wrapping_add(0x9E37_79B9 * (i as u64 + 1))))
        .collect();
    let results = run_batch(configs, threads);
    results
        .iter()
        .map(QsimResult::mean_response_secs)
        .sum::<f64>()
        / replications as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::Dist;
    use simcore::time::{Rate, SimDuration};

    fn small_cfg(seed: u64) -> QsimConfig {
        let mut c = QsimConfig::mm1(
            Rate::per_hour(30.0),
            Dist::exponential(SimDuration::from_secs(60)),
            seed,
        );
        c.num_queries = 2_000;
        c.warmup = 200;
        c
    }

    #[test]
    fn batch_preserves_order_and_determinism() {
        let configs: Vec<QsimConfig> = (0..8).map(small_cfg).collect();
        let seq = run_batch(configs.clone(), 1);
        let par = run_batch(configs, 4);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.queries, b.queries);
        }
    }

    #[test]
    fn predict_averages_replications() {
        let cfg = small_cfg(5);
        let p1 = predict_mean_response(&cfg, 4, 1);
        let p2 = predict_mean_response(&cfg, 4, 4);
        assert_eq!(p1, p2, "thread count must not change the estimate");
        // Sanity: near the M/M/1 closed form 1/(µ-λ) = 120 s at 50% load.
        assert!((p1 - 120.0).abs() / 120.0 < 0.15, "estimate {p1}");
    }

    #[test]
    fn single_job_batch() {
        let r = run_batch(vec![small_cfg(1)], 8);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = run_batch(vec![], 0);
    }
}
