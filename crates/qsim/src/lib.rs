//! Timeout-aware first-principles queue simulator (§2.2, Algorithm 1).
//!
//! This is the paper's G/G/k queuing simulator: queries arrive, wait
//! FIFO, and depart after their (sampled) service time. A timeout
//! relative to each query's arrival triggers sprinting — before
//! dispatch it marks the query to sprint from the start; after dispatch
//! it accelerates the remaining work immediately, budget permitting.
//! Sprinting applies a *uniform* linear speedup to remaining work
//! (Equation 1): the simulator deliberately knows nothing about phases,
//! toggle overheads, or interference. Feeding it the machine-learned
//! *effective sprint rate* µe instead of the profiled marginal rate µm
//! is what closes that gap (§2.3).
//!
//! The paper's pseudo-code steps a microsecond clock; we schedule
//! events instead, with identical semantics at microsecond resolution
//! but O(events) cost — this is what makes the Fig. 11 throughput
//! numbers (hundreds of predictions per minute, scaling with cores)
//! easy to reproduce.
//!
//! # Examples
//!
//! An M/M/1 queue at 50% load with a 60-second mean service time has a
//! closed-form mean response time of 120 seconds:
//!
//! ```
//! use qsim::{Qsim, QsimConfig};
//! use simcore::dist::Dist;
//! use simcore::time::{Rate, SimDuration};
//!
//! let mut cfg = QsimConfig::mm1(
//!     Rate::per_hour(30.0),
//!     Dist::exponential(SimDuration::from_secs(60)),
//!     7,
//! );
//! cfg.num_queries = 20_000;
//! cfg.warmup = 2_000;
//! let rt = Qsim::new(cfg).unwrap().run().unwrap().mean_response_secs();
//! assert!((rt - 120.0).abs() / 120.0 < 0.1);
//! ```
//!
//! Constructors validate their configuration and return
//! [`simcore::SprintError`] instead of panicking, and
//! [`parallel::run_batch`] survives worker panics by converting them to
//! typed errors.

pub mod cloning;
pub mod config;
mod direct;
pub mod multiclass;
pub mod parallel;
pub mod pool;
pub mod shared;
pub mod sim;
pub mod trace;

pub use cloning::{results_bit_identical, Cloning, CloningConfig, CloningFaults, CloningResult};
pub use config::{QsimConfig, QsimResult};
pub use multiclass::{ClassSpec, MultiClassConfig, MultiClassQsim, MultiClassResult};
pub use parallel::{
    predict_mean_response, predict_mean_response_reference, predict_mean_response_traced,
    replication_seed, run_batch, run_batch_with, Backend,
};
pub use pool::SimPool;
pub use shared::AtomicTable;
pub use sim::Qsim;
pub use trace::{SimTrace, TraceCache};
