//! Lock-free shared cache primitive for the prediction hot path.
//!
//! [`AtomicTable`] is a fixed-capacity, append-only, open-addressing
//! hash table whose slots are `AtomicPtr`s to immutable heap entries.
//! It exists so the CRN [`TraceCache`](crate::TraceCache) and the
//! sprint-core prediction memo can be shared across every pool worker
//! (and every model instance in the process) with an uncontended read
//! path: a warm lookup is a hash, a few `Acquire` loads, and a key
//! compare — no mutex, no CAS, no allocation.
//!
//! # Design
//!
//! - **Append-only.** Entries are published exactly once by a
//!   `compare_exchange(null → ptr, Release)` and are immutable
//!   afterwards; readers `Acquire`-load the pointer and compare the
//!   full key. Nothing is ever unpublished or replaced, so a reference
//!   into an entry stays valid for the table's lifetime and `get` can
//!   hand out `&V` directly.
//! - **Fixed capacity, bounded probes.** Linear probing with a bounded
//!   probe window; when the window is exhausted the insert is simply
//!   *dropped* and the caller keeps its freshly computed value. A full
//!   cache degrades to "compute every time", never to eviction races
//!   or unbounded growth. The caches this backs hold a few thousand
//!   entries in any real workload; capacities are sized ~2× above
//!   the old mutex-cache leak guards.
//! - **Deterministic hashing.** Keys are hashed with FNV-1a via the
//!   standard [`Hasher`] trait, so placement (and therefore cache
//!   behavior) is reproducible run to run — the same property the
//!   deterministic-simulation tests pin everywhere else.
//! - **Memory reclamation.** Entries are freed only in `Drop`, which
//!   takes `&mut self` and therefore proves no readers remain.
//!
//! Correctness of *sharing* is the callers' responsibility: every key
//! type used with this table must fully determine its value (the trace
//! key fingerprints the arrival process, service distribution, and
//! seed; the memo key fingerprints the model context on top of the
//! condition), so a hit from a foreign worker is bit-identical to a
//! local recompute.

use std::hash::{Hash, Hasher};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// Longest linear-probe run tolerated before a lookup gives up and an
/// insert is dropped. Large enough that a table at its intended load
/// (< 50%) essentially never hits it.
const MAX_PROBE: usize = 128;

/// FNV-1a over a key's `Hash` output — deterministic across runs and
/// platforms, unlike `DefaultHasher`'s unspecified algorithm.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn fnv_hash<K: Hash>(key: &K) -> u64 {
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
    key.hash(&mut h);
    h.finish()
}

/// One published cache entry; immutable after the CAS that makes it
/// visible.
struct Entry<K, V> {
    hash: u64,
    key: K,
    value: V,
}

/// Fixed-capacity lock-free hash table (see module docs).
pub struct AtomicTable<K, V> {
    slots: Box<[AtomicPtr<Entry<K, V>>]>,
    mask: usize,
    len: AtomicUsize,
}

// Entries are plain (K, V) data behind pointers the table owns;
// sharing the table shares them read-only after publication.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for AtomicTable<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for AtomicTable<K, V> {}

impl<K: Hash + Eq, V> AtomicTable<K, V> {
    /// Creates a table with `capacity` slots, rounded up to a power of
    /// two (minimum 2).
    pub fn new(capacity: usize) -> AtomicTable<K, V> {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        AtomicTable {
            slots,
            mask: cap - 1,
            len: AtomicUsize::new(0),
        }
    }

    /// Looks up `key`; the returned reference lives as long as the
    /// table (entries are never unpublished).
    pub fn get(&self, key: &K) -> Option<&V> {
        let hash = fnv_hash(key);
        let mut i = hash as usize & self.mask;
        for _ in 0..MAX_PROBE {
            let p = self.slots[i].load(Ordering::Acquire);
            if p.is_null() {
                return None;
            }
            // SAFETY: a non-null slot pointer was published by a
            // Release CAS over a fully initialized, never-mutated,
            // never-freed (until Drop) Entry; the Acquire load makes
            // its fields visible.
            let e = unsafe { &*p };
            if e.hash == hash && e.key == *key {
                return Some(&e.value);
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Publishes `key → value` unless the key is already present or
    /// the probe window is full; returns a reference to the winning
    /// entry's value (the caller's on success, the racer's on a lost
    /// duplicate-key race) or `None` if the insert was dropped.
    pub fn insert(&self, key: K, value: V) -> Option<&V> {
        let hash = fnv_hash(&key);
        let entry = Box::into_raw(Box::new(Entry { hash, key, value }));
        let mut i = hash as usize & self.mask;
        for _ in 0..MAX_PROBE {
            let mut p = self.slots[i].load(Ordering::Acquire);
            if p.is_null() {
                match self.slots[i].compare_exchange(
                    ptr::null_mut(),
                    entry,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::Relaxed);
                        // SAFETY: just published; never freed until Drop.
                        return Some(unsafe { &(*entry).value });
                    }
                    Err(cur) => p = cur, // Lost the slot; inspect the winner.
                }
            }
            // SAFETY: as in `get`.
            let e = unsafe { &*p };
            if e.hash == hash && e.key == *unsafe { &(*entry).key } {
                // Someone else published this key first; theirs wins so
                // all callers observe one canonical entry.
                // SAFETY: `entry` was never published, we still own it.
                drop(unsafe { Box::from_raw(entry) });
                return Some(&e.value);
            }
            i = (i + 1) & self.mask;
        }
        // Probe window exhausted: drop the insert, caller keeps its value.
        // SAFETY: `entry` was never published, we still own it.
        drop(unsafe { Box::from_raw(entry) });
        None
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K, V> Drop for AtomicTable<K, V> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: `&mut self` proves no outstanding readers;
                // each published pointer is owned by exactly one slot.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl<K, V> std::fmt::Debug for AtomicTable<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicTable")
            .field("len", &self.len.load(Ordering::Relaxed))
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_then_get_round_trips() {
        let t: AtomicTable<u64, u64> = AtomicTable::new(64);
        assert!(t.get(&7).is_none());
        assert_eq!(t.insert(7, 700), Some(&700));
        assert_eq!(t.get(&7), Some(&700));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_insert_keeps_first_value() {
        let t: AtomicTable<u64, u64> = AtomicTable::new(64);
        t.insert(7, 700);
        // Second publisher loses; canonical entry survives.
        assert_eq!(t.insert(7, 999), Some(&700));
        assert_eq!(t.get(&7), Some(&700));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn full_table_drops_inserts_instead_of_evicting() {
        let t: AtomicTable<u64, u64> = AtomicTable::new(2);
        // Capacity 2: the third distinct key can't fit anywhere.
        t.insert(1, 10);
        t.insert(2, 20);
        assert!(t.insert(3, 30).is_none());
        assert_eq!(t.get(&1), Some(&10));
        assert_eq!(t.get(&2), Some(&20));
        assert!(t.get(&3).is_none());
    }

    #[test]
    fn concurrent_inserts_converge_to_one_entry_per_key() {
        let t: Arc<AtomicTable<u64, u64>> = Arc::new(AtomicTable::new(1024));
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for k in 0..200u64 {
                        // Every worker computes the same value for a key,
                        // as the real caches do (pure functions of key).
                        let v = k * 3 + 1;
                        match t.get(&k) {
                            Some(&got) => assert_eq!(got, v, "worker {w} key {k}"),
                            None => {
                                if let Some(&won) = t.insert(k, v) {
                                    assert_eq!(won, v);
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 200);
        for k in 0..200u64 {
            assert_eq!(t.get(&k), Some(&(k * 3 + 1)));
        }
    }

    #[test]
    fn drop_frees_arc_entries() {
        let probe = Arc::new(42u64);
        {
            let t: AtomicTable<u64, Arc<u64>> = AtomicTable::new(16);
            t.insert(1, Arc::clone(&probe));
            assert_eq!(Arc::strong_count(&probe), 2);
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }
}
