//! Configuration and results for the timeout-aware queue simulator.

use simcore::dist::{Dist, DistKind};
use simcore::stats::Percentiles;
use simcore::time::{Rate, SimDuration};

/// Inputs to one simulation run (the right-hand side of Fig. 2: arrival
/// rate, timeout, budget, sprinting mechanism rates).
#[derive(Debug, Clone)]
pub struct QsimConfig {
    /// Mean arrival rate λ.
    pub arrival_rate: Rate,
    /// Inter-arrival distribution shape.
    pub arrival_kind: DistKind,
    /// Service-time distribution at the sustained rate µ. Typically
    /// resampled from profiling data (§2.2 "we randomly sample service
    /// time data collected during profiling").
    pub service: Dist,
    /// Speedup applied to remaining work while sprinting: the quotient
    /// of effective sprint rate and service rate, µe/µ (Equation 1).
    pub sprint_speedup: f64,
    /// Timeout after arrival that triggers sprinting.
    pub timeout: SimDuration,
    /// Sprint budget capacity in sprint-seconds.
    pub budget_capacity_secs: f64,
    /// Time for an empty budget to refill while nothing sprints.
    pub refill_secs: f64,
    /// Execution slots (k in G/G/k).
    pub slots: usize,
    /// Queries to simulate.
    pub num_queries: usize,
    /// Leading queries excluded from statistics.
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
}

impl QsimConfig {
    /// A single-slot configuration with exponential arrivals and the
    /// given service distribution — the common case in §3.
    pub fn mm1(arrival_rate: Rate, service: Dist, seed: u64) -> QsimConfig {
        QsimConfig {
            arrival_rate,
            arrival_kind: DistKind::Exponential,
            service,
            sprint_speedup: 1.0,
            timeout: SimDuration::MAX,
            budget_capacity_secs: 0.0,
            refill_secs: 1.0,
            slots: 1,
            num_queries: 2_000,
            warmup: 200,
            seed,
        }
    }

    /// Returns a copy with a different seed (for replication).
    pub fn with_seed(&self, seed: u64) -> QsimConfig {
        QsimConfig {
            seed,
            ..self.clone()
        }
    }
}

/// Per-query outcome from the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimQuery {
    /// Arrival instant (seconds).
    pub arrival_secs: f64,
    /// Departure instant (seconds).
    pub depart_secs: f64,
    /// Whether the timeout fired.
    pub timed_out: bool,
    /// Whether the query sprinted.
    pub sprinted: bool,
    /// Wall-clock seconds spent sprinting.
    pub sprint_secs: f64,
}

impl SimQuery {
    /// End-to-end response time in seconds.
    pub fn response_secs(&self) -> f64 {
        self.depart_secs - self.arrival_secs
    }
}

/// Aggregated output of one run.
#[derive(Debug, Clone)]
pub struct QsimResult {
    /// Steady-state per-query outcomes (warmup removed).
    pub queries: Vec<SimQuery>,
}

impl QsimResult {
    /// Mean response time in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the run produced no steady-state queries.
    pub fn mean_response_secs(&self) -> f64 {
        assert!(!self.queries.is_empty(), "empty simulation result");
        self.queries
            .iter()
            .map(SimQuery::response_secs)
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// Response-time quantile in seconds.
    pub fn response_quantile_secs(&self, q: f64) -> f64 {
        Percentiles::from_samples(self.queries.iter().map(SimQuery::response_secs).collect())
            .quantile(q)
    }

    /// Fraction of queries that sprinted.
    pub fn sprint_fraction(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().filter(|q| q.sprinted).count() as f64 / self.queries.len() as f64
    }

    /// Total sprint-seconds consumed across steady-state queries.
    pub fn total_sprint_secs(&self) -> f64 {
        self.queries.iter().map(|q| q.sprint_secs).sum()
    }

    /// Fraction of queries whose timeout fired but that never got to
    /// sprint — an indicator that the budget was exhausted.
    pub fn starved_fraction(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .filter(|q| q.timed_out && !q.sprinted)
            .count() as f64
            / self.queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    #[test]
    fn mm1_defaults_disable_sprinting() {
        let c = QsimConfig::mm1(
            Rate::per_hour(30.0),
            Dist::exponential(SimDuration::from_secs(60)),
            1,
        );
        assert_eq!(c.budget_capacity_secs, 0.0);
        assert_eq!(c.slots, 1);
        assert_eq!(c.timeout, SimDuration::MAX);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = QsimConfig::mm1(
            Rate::per_hour(30.0),
            Dist::exponential(SimDuration::from_secs(60)),
            1,
        );
        let b = a.with_seed(9);
        assert_eq!(b.seed, 9);
        assert_eq!(b.num_queries, a.num_queries);
    }

    #[test]
    fn sim_query_response() {
        let q = SimQuery {
            arrival_secs: 10.0,
            depart_secs: 35.0,
            timed_out: false,
            sprinted: false,
            sprint_secs: 0.0,
        };
        assert_eq!(q.response_secs(), 25.0);
    }

    fn q(timed_out: bool, sprinted: bool, sprint_secs: f64) -> SimQuery {
        SimQuery {
            arrival_secs: 0.0,
            depart_secs: 10.0,
            timed_out,
            sprinted,
            sprint_secs,
        }
    }

    #[test]
    fn result_aggregates() {
        let r = QsimResult {
            queries: vec![
                q(true, true, 4.0),
                q(true, false, 0.0), // Starved: timed out, never sprinted.
                q(false, false, 0.0),
                q(true, true, 6.0),
            ],
        };
        assert!((r.total_sprint_secs() - 10.0).abs() < 1e-12);
        assert!((r.starved_fraction() - 0.25).abs() < 1e-12);
        assert!((r.sprint_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_result_fractions_are_zero() {
        let r = QsimResult { queries: vec![] };
        assert_eq!(r.sprint_fraction(), 0.0);
        assert_eq!(r.starved_fraction(), 0.0);
        assert_eq!(r.total_sprint_secs(), 0.0);
    }
}
