//! Multi-class timeout-aware simulation (§5 extension).
//!
//! The paper notes that its simulator assumes one sprint rate and one
//! timeout for all queries, and that "only small modifications to the
//! simulator are needed to support multiple sprint rates and timeouts"
//! assigned across workloads. This module is that modification: each
//! query draws a *class* (weighted), and every class carries its own
//! service distribution, effective sprint speedup and timeout. The
//! sprint budget stays shared — that is the whole point of
//! whole-system sprinting policies.
//!
//! Per-class policies matter for mixes: a class with a large sprint
//! speedup (e.g. SparkStream under DVFS) is worth sprinting eagerly,
//! while a sync-bound class wastes budget; see the `ablation_multiclass`
//! experiment binary.

use crate::config::SimQuery;
use simcore::dist::{Dist, DistKind};
use simcore::event::EventQueue;
use simcore::rng::SimRng;
use simcore::time::{Rate, SimDuration, SimTime};
use simcore::SprintError;
use std::collections::VecDeque;

/// Policy and service description for one query class.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Relative weight of this class in the arrival stream.
    pub weight: f64,
    /// Service-time distribution at the sustained rate.
    pub service: Dist,
    /// Effective sprint speedup for this class (µe/µ).
    pub sprint_speedup: f64,
    /// Timeout after arrival that triggers sprinting for this class.
    pub timeout: SimDuration,
}

/// Configuration for a multi-class run.
#[derive(Debug, Clone)]
pub struct MultiClassConfig {
    /// Mean arrival rate λ of the merged stream.
    pub arrival_rate: Rate,
    /// Inter-arrival distribution shape.
    pub arrival_kind: DistKind,
    /// Query classes; weights are normalized internally.
    pub classes: Vec<ClassSpec>,
    /// Shared sprint budget capacity in sprint-seconds.
    pub budget_capacity_secs: f64,
    /// Full-refill time while nothing sprints.
    pub refill_secs: f64,
    /// Execution slots.
    pub slots: usize,
    /// Queries to simulate.
    pub num_queries: usize,
    /// Leading queries excluded from statistics.
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Per-class and overall outcomes.
#[derive(Debug, Clone)]
pub struct MultiClassResult {
    /// Steady-state queries with their class index.
    pub queries: Vec<(usize, SimQuery)>,
}

impl MultiClassResult {
    /// Overall mean response time in seconds.
    ///
    /// # Panics
    ///
    /// Panics if no steady-state queries were produced.
    pub fn mean_response_secs(&self) -> f64 {
        assert!(!self.queries.is_empty(), "empty result");
        self.queries
            .iter()
            .map(|(_, q)| q.response_secs())
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// Mean response time of one class, or `None` if it saw no
    /// steady-state queries.
    pub fn class_mean_response_secs(&self, class: usize) -> Option<f64> {
        let rts: Vec<f64> = self
            .queries
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|(_, q)| q.response_secs())
            .collect();
        if rts.is_empty() {
            None
        } else {
            Some(rts.iter().sum::<f64>() / rts.len() as f64)
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival,
    Timeout(u64),
    Slot { slot: usize, gen: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum QState {
    Queued,
    Running(usize),
    Done,
}

#[derive(Debug)]
struct QInfo {
    class: usize,
    arrival: SimTime,
    depart: SimTime,
    service_secs: f64,
    timed_out: bool,
    sprinted: bool,
    sprint_secs: f64,
    state: QState,
}

#[derive(Debug)]
struct Running {
    query: u64,
    remaining_work: f64,
    speedup: f64,
    sprinting: bool,
    sprint_secs: f64,
    last_update: SimTime,
    gen: u64,
}

impl Running {
    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).as_secs_f64();
        self.last_update = now;
        let speed = if self.sprinting { self.speedup } else { 1.0 };
        if self.sprinting {
            self.sprint_secs += dt;
        }
        self.remaining_work = (self.remaining_work - dt * speed).max(0.0);
    }
}

/// Looks up a slot that the event logic requires to be occupied,
/// surfacing a typed runtime error (instead of a panic) if it is not.
fn occupied<'s>(
    slots: &'s mut [Option<Running>],
    slot: usize,
    ctx: &'static str,
) -> Result<&'s mut Running, SprintError> {
    slots
        .get_mut(slot)
        .and_then(Option::as_mut)
        .ok_or_else(|| SprintError::runtime(ctx, format!("slot {slot} unexpectedly empty")))
}

/// The multi-class simulator.
pub struct MultiClassQsim {
    cfg: MultiClassConfig,
    weights: Vec<f64>,
    events: EventQueue<Ev>,
    fifo: VecDeque<u64>,
    slots: Vec<Option<Running>>,
    budget_level: f64,
    sprinting: usize,
    budget_last: SimTime,
    queries: Vec<QInfo>,
    done: usize,
    arrivals_left: usize,
    arrival_dist: Dist,
    arrival_rng: SimRng,
    service_rng: SimRng,
    class_rng: SimRng,
    next_gen: u64,
}

impl MultiClassQsim {
    /// Builds a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] on empty classes,
    /// negative or non-finite weights, weights summing to zero,
    /// non-positive speedups, invalid budget/refill parameters, or zero
    /// slots/queries.
    pub fn new(cfg: MultiClassConfig) -> Result<MultiClassQsim, SprintError> {
        if cfg.classes.is_empty() {
            return Err(SprintError::invalid(
                "MultiClassConfig::classes",
                "need at least one class",
            ));
        }
        SprintError::require_nonzero("MultiClassConfig::slots", cfg.slots)?;
        SprintError::require_nonzero("MultiClassConfig::num_queries", cfg.num_queries)?;
        SprintError::require_non_negative(
            "MultiClassConfig::budget_capacity_secs",
            cfg.budget_capacity_secs,
        )?;
        if cfg.refill_secs.is_nan() || cfg.refill_secs < 0.0 {
            return Err(SprintError::invalid(
                "MultiClassConfig::refill_secs",
                format!("refill time must be non-negative, got {}", cfg.refill_secs),
            ));
        }
        for (i, c) in cfg.classes.iter().enumerate() {
            if !(c.weight >= 0.0 && c.weight.is_finite()) {
                return Err(SprintError::invalid(
                    "ClassSpec::weight",
                    format!(
                        "class {i}: weight must be finite and >= 0, got {}",
                        c.weight
                    ),
                ));
            }
            if !(c.sprint_speedup > 0.0 && c.sprint_speedup.is_finite()) {
                return Err(SprintError::invalid(
                    "ClassSpec::sprint_speedup",
                    format!(
                        "class {i}: speedup must be finite and > 0, got {}",
                        c.sprint_speedup
                    ),
                ));
            }
        }
        let total: f64 = cfg.classes.iter().map(|c| c.weight).sum();
        if total.is_nan() || total <= 0.0 {
            return Err(SprintError::invalid(
                "MultiClassConfig::classes",
                "class weights sum to zero",
            ));
        }
        let weights = cfg.classes.iter().map(|c| c.weight / total).collect();
        let mut root = SimRng::new(cfg.seed);
        let arrival_rng = root.split(1);
        let service_rng = root.split(2);
        let class_rng = root.split(3);
        let arrival_dist = Dist::Parametric {
            kind: cfg.arrival_kind,
            mean: cfg.arrival_rate.mean_interval(),
        };
        Ok(MultiClassQsim {
            weights,
            events: EventQueue::new(),
            fifo: VecDeque::new(),
            slots: (0..cfg.slots).map(|_| None).collect(),
            budget_level: cfg.budget_capacity_secs,
            sprinting: 0,
            budget_last: SimTime::ZERO,
            queries: Vec::with_capacity(cfg.num_queries),
            done: 0,
            arrivals_left: cfg.num_queries,
            arrival_dist,
            arrival_rng,
            service_rng,
            class_rng,
            next_gen: 0,
            cfg,
        })
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::Runtime`] if the event calendar drains
    /// with queries outstanding or a slot invariant is violated — both
    /// indicate a simulator bug, surfaced as a typed error rather than
    /// a panic so batch sweeps can report and continue.
    pub fn run(mut self) -> Result<MultiClassResult, SprintError> {
        let gap = self.arrival_dist.sample(&mut self.arrival_rng);
        self.events.schedule(SimTime::ZERO + gap, Ev::Arrival);
        while self.done < self.cfg.num_queries {
            let Some((now, ev)) = self.events.pop() else {
                return Err(SprintError::runtime(
                    "MultiClassQsim::run",
                    format!(
                        "event queue drained with {} of {} queries outstanding",
                        self.cfg.num_queries - self.done,
                        self.cfg.num_queries
                    ),
                ));
            };
            match ev {
                Ev::Arrival => self.on_arrival(now)?,
                Ev::Timeout(id) => self.on_timeout(now, id)?,
                Ev::Slot { slot, gen } => self.on_slot(now, slot, gen)?,
            }
        }
        let queries = self
            .queries
            .iter()
            .skip(self.cfg.warmup)
            .map(|q| {
                (
                    q.class,
                    SimQuery {
                        arrival_secs: q.arrival.as_secs_f64(),
                        depart_secs: q.depart.as_secs_f64(),
                        timed_out: q.timed_out,
                        sprinted: q.sprinted,
                        sprint_secs: q.sprint_secs,
                    },
                )
            })
            .collect();
        Ok(MultiClassResult { queries })
    }

    fn draw_class(&mut self) -> usize {
        let mut u = self.class_rng.next_f64();
        for (i, &w) in self.weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        self.weights.len() - 1
    }

    fn budget_update(&mut self, now: SimTime) {
        let dt = now.since(self.budget_last).as_secs_f64();
        self.budget_last = now;
        if self.cfg.budget_capacity_secs.is_infinite() {
            return;
        }
        if self.sprinting == 0 {
            self.budget_level = (self.budget_level
                + self.cfg.budget_capacity_secs / self.cfg.refill_secs * dt)
                .min(self.cfg.budget_capacity_secs);
        } else {
            self.budget_level = (self.budget_level - self.sprinting as f64 * dt).max(0.0);
        }
    }

    fn budget_available(&self) -> bool {
        self.budget_level > 1e-6 || self.cfg.budget_capacity_secs.is_infinite()
    }

    fn on_arrival(&mut self, now: SimTime) -> Result<(), SprintError> {
        let id = self.queries.len() as u64;
        let class = self.draw_class();
        let spec = &self.cfg.classes[class];
        let service_secs = spec
            .service
            .sample(&mut self.service_rng)
            .as_secs_f64()
            .max(1e-6);
        let timeout = spec.timeout;
        let sprintable = (spec.sprint_speedup - 1.0).abs() > 1e-12
            && (self.cfg.budget_capacity_secs > 0.0 || self.cfg.budget_capacity_secs.is_infinite());
        self.queries.push(QInfo {
            class,
            arrival: now,
            depart: SimTime::ZERO,
            service_secs,
            timed_out: false,
            sprinted: false,
            sprint_secs: 0.0,
            state: QState::Queued,
        });
        if sprintable && timeout < SimDuration::MAX {
            let at = now.saturating_add(timeout);
            if at < SimTime::MAX {
                self.events.schedule(at, Ev::Timeout(id));
            }
        }
        if let Some(slot) = self.slots.iter().position(Option::is_none) {
            self.dispatch(now, id, slot)?;
        } else {
            self.fifo.push_back(id);
        }
        self.arrivals_left -= 1;
        if self.arrivals_left > 0 {
            let gap = self.arrival_dist.sample(&mut self.arrival_rng);
            self.events.schedule(now + gap, Ev::Arrival);
        }
        Ok(())
    }

    fn on_timeout(&mut self, now: SimTime, id: u64) -> Result<(), SprintError> {
        match self.queries[id as usize].state {
            QState::Done => {}
            QState::Queued => self.queries[id as usize].timed_out = true,
            QState::Running(slot) => {
                self.queries[id as usize].timed_out = true;
                self.budget_update(now);
                if !self.budget_available() {
                    return Ok(());
                }
                let r = occupied(&mut self.slots, slot, "MultiClassQsim::on_timeout")?;
                if !r.sprinting {
                    r.advance(now);
                    r.sprinting = true;
                    self.queries[id as usize].sprinted = true;
                    self.sprinting += 1;
                    self.reschedule_all_sprinting(now)?;
                }
            }
        }
        Ok(())
    }

    fn on_slot(&mut self, now: SimTime, slot: usize, gen: u64) -> Result<(), SprintError> {
        let Some(r) = self.slots[slot].as_ref() else {
            return Ok(());
        };
        if r.gen != gen {
            return Ok(());
        }
        self.budget_update(now);
        let available = self.budget_available();
        let r = occupied(&mut self.slots, slot, "MultiClassQsim::on_slot")?;
        let was_sprinting = r.sprinting;
        r.advance(now);
        let remaining = r.remaining_work;
        if remaining <= 2e-6 {
            self.complete(now, slot)?;
        } else if was_sprinting && !available {
            r.sprinting = false;
            self.sprinting -= 1;
            self.reschedule_all_sprinting(now)?;
            self.reschedule(now, slot)?;
        } else {
            self.reschedule(now, slot)?;
        }
        Ok(())
    }

    fn complete(&mut self, now: SimTime, slot: usize) -> Result<(), SprintError> {
        let r = self.slots[slot].take().ok_or_else(|| {
            SprintError::runtime(
                "MultiClassQsim::complete",
                format!("slot {slot} unexpectedly empty"),
            )
        })?;
        if r.sprinting {
            self.sprinting -= 1;
            self.reschedule_all_sprinting(now)?;
        }
        let info = &mut self.queries[r.query as usize];
        info.state = QState::Done;
        info.depart = now;
        info.sprint_secs = r.sprint_secs;
        self.done += 1;
        if let Some(next) = self.fifo.pop_front() {
            self.dispatch(now, next, slot)?;
        }
        Ok(())
    }

    fn dispatch(&mut self, now: SimTime, id: u64, slot: usize) -> Result<(), SprintError> {
        let info = &mut self.queries[id as usize];
        info.state = QState::Running(slot);
        let class = info.class;
        let remaining_work = info.service_secs;
        let speedup = self.cfg.classes[class].sprint_speedup;
        let timed_out = info.timed_out;
        let mut sprinting = false;
        if timed_out && (speedup - 1.0).abs() > 1e-12 {
            self.budget_update(now);
            if self.budget_available() {
                sprinting = true;
                self.queries[id as usize].sprinted = true;
                self.sprinting += 1;
            }
        }
        self.slots[slot] = Some(Running {
            query: id,
            remaining_work,
            speedup,
            sprinting,
            sprint_secs: 0.0,
            last_update: now,
            gen: 0,
        });
        if sprinting {
            self.reschedule_all_sprinting(now)?;
        } else {
            self.reschedule(now, slot)?;
        }
        Ok(())
    }

    fn reschedule(&mut self, now: SimTime, slot: usize) -> Result<(), SprintError> {
        self.next_gen += 1;
        let gen = self.next_gen;
        let sprinting_count = self.sprinting;
        let level = self.budget_level;
        let unlimited = self.cfg.budget_capacity_secs.is_infinite();
        let r = occupied(&mut self.slots, slot, "MultiClassQsim::reschedule")?;
        r.gen = gen;
        let speed = if r.sprinting { r.speedup } else { 1.0 };
        let mut horizon = r.remaining_work / speed;
        if r.sprinting && !unlimited && sprinting_count > 0 {
            horizon = horizon.min(level / sprinting_count as f64);
        }
        self.events.schedule(
            now + SimDuration::from_secs_f64_ceil(horizon),
            Ev::Slot { slot, gen },
        );
        Ok(())
    }

    fn reschedule_all_sprinting(&mut self, now: SimTime) -> Result<(), SprintError> {
        for i in 0..self.slots.len() {
            let needs = matches!(&self.slots[i], Some(r) if r.sprinting);
            if needs {
                let r = occupied(
                    &mut self.slots,
                    i,
                    "MultiClassQsim::reschedule_all_sprinting",
                )?;
                r.advance(now);
                self.reschedule(now, i)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_cfg(seed: u64) -> MultiClassConfig {
        MultiClassConfig {
            arrival_rate: Rate::per_hour(30.0),
            arrival_kind: DistKind::Exponential,
            classes: vec![
                ClassSpec {
                    weight: 0.5,
                    service: Dist::exponential(SimDuration::from_secs(40)),
                    sprint_speedup: 2.5,
                    timeout: SimDuration::from_secs(60),
                },
                ClassSpec {
                    weight: 0.5,
                    service: Dist::exponential(SimDuration::from_secs(120)),
                    sprint_speedup: 1.2,
                    timeout: SimDuration::from_secs(200),
                },
            ],
            budget_capacity_secs: 200.0,
            refill_secs: 600.0,
            slots: 1,
            num_queries: 6_000,
            warmup: 600,
            seed,
        }
    }

    #[test]
    fn classes_get_distinct_response_times() {
        let r = MultiClassQsim::new(two_class_cfg(1))
            .unwrap()
            .run()
            .unwrap();
        let fast = r.class_mean_response_secs(0).expect("class 0 present");
        let slow = r.class_mean_response_secs(1).expect("class 1 present");
        assert!(slow > fast, "slow class {slow} !> fast class {fast}");
        assert!(r.mean_response_secs() > fast);
        assert!(r.mean_response_secs() < slow);
    }

    #[test]
    fn single_class_matches_base_simulator() {
        // A one-class multi-class run must agree with `Qsim` given the
        // same parameters (different RNG stream layout, so compare
        // statistically).
        let cfg = MultiClassConfig {
            arrival_rate: Rate::per_hour(30.0),
            arrival_kind: DistKind::Exponential,
            classes: vec![ClassSpec {
                weight: 1.0,
                service: Dist::exponential(SimDuration::from_secs(60)),
                sprint_speedup: 1.0,
                timeout: SimDuration::MAX,
            }],
            budget_capacity_secs: 0.0,
            refill_secs: 100.0,
            slots: 1,
            num_queries: 40_000,
            warmup: 4_000,
            seed: 3,
        };
        let multi = MultiClassQsim::new(cfg)
            .unwrap()
            .run()
            .unwrap()
            .mean_response_secs();
        // M/M/1 at 50% load with 60 s service: 120 s.
        assert!((multi - 120.0).abs() / 120.0 < 0.06, "multi {multi}");
    }

    #[test]
    fn per_class_timeouts_fire_independently() {
        let r = MultiClassQsim::new(two_class_cfg(5))
            .unwrap()
            .run()
            .unwrap();
        // The fast class (short timeout, big speedup) should sprint
        // much more often than the slow class (long timeout, tiny
        // speedup).
        let frac = |class: usize| {
            let (s, n) = r
                .queries
                .iter()
                .filter(|(c, _)| *c == class)
                .fold((0usize, 0usize), |(s, n), (_, q)| {
                    (s + q.sprinted as usize, n + 1)
                });
            s as f64 / n as f64
        };
        assert!(frac(0) > frac(1), "{} !> {}", frac(0), frac(1));
    }

    #[test]
    fn shared_budget_couples_classes() {
        // Draining the budget with class 0 sprints leaves less for
        // class 1: with a tighter budget, total sprint seconds shrink.
        let mut tight = two_class_cfg(7);
        tight.budget_capacity_secs = 20.0;
        tight.refill_secs = 5_000.0;
        let mut loose = two_class_cfg(7);
        loose.budget_capacity_secs = 2_000.0;
        loose.refill_secs = 5_000.0;
        let t: f64 = MultiClassQsim::new(tight)
            .unwrap()
            .run()
            .unwrap()
            .queries
            .iter()
            .map(|(_, q)| q.sprint_secs)
            .sum();
        let l: f64 = MultiClassQsim::new(loose)
            .unwrap()
            .run()
            .unwrap()
            .queries
            .iter()
            .map(|(_, q)| q.sprint_secs)
            .sum();
        assert!(t < l, "tight {t} !< loose {l}");
    }

    #[test]
    fn deterministic_replay() {
        let a = MultiClassQsim::new(two_class_cfg(11))
            .unwrap()
            .run()
            .unwrap();
        let b = MultiClassQsim::new(two_class_cfg(11))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.queries.len(), b.queries.len());
        for ((ca, qa), (cb, qb)) in a.queries.iter().zip(&b.queries) {
            assert_eq!(ca, cb);
            assert_eq!(qa, qb);
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        let mut empty = two_class_cfg(1);
        empty.classes.clear();
        assert!(MultiClassQsim::new(empty).is_err());

        let mut zero_weights = two_class_cfg(1);
        for c in &mut zero_weights.classes {
            c.weight = 0.0;
        }
        assert!(MultiClassQsim::new(zero_weights).is_err());

        let mut bad_speedup = two_class_cfg(1);
        bad_speedup.classes[0].sprint_speedup = 0.0;
        assert!(MultiClassQsim::new(bad_speedup).is_err());

        let mut nan_weight = two_class_cfg(1);
        nan_weight.classes[1].weight = f64::NAN;
        assert!(MultiClassQsim::new(nan_weight).is_err());

        let mut no_slots = two_class_cfg(1);
        no_slots.slots = 0;
        assert!(MultiClassQsim::new(no_slots).is_err());

        let mut bad_budget = two_class_cfg(1);
        bad_budget.budget_capacity_secs = -1.0;
        assert!(MultiClassQsim::new(bad_budget).is_err());
    }
}
