//! Traced replays of the fixed-seed chaos scenarios.
//!
//! The scenario suite ([`crate::scenarios`]) proves each fault produces
//! its documented failure *signature* — counters and overrun bounds.
//! This module proves the causal *story* is recoverable: every scenario
//! is rerun with tracing enabled, the span graph reconstructed from the
//! recorded telemetry, and the dominant root cause asserted against the
//! scenario's documented fault class:
//!
//! - **lost-unsprint-command** → `message-drop` (the watchdog's command
//!   vanished);
//! - **delayed-budget-telemetry** → `message-delay` (the controller
//!   acted on stale budget state);
//! - **watchdog-partition** → `partition` (the watchdog↔controller link
//!   was severed);
//! - **fleet-split-brain** → `partition`, with the full fleet chain
//!   `force-unsprint <- lease-lapse <- Nx renewal-timeout <- partition
//!   <- partition-window` anchored in the scheduled partition window.
//!
//! Each traced run is also replayed and the telemetry compared
//! bit-for-bit, extending the repo's replay guarantee to the trace
//! itself.

use fleet::{run_fleet_traced, FleetPartition, FleetSpec};
use obs::{CauseReason, RunTelemetry, SpanKind, TraceGraph};
use simcore::SprintError;
use testbed::run_supervised_traced;

use crate::scenarios::{cfg_mechanism, scenario_setups, ScenarioSetup};
use crate::Violation;

/// Ring capacity for traced scenario runs: large enough that no span
/// event of a fixed-seed run is ever evicted, so the reconstructed
/// graph is complete (the sweep's tiny ring is for tail forensics).
const TRACE_RECORDER_CAPACITY: usize = 16_384;

/// Nodes in the traced split-brain fleet (matches the fleet chaos
/// scenario).
const SPLIT_BRAIN_NODES: u32 = 8;

/// Root seed of the traced split-brain run: seed index 1 of the fleet
/// scenario's decorrelated seed stream, picked because a stranded
/// side-A lease lapses *mid-sprint* at this seed — so the trace tells
/// the full `force-unsprint <- lease-lapse <- renewal-timeout <-
/// partition` story, not just timed-out acquisitions.
const SPLIT_BRAIN_SEED: u64 = 0x5B11_B4A1u64.wrapping_add(0x9E37_79B9_7F4A_7C15);

/// One traced scenario: the reconstructed graph plus the root-cause
/// verdict.
#[derive(Debug, Clone)]
pub struct TraceScenarioReport {
    /// Scenario name (doubles as the violation case label).
    pub name: &'static str,
    /// The root cause the scenario's fault class must produce.
    pub expected: CauseReason,
    /// The dominant root cause the trace actually recovered.
    pub dominant: Option<CauseReason>,
    /// The reconstructed causal graph (for report rendering).
    pub graph: TraceGraph,
    /// Failed assertions (empty = the trace tells the documented story).
    pub violations: Vec<Violation>,
}

impl TraceScenarioReport {
    /// Whether the trace recovered the documented root cause.
    pub fn root_cause_recovered(&self) -> bool {
        self.dominant == Some(self.expected)
    }
}

/// Shared verdict checks: the graph must hold spans, at least one
/// cause chain, and its dominant root cause must match the documented
/// fault class.
fn check_graph(
    name: &'static str,
    expected: CauseReason,
    graph: &TraceGraph,
    violations: &mut Vec<Violation>,
) {
    if graph.is_empty() {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "trace-nonempty",
            details: "a traced faulted run reconstructed zero spans".to_string(),
        });
    }
    if graph.chains().is_empty() {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "chains-present",
            details: "no cause chain survived reconstruction".to_string(),
        });
    }
    let dominant = graph.dominant_root_cause();
    if dominant != Some(expected) {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "root-cause",
            details: format!(
                "expected dominant root cause {}, trace says {}",
                expected.name(),
                dominant.map_or("none", CauseReason::name)
            ),
        });
    }
}

fn telemetries_identical(a: &[&RunTelemetry], b: &[&RunTelemetry]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

/// Traces one single-node scenario and checks its root-cause verdict
/// plus trace-replay bit-identity.
fn traced_scenario(
    setup: &ScenarioSetup,
    expected: CauseReason,
) -> Result<TraceScenarioReport, SprintError> {
    let mech = cfg_mechanism().build();
    let run = run_supervised_traced(
        setup.cfg.clone(),
        mech.as_ref(),
        Some(setup.plan.clone()),
        setup.sup,
        TRACE_RECORDER_CAPACITY,
    )?;
    let mut violations = Vec::new();
    let telemetry = run.telemetry().cloned().unwrap_or_default();
    let graph = TraceGraph::from_telemetry(&[&telemetry]);
    check_graph(setup.name, expected, &graph, &mut violations);
    let replay = run_supervised_traced(
        setup.cfg.clone(),
        mech.as_ref(),
        Some(setup.plan.clone()),
        setup.sup,
        TRACE_RECORDER_CAPACITY,
    )?;
    if replay.telemetry() != run.telemetry() {
        violations.push(Violation {
            case: setup.name.to_string(),
            invariant: "trace-replay",
            details: "identical (cfg, plan, sup) produced diverging traces".to_string(),
        });
    }
    Ok(TraceScenarioReport {
        name: setup.name,
        expected,
        dominant: graph.dominant_root_cause(),
        graph,
        violations,
    })
}

/// The traced split-brain fleet spec: the fleet chaos scenario's
/// partition (primary plus half the nodes on side A) at its base seed.
fn split_brain_spec() -> Result<FleetSpec, SprintError> {
    let mut spec = FleetSpec::small(SPLIT_BRAIN_SEED, SPLIT_BRAIN_NODES)?;
    spec.faults.partitions.push(FleetPartition {
        coords_a: vec![0],
        nodes_a_lo: 0,
        nodes_a_hi: SPLIT_BRAIN_NODES / 2,
        start_secs: 80.0,
        duration_secs: 150.0,
    });
    Ok(spec)
}

/// Traces the fleet split-brain scenario: reconstructs one graph from
/// the control-plane recorder plus every per-node recorder and asserts
/// the chain roots in the scheduled partition window.
fn traced_split_brain() -> Result<TraceScenarioReport, SprintError> {
    let name = "fleet-split-brain";
    let expected = CauseReason::Partition;
    let spec = split_brain_spec()?;
    let run = run_fleet_traced(&spec)?;
    let mut violations = Vec::new();
    let mut parts: Vec<&RunTelemetry> = vec![&run.telemetry];
    parts.extend(run.node_telemetries.iter());
    let graph = TraceGraph::from_telemetry(&parts);
    check_graph(name, expected, &graph, &mut violations);
    // The anchor of at least one chain must be the partition window
    // itself: the report's "why" bottoms out at the injected fault, not
    // at an unattributed timeout.
    let anchored = graph
        .chains()
        .iter()
        .any(|c| c.anchor_kind == Some(SpanKind::PartitionWindow));
    if !anchored {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "anchored-in-partition",
            details: "no cause chain reached the scheduled partition window".to_string(),
        });
    }
    let replay = run_fleet_traced(&spec)?;
    let a: Vec<&RunTelemetry> = std::iter::once(&run.telemetry)
        .chain(run.node_telemetries.iter())
        .collect();
    let b: Vec<&RunTelemetry> = std::iter::once(&replay.telemetry)
        .chain(replay.node_telemetries.iter())
        .collect();
    if !telemetries_identical(&a, &b) {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "trace-replay",
            details: "identical FleetSpec produced diverging traces".to_string(),
        });
    }
    Ok(TraceScenarioReport {
        name,
        expected,
        dominant: graph.dominant_root_cause(),
        graph,
        violations,
    })
}

/// The documented root cause of each single-node scenario, by name.
fn expected_root_cause(name: &str) -> CauseReason {
    match name {
        "lost-unsprint-command" => CauseReason::MessageDrop,
        "delayed-budget-telemetry" => CauseReason::MessageDelay,
        "watchdog-partition" => CauseReason::Partition,
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Runs every fixed-seed scenario traced — the three single-node
/// message-fault scenarios plus the fleet split-brain — and returns
/// their root-cause verdicts.
///
/// # Errors
///
/// Propagates the first validation or simulator error — a typed error
/// is a harness failure, not a trace verdict.
pub fn run_traced_scenarios() -> Result<Vec<TraceScenarioReport>, SprintError> {
    let mut out = Vec::new();
    for setup in scenario_setups() {
        out.push(traced_scenario(&setup, expected_root_cause(setup.name))?);
    }
    out.push(traced_split_brain()?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_recovers_its_documented_root_cause() {
        let reports = run_traced_scenarios().unwrap();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.violations.is_empty(), "{}: {:?}", r.name, r.violations);
            assert!(r.root_cause_recovered(), "{}: {:?}", r.name, r.dominant);
        }
    }

    #[test]
    fn split_brain_chain_renders_the_documented_story() {
        let report = run_traced_scenarios()
            .unwrap()
            .into_iter()
            .find(|r| r.name == "fleet-split-brain")
            .unwrap();
        let table = report.graph.root_cause_table();
        assert!(table.contains("partition"), "{table}");
        // At least one chain walks lease-lapse back to the partition
        // window through the timed-out renewals.
        let chains = report.graph.chains();
        let full_story = chains.iter().any(|c| {
            c.anchor_kind == Some(SpanKind::PartitionWindow)
                && c.steps.iter().any(|s| s.reason == CauseReason::LeaseLapse)
                && c.steps
                    .iter()
                    .any(|s| s.reason == CauseReason::RenewalTimeout)
        });
        assert!(
            full_story,
            "no chain tells lease-lapse <- renewal-timeout <- partition: {}",
            report.graph.root_cause_table()
        );
    }
}
