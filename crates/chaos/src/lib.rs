//! Chaos-sweep harness for the supervised sprinting testbed.
//!
//! The supervision layer (PR 2) claims the testbed *recovers* from the
//! faults PR 1 taught it to suffer. This crate turns that claim into
//! machine-checked invariants: it generates randomized-but-seeded
//! [`FaultPlan`]s, sweeps them across a (workload, mechanism, policy,
//! plan) grid, and asserts for every run that
//!
//! 1. **Conservation** — no query is lost:
//!    `served + shed + rejected == arrived`;
//! 2. **No stuck sprint** — the run terminates and no query sprints
//!    longer than the watchdog deadline plus slack;
//! 3. **Replay** — rerunning the identical (config, plan, supervisor)
//!    triple reproduces bit-identical records and counters;
//! 4. **No-op plans are free** — an all-off [`FaultPlan`] under
//!    supervision is bit-identical to running with no plan at all;
//! 5. **Bounded degradation** — the supervised P99 under faults stays
//!    within a configured factor of the fault-free P99;
//! 6. **No silent degradation** — a cell whose supervised SLO
//!    attainment fell measurably below the fault-free baseline must
//!    show at least one recorded intervention (supervisor recovery,
//!    flight-recorder intervention event, or breaker transition).
//!
//! Alongside the invariants it measures *recovery efficacy*: SLO
//! attainment with supervision on versus off under the same fault
//! plans, reported per (workload, mechanism) cell. Every supervised
//! run carries an [`obs`] flight recorder; a model-health breaker
//! ([`sprint_core::ModelHealthMonitor`]) is driven from each run's
//! observed response times against the fault-free mean, yielding
//! per-cell breaker dwell times, and the last few recorder events of a
//! violating run are attached to its cell. The `chaos_sweep` binary
//! emits the whole report as JSON.

#![deny(unreachable_pub)]

use faults::FaultPlan;
use mechanisms::MechanismKind;
use obs::{Event, FlightRecorder, RunTelemetry};
use simcore::rng::SimRng;
use simcore::time::{Rate, SimDuration, SimTime};
use simcore::SprintError;
use sprint_core::{BreakerConfig, ModelHealthMonitor};
use testbed::{
    run_supervised, run_supervised_recorded, run_with_faults, ArrivalSpec, RecoveryCounters,
    RunResult, ServerConfig, SprintPolicy, SupervisorConfig,
};
use workloads::{QueryMix, WorkloadKind};

mod fleet_scenarios;
mod plan;
mod replay;
mod report;
mod scenarios;
mod trace;

pub use fleet_scenarios::{run_fleet_scenarios, FleetScenarioReport};
pub use plan::random_plan;
pub use replay::{replay_case, CaseReplay};
pub use report::{CellReport, SweepReport, Violation};
pub use scenarios::{scenario_setups, ScenarioSetup};
pub use trace::{run_traced_scenarios, TraceScenarioReport};

/// Everything a sweep needs: grid axes, run sizing, and invariant
/// tolerances.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Base seed; per-run seeds derive from it deterministically.
    pub seed: u64,
    /// Randomized fault plans (and runs) per grid cell.
    pub seeds_per_cell: u64,
    /// Queries per run.
    pub num_queries: usize,
    /// Arrival rate as a fraction of one slot's sustained service rate.
    /// Kept below 1.0 so a single healthy slot can drain the queue even
    /// after a quarantine halves capacity.
    pub utilization: f64,
    /// Execution slots per run (the flaky-slot fault needs at least 2).
    pub slots: usize,
    /// SLO expressed as a multiple of the mean sustained service time.
    pub slo_service_multiple: f64,
    /// Invariant 5 bound: supervised P99 under faults must stay within
    /// this factor of the fault-free P99.
    pub p99_degradation_factor: f64,
    /// Workloads on the grid.
    pub workloads: Vec<WorkloadKind>,
    /// Mechanisms on the grid.
    pub mechanisms: Vec<MechanismKind>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 0xC4A0_5EED,
            seeds_per_cell: 16,
            num_queries: 140,
            utilization: 0.6,
            slots: 2,
            slo_service_multiple: 3.0,
            p99_degradation_factor: 15.0,
            workloads: WorkloadKind::ALL.to_vec(),
            mechanisms: MechanismKind::ALL.to_vec(),
        }
    }
}

impl SweepConfig {
    /// Validates the sweep parameters.
    pub fn validate(&self) -> Result<(), SprintError> {
        SprintError::require_nonzero("SweepConfig::seeds_per_cell", self.seeds_per_cell as usize)?;
        SprintError::require_nonzero("SweepConfig::num_queries", self.num_queries)?;
        SprintError::require_positive("SweepConfig::utilization", self.utilization)?;
        if self.utilization >= 1.0 {
            return Err(SprintError::invalid(
                "SweepConfig::utilization",
                format!(
                    "must stay below 1.0 so one slot can drain after a quarantine, got {}",
                    self.utilization
                ),
            ));
        }
        if self.slots < 2 {
            return Err(SprintError::invalid(
                "SweepConfig::slots",
                "the flaky-slot fault and quarantine need at least 2 slots",
            ));
        }
        SprintError::require_positive(
            "SweepConfig::slo_service_multiple",
            self.slo_service_multiple,
        )?;
        SprintError::require_positive(
            "SweepConfig::p99_degradation_factor",
            self.p99_degradation_factor,
        )?;
        if self.workloads.is_empty() || self.mechanisms.is_empty() {
            return Err(SprintError::invalid(
                "SweepConfig::grid",
                "need at least one workload and one mechanism",
            ));
        }
        Ok(())
    }
}

/// The two sprinting policies each cell is swept under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Timeout-triggered sprinting with a fractional budget.
    Sprint,
    /// Never sprint — recovery must still hold without sprinting.
    Never,
}

impl PolicyKind {
    /// Both grid policies.
    pub const ALL: [PolicyKind; 2] = [PolicyKind::Sprint, PolicyKind::Never];

    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Sprint => "sprint",
            PolicyKind::Never => "never",
        }
    }

    fn build(self, mean_service_secs: f64) -> SprintPolicy {
        match self {
            PolicyKind::Sprint => SprintPolicy::new(
                SimDuration::from_secs_f64(mean_service_secs * 0.5),
                testbed::BudgetSpec::FractionOfRefill(0.3),
                SimDuration::from_secs_f64(mean_service_secs * 10.0),
            ),
            PolicyKind::Never => SprintPolicy::never(),
        }
    }
}

fn server_config(
    cfg: &SweepConfig,
    workload: WorkloadKind,
    sustained: Rate,
    policy: PolicyKind,
    seed: u64,
) -> ServerConfig {
    let mean_service_secs = sustained.mean_interval().as_secs_f64();
    ServerConfig {
        mix: QueryMix::single(workload),
        arrivals: ArrivalSpec::poisson(sustained.scale(cfg.utilization)),
        policy: policy.build(mean_service_secs),
        slots: cfg.slots,
        num_queries: cfg.num_queries,
        warmup: 0,
        seed,
    }
}

/// Expected simulated length of a run, used to place storm windows.
fn horizon_secs(cfg: &SweepConfig, sustained: Rate) -> f64 {
    let mean_gap = sustained.mean_interval().as_secs_f64() / cfg.utilization;
    cfg.num_queries as f64 * mean_gap
}

fn check_invariants(
    cfg: &SweepConfig,
    sup: &SupervisorConfig,
    label: &str,
    supervised: &RunResult,
    p99_ref_secs: f64,
    violations: &mut Vec<Violation>,
) {
    if !supervised.conserves_queries() {
        violations.push(Violation {
            case: label.to_string(),
            invariant: "conservation",
            details: format!(
                "served {} + turned away {} != arrived {}",
                supervised.served(),
                supervised.recovery_counters().turned_away(),
                supervised.arrived()
            ),
        });
    }
    let slack_secs = 2.0;
    let max_sprint = supervised
        .records()
        .iter()
        .map(|q| q.sprint_seconds)
        .fold(0.0_f64, f64::max);
    if max_sprint > sup.watchdog_secs + slack_secs {
        violations.push(Violation {
            case: label.to_string(),
            invariant: "stuck-sprint",
            details: format!(
                "a query sprinted {max_sprint:.1}s, past the {:.1}s watchdog",
                sup.watchdog_secs
            ),
        });
    }
    if p99_ref_secs > 0.0 && supervised.served() > 0 {
        let p99 = supervised.response_quantile_secs(0.99);
        if p99 > cfg.p99_degradation_factor * p99_ref_secs {
            violations.push(Violation {
                case: label.to_string(),
                invariant: "bounded-degradation",
                details: format!(
                    "P99 {p99:.1}s exceeds {:.1}x the fault-free P99 {p99_ref_secs:.1}s",
                    cfg.p99_degradation_factor
                ),
            });
        }
    }
}

pub(crate) fn runs_identical(a: &RunResult, b: &RunResult) -> bool {
    a.records() == b.records()
        && a.fault_counters() == b.fault_counters()
        && a.recovery_counters() == b.recovery_counters()
        && a.arrived() == b.arrived()
        && a.telemetry() == b.telemetry()
}

/// Flight-recorder ring size for supervised sweep runs.
const RECORDER_CAPACITY: usize = 256;

/// How many trailing recorder events a violating run attaches to its
/// cell report.
const VIOLATION_EVENT_TAIL: usize = 12;

/// Attainment drop below the fault-free baseline (absolute) past which
/// a cell counts as SLO-degraded and must show an intervention.
const SILENT_DEGRADATION_SLACK: f64 = 0.02;

/// Drives the model-health breaker from a finished run: each served
/// query's observed response time is compared against the fault-free
/// mean response (standing in for the model's prediction), and level
/// changes are logged into a fresh flight recorder. Returns the breaker
/// telemetry and the dwell clock's end instant (the last departure).
fn drive_breaker(
    clean_mean_secs: f64,
    run: &RunResult,
) -> Result<(RunTelemetry, SimTime), SprintError> {
    let mut monitor = ModelHealthMonitor::new(BreakerConfig::default())?;
    let mut rec = FlightRecorder::default();
    let mut end = SimTime::ZERO;
    for q in run.records() {
        let observed = q.depart.since(q.arrival).as_secs_f64();
        end = end.max(q.depart);
        monitor.observe_with_recorder(clean_mean_secs, observed, q.depart, &mut rec);
    }
    Ok((rec.finish(), end))
}

/// Sweeps one (workload, mechanism) cell: `seeds_per_cell` randomized
/// fault plans, each run under both grid policies with supervision on
/// and off, plus per-cell reference runs for invariants 4 and 5.
///
/// # Errors
///
/// Returns an error if any run fails validation or breaks a simulator
/// invariant outright (a typed error is itself a harness failure, so it
/// propagates rather than being swallowed).
pub fn run_cell(
    cfg: &SweepConfig,
    workload: WorkloadKind,
    mechanism: MechanismKind,
) -> Result<CellReport, SprintError> {
    cfg.validate()?;
    let mech = mechanism.build();
    let sustained = mech.sustained_rate(workload);
    let slo_secs = cfg.slo_service_multiple * sustained.mean_interval().as_secs_f64();
    let sup = SupervisorConfig::default();
    let horizon = horizon_secs(cfg, sustained);
    let mut violations = Vec::new();

    // Per-cell seed stream: decorrelated from other cells but stable
    // for a fixed SweepConfig::seed.
    let mut cell_rng = SimRng::new(cfg.seed)
        .split(1 + workload as u64)
        .split(101 + mechanism as u64);

    // Fault-free reference runs per policy: invariant 5's baseline P99,
    // invariant 4's no-op-plan comparison, and the baseline attainment
    // and mean response that invariant 6 and the breaker drive against.
    let mut p99_ref = [0.0_f64; PolicyKind::ALL.len()];
    let mut clean_mean = [0.0_f64; PolicyKind::ALL.len()];
    let mut clean_attainment = [0.0_f64; PolicyKind::ALL.len()];
    for (i, policy) in PolicyKind::ALL.iter().enumerate() {
        let base_seed = cell_rng.next_u64();
        let clean_cfg = server_config(cfg, workload, sustained, *policy, base_seed);
        let clean = run_supervised(clean_cfg.clone(), mech.as_ref(), None, sup)?;
        p99_ref[i] = clean.response_quantile_secs(0.99);
        clean_mean[i] = clean.mean_response_secs();
        clean_attainment[i] = clean.slo_attainment(slo_secs);
        let noop = run_supervised(clean_cfg, mech.as_ref(), Some(FaultPlan::default()), sup)?;
        if !runs_identical(&clean, &noop) {
            violations.push(Violation {
                case: format!("{}/{}/{}", workload.name(), mechanism.name(), policy.name()),
                invariant: "noop-plan",
                details: "an all-off fault plan diverged from the no-plan run".to_string(),
            });
        }
    }

    let mut attainment_on = 0.0;
    let mut attainment_off = 0.0;
    let mut runs = 0u64;
    let mut recovery = RecoveryCounters::default();
    let mut fault_events = 0u64;
    let mut breaker_dwell = [0.0_f64; 3];
    let mut breaker_transitions = 0u64;
    let mut recorded_interventions = 0u64;
    let mut violation_events: Vec<Event> = Vec::new();
    for s in 0..cfg.seeds_per_cell {
        let run_seed = cell_rng.next_u64();
        let plan_seed = cell_rng.next_u64();
        let plan = random_plan(plan_seed, cfg.slots, horizon);
        for (i, policy) in PolicyKind::ALL.iter().enumerate() {
            let label = format!(
                "{}/{}/{}/seed{}",
                workload.name(),
                mechanism.name(),
                policy.name(),
                s
            );
            let scfg = server_config(cfg, workload, sustained, *policy, run_seed);
            let on = run_supervised_recorded(
                scfg.clone(),
                mech.as_ref(),
                Some(plan.clone()),
                sup,
                RECORDER_CAPACITY,
            )?;
            let before_violations = violations.len();
            check_invariants(cfg, &sup, &label, &on, p99_ref[i], &mut violations);
            let replay = run_supervised_recorded(
                scfg.clone(),
                mech.as_ref(),
                Some(plan.clone()),
                sup,
                RECORDER_CAPACITY,
            )?;
            if !runs_identical(&on, &replay) {
                violations.push(Violation {
                    case: label.clone(),
                    invariant: "replay",
                    details: "identical seeds produced diverging runs".to_string(),
                });
            }
            // A violating run attaches the tail of its event log so the
            // report shows what the server was doing when it went wrong.
            if violations.len() > before_violations && violation_events.is_empty() {
                if let Some(t) = on.telemetry() {
                    violation_events = t.last(VIOLATION_EVENT_TAIL).to_vec();
                }
            }
            let off = run_with_faults(scfg, mech.as_ref(), plan.clone())?;
            let (breaker, breaker_end) = drive_breaker(clean_mean[i], &on)?;
            let dwell = breaker.breaker_dwell_secs(breaker_end);
            for (acc, d) in breaker_dwell.iter_mut().zip(dwell) {
                *acc += d;
            }
            breaker_transitions += breaker.breaker_transitions() as u64;
            recorded_interventions += on.telemetry().map_or(0, RunTelemetry::interventions) as u64;
            attainment_on += on.slo_attainment(slo_secs);
            attainment_off += off.slo_attainment(slo_secs);
            runs += 1;
            recovery = recovery.merged(on.recovery_counters());
            fault_events += on.fault_counters().total();
        }
    }
    attainment_on /= runs as f64;
    attainment_off /= runs as f64;

    // Invariant 6: degraded attainment must leave a trace. A cell whose
    // supervised attainment fell measurably below the fault-free
    // baseline with zero supervisor recoveries, zero recorded
    // interventions and zero breaker transitions degraded *silently* —
    // exactly what the telemetry layer exists to rule out.
    let clean_attainment_mean =
        clean_attainment.iter().sum::<f64>() / clean_attainment.len() as f64;
    if attainment_on < clean_attainment_mean - SILENT_DEGRADATION_SLACK
        && recovery.total() + recorded_interventions + breaker_transitions == 0
    {
        violations.push(Violation {
            case: format!("{}/{}", workload.name(), mechanism.name()),
            invariant: "silent-degradation",
            details: format!(
                "attainment {attainment_on:.3} fell below fault-free \
                 {clean_attainment_mean:.3} with zero recorded interventions"
            ),
        });
    }

    Ok(CellReport {
        workload,
        mechanism,
        runs,
        slo_secs,
        attainment_on,
        attainment_off,
        clean_attainment: clean_attainment_mean,
        recovery,
        fault_events,
        breaker_dwell_secs: breaker_dwell,
        breaker_transitions,
        recorded_interventions,
        violation_events,
        violations,
    })
}

/// Runs the full sweep over the configured grid.
///
/// # Errors
///
/// Propagates the first validation or simulator error from any cell.
pub fn sweep(cfg: &SweepConfig) -> Result<SweepReport, SprintError> {
    cfg.validate()?;
    let mut cells = Vec::new();
    for &workload in &cfg.workloads {
        for &mechanism in &cfg.mechanisms {
            cells.push(run_cell(cfg, workload, mechanism)?);
        }
    }
    Ok(SweepReport::new(cfg, cells))
}

// Re-exported so the binary can print without depending on the facade.
pub use simcore::json;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            seeds_per_cell: 2,
            num_queries: 60,
            workloads: vec![WorkloadKind::Jacobi],
            mechanisms: vec![MechanismKind::Dvfs],
            ..SweepConfig::default()
        }
    }

    #[test]
    fn config_validation_rejects_bad_grids() {
        let mut c = tiny();
        c.utilization = 1.2;
        assert!(c.validate().is_err());
        let mut c = tiny();
        c.slots = 1;
        assert!(c.validate().is_err());
        let mut c = tiny();
        c.workloads.clear();
        assert!(c.validate().is_err());
        let mut c = tiny();
        c.seeds_per_cell = 0;
        assert!(c.validate().is_err());
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn tiny_sweep_has_no_violations() {
        let report = sweep(&tiny()).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert!(
            report.violations().next().is_none(),
            "tiny sweep must be invariant-clean: {:?}",
            report.violations().collect::<Vec<_>>()
        );
        let cell = &report.cells[0];
        assert_eq!(cell.runs, 4, "2 seeds x 2 policies");
        assert!(cell.fault_events > 0, "random plans must inject faults");
    }

    #[test]
    fn cells_report_breaker_dwell() {
        let report = sweep(&tiny()).unwrap();
        let cell = &report.cells[0];
        let total: f64 = cell.breaker_dwell_secs.iter().sum();
        assert!(
            total > 0.0,
            "breaker dwell must cover the cell's runs: {:?}",
            cell.breaker_dwell_secs
        );
        assert!(
            cell.recorded_interventions > 0,
            "supervised faulted runs must retain intervention events"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = sweep(&tiny()).unwrap();
        let b = sweep(&tiny()).unwrap();
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }

    #[test]
    fn supervision_improves_attainment_on_the_tiny_cell() {
        let mut c = tiny();
        c.seeds_per_cell = 6;
        // Full-length runs: short horizons underplay the repair outages
        // supervision exists to absorb.
        c.num_queries = 140;
        let report = sweep(&c).unwrap();
        let cell = &report.cells[0];
        assert!(
            cell.attainment_on > cell.attainment_off,
            "supervision must pay for itself: on {} vs off {}",
            cell.attainment_on,
            cell.attainment_off
        );
    }
}
