//! Machine-readable sweep reporting.

use crate::SweepConfig;
use mechanisms::MechanismKind;
use obs::Event;
use simcore::json::Json;
use testbed::RecoveryCounters;
use workloads::WorkloadKind;

/// One failed invariant check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which run broke the invariant (`workload/mechanism/policy/seed`).
    pub case: String,
    /// The invariant that failed.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub details: String,
}

/// Aggregated outcome of one (workload, mechanism) grid cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Workload of this cell.
    pub workload: WorkloadKind,
    /// Mechanism of this cell.
    pub mechanism: MechanismKind,
    /// Fault-injected runs aggregated into the attainment averages.
    pub runs: u64,
    /// SLO used for attainment, in seconds.
    pub slo_secs: f64,
    /// Mean SLO attainment with supervision on (shed/rejected arrivals
    /// count as misses).
    pub attainment_on: f64,
    /// Mean SLO attainment with supervision off, same fault plans.
    pub attainment_off: f64,
    /// Mean fault-free (clean-run) SLO attainment — the baseline the
    /// silent-degradation invariant compares against.
    pub clean_attainment: f64,
    /// Summed supervisor intervention counters across the cell's
    /// supervised runs.
    pub recovery: RecoveryCounters,
    /// Total injected fault events across the cell's supervised runs.
    pub fault_events: u64,
    /// Summed seconds at each model-health breaker level (full-model,
    /// stale-model, no-sprint) across the cell's supervised runs.
    pub breaker_dwell_secs: [f64; 3],
    /// Total breaker level transitions across the cell's supervised
    /// runs.
    pub breaker_transitions: u64,
    /// Flight-recorder intervention events retained across the cell's
    /// supervised runs.
    pub recorded_interventions: u64,
    /// Tail of the event log from the first violating run, if any.
    pub violation_events: Vec<Event>,
    /// Invariant violations observed in this cell.
    pub violations: Vec<Violation>,
}

impl CellReport {
    /// Whether supervision strictly improved SLO attainment here.
    pub fn improved(&self) -> bool {
        self.attainment_on > self.attainment_off
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "workload".to_string(),
                Json::Str(self.workload.name().to_string()),
            ),
            (
                "mechanism".to_string(),
                Json::Str(self.mechanism.name().to_string()),
            ),
            ("runs".to_string(), Json::Num(self.runs as f64)),
            ("slo_secs".to_string(), Json::Num(self.slo_secs)),
            (
                "slo_attainment_supervised".to_string(),
                Json::Num(self.attainment_on),
            ),
            (
                "slo_attainment_unsupervised".to_string(),
                Json::Num(self.attainment_off),
            ),
            (
                "supervision_improves".to_string(),
                Json::Bool(self.improved()),
            ),
            (
                "clean_attainment".to_string(),
                Json::Num(self.clean_attainment),
            ),
            (
                "recovery_events".to_string(),
                Json::Num(self.recovery.total() as f64),
            ),
            ("recovery".to_string(), recovery_json(&self.recovery)),
            (
                "fault_events".to_string(),
                Json::Num(self.fault_events as f64),
            ),
            (
                "breaker_dwell_secs".to_string(),
                Json::Obj(vec![
                    (
                        "full_model".to_string(),
                        Json::Num(self.breaker_dwell_secs[0]),
                    ),
                    (
                        "stale_model".to_string(),
                        Json::Num(self.breaker_dwell_secs[1]),
                    ),
                    (
                        "no_sprint".to_string(),
                        Json::Num(self.breaker_dwell_secs[2]),
                    ),
                ]),
            ),
            (
                "breaker_transitions".to_string(),
                Json::Num(self.breaker_transitions as f64),
            ),
            (
                "recorded_interventions".to_string(),
                Json::Num(self.recorded_interventions as f64),
            ),
            (
                "violation_events".to_string(),
                Json::Arr(self.violation_events.iter().map(Event::to_json).collect()),
            ),
            (
                "violations".to_string(),
                Json::Arr(self.violations.iter().map(violation_json).collect()),
            ),
        ])
    }
}

fn recovery_json(r: &RecoveryCounters) -> Json {
    Json::Obj(vec![
        (
            "slot_restarts".to_string(),
            Json::Num(r.slot_restarts as f64),
        ),
        ("quarantines".to_string(), Json::Num(r.quarantines as f64)),
        (
            "forced_unsprints".to_string(),
            Json::Num(r.forced_unsprints as f64),
        ),
        ("shed_queries".to_string(), Json::Num(r.shed_queries as f64)),
        (
            "rejected_queries".to_string(),
            Json::Num(r.rejected_queries as f64),
        ),
        (
            "requeued_queries".to_string(),
            Json::Num(r.requeued_queries as f64),
        ),
        ("degraded_secs".to_string(), Json::Num(r.degraded_secs)),
    ])
}

fn violation_json(v: &Violation) -> Json {
    Json::Obj(vec![
        ("case".to_string(), Json::Str(v.case.clone())),
        ("invariant".to_string(), Json::Str(v.invariant.to_string())),
        ("details".to_string(), Json::Str(v.details.clone())),
    ])
}

/// Full sweep outcome: every cell plus top-level verdicts.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Base seed the sweep derives from.
    pub seed: u64,
    /// Randomized plans per cell.
    pub seeds_per_cell: u64,
    /// Queries per run.
    pub num_queries: usize,
    /// All grid cells.
    pub cells: Vec<CellReport>,
}

impl SweepReport {
    pub(crate) fn new(cfg: &SweepConfig, cells: Vec<CellReport>) -> SweepReport {
        SweepReport {
            seed: cfg.seed,
            seeds_per_cell: cfg.seeds_per_cell,
            num_queries: cfg.num_queries,
            cells,
        }
    }

    /// All invariant violations across the sweep.
    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.cells.iter().flat_map(|c| c.violations.iter())
    }

    /// Whether supervision strictly improved SLO attainment in every
    /// cell — the sweep's recovery-efficacy verdict.
    pub fn all_cells_improved(&self) -> bool {
        self.cells.iter().all(CellReport::improved)
    }

    /// Whether the sweep is fully clean: zero violations and strict
    /// improvement everywhere.
    pub fn passed(&self) -> bool {
        self.violations().next().is_none() && self.all_cells_improved()
    }

    /// Serializes the report for the `chaos_sweep` binary.
    pub fn to_json(&self) -> Json {
        let n_violations = self.violations().count();
        Json::Obj(vec![
            ("seed".to_string(), Json::Num(self.seed as f64)),
            (
                "seeds_per_cell".to_string(),
                Json::Num(self.seeds_per_cell as f64),
            ),
            (
                "num_queries".to_string(),
                Json::Num(self.num_queries as f64),
            ),
            (
                "invariant_violations".to_string(),
                Json::Num(n_violations as f64),
            ),
            (
                "all_cells_improved".to_string(),
                Json::Bool(self.all_cells_improved()),
            ),
            ("passed".to_string(), Json::Bool(self.passed())),
            (
                "cells".to_string(),
                Json::Arr(self.cells.iter().map(CellReport::to_json).collect()),
            ),
        ])
    }
}
