//! Fixed-seed message-fault scenario setups.
//!
//! The randomized sweep keeps control-plane message faults mild (short
//! delays, idempotent duplicates) because its recovery invariants
//! assume the watchdog's ForceUnsprint actually lands. These setups
//! pin the aggressive regimes on fixed seeds:
//!
//! - **lost-unsprint-command** — every control message dropped: the
//!   watchdog fires but its command never arrives, so a stuck sprint
//!   overruns the watchdog deadline all the way to query completion.
//! - **delayed-budget-telemetry** — every message delayed: the
//!   controller acts on a stale budget cache and late unsprints, but
//!   the overrun stays bounded by watchdog + max delay.
//! - **watchdog-partition** — the watchdog↔controller link partitioned
//!   for the whole run: zero forced unsprints land despite the watchdog
//!   firing, and every cut is accounted by the partition counter.
//!
//! The failure-signature assertions themselves live in the declarative
//! scenario catalog (`scenarios/*.toml`, executed by the `scenario`
//! crate and the `scenario_run` bin): each setup here has a TOML twin
//! carrying the same seeds and the machine-checked invariants. This
//! module keeps only the launch recipes, which the tracing layer
//! ([`crate::trace`]) replays instrumented to reconstruct causal
//! chains.

use faults::{FaultPlan, LinkPartition, MessageFaults, Peer};
use mechanisms::MechanismKind;
use simcore::time::{Rate, SimDuration};
use testbed::{ArrivalSpec, BudgetSpec, ServerConfig, SprintPolicy, SupervisorConfig};
use workloads::{QueryMix, WorkloadKind};

/// Watchdog deadline for every scenario, in seconds. Short, so stuck
/// sprints trip it many times per run.
const WATCHDOG_SECS: f64 = 20.0;

/// Max in-flight delay for the delayed-telemetry scenario, in seconds.
const DELAY_SECS: f64 = 30.0;

/// One scenario's full launch recipe: everything needed to rerun the
/// identical fixed-seed run. Exposed so the tracing layer
/// ([`crate::trace`]) can replay each scenario instrumented and
/// reconstruct the causal chain behind its failure signature.
#[derive(Debug, Clone)]
pub struct ScenarioSetup {
    /// Scenario name (doubles as the violation case label).
    pub name: &'static str,
    /// Fixed-seed server configuration.
    pub cfg: ServerConfig,
    /// The message-fault plan under test.
    pub plan: FaultPlan,
    /// Supervisor configuration (short watchdog).
    pub sup: SupervisorConfig,
}

/// A base run whose every sprint sticks on: recovery depends entirely
/// on the watchdog's ForceUnsprint landing, which is what the message
/// faults then perturb.
fn scenario_config(seed: u64) -> (ServerConfig, SupervisorConfig) {
    let cfg = ServerConfig {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        arrivals: ArrivalSpec::poisson(Rate::per_hour(3.0)),
        policy: SprintPolicy::new(
            SimDuration::ZERO,
            BudgetSpec::Seconds(10.0),
            SimDuration::from_secs(1_000_000),
        ),
        slots: 1,
        num_queries: 60,
        warmup: 0,
        seed,
    };
    let sup = SupervisorConfig {
        watchdog_secs: WATCHDOG_SECS,
        ..SupervisorConfig::default()
    };
    (cfg, sup)
}

fn base_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xC1A05,
        stuck_sprint_prob: 1.0,
        ..FaultPlan::default()
    }
}

pub(crate) fn cfg_mechanism() -> MechanismKind {
    MechanismKind::CpuThrottle
}

fn lost_unsprint_setup() -> ScenarioSetup {
    let (cfg, sup) = scenario_config(0xD207);
    ScenarioSetup {
        name: "lost-unsprint-command",
        cfg,
        plan: FaultPlan {
            messages: MessageFaults {
                drop_prob: 1.0,
                ..MessageFaults::default()
            },
            ..base_plan()
        },
        sup,
    }
}

fn delayed_telemetry_setup() -> ScenarioSetup {
    let (cfg, sup) = scenario_config(0xDE1A7);
    ScenarioSetup {
        name: "delayed-budget-telemetry",
        cfg,
        plan: FaultPlan {
            messages: MessageFaults {
                delay_prob: 1.0,
                delay_secs: DELAY_SECS,
                ..MessageFaults::default()
            },
            ..base_plan()
        },
        sup,
    }
}

fn watchdog_partition_setup() -> ScenarioSetup {
    let (cfg, sup) = scenario_config(0x9A271);
    ScenarioSetup {
        name: "watchdog-partition",
        cfg,
        plan: FaultPlan {
            messages: MessageFaults {
                partitions: vec![LinkPartition {
                    a: Peer::Watchdog,
                    b: Peer::Controller,
                    start_secs: 0.0,
                    duration_secs: 1e9,
                }],
                ..MessageFaults::default()
            },
            ..base_plan()
        },
        sup,
    }
}

/// The launch recipes of all fixed-seed scenarios, in report order.
pub fn scenario_setups() -> Vec<ScenarioSetup> {
    vec![
        lost_unsprint_setup(),
        delayed_telemetry_setup(),
        watchdog_partition_setup(),
    ]
}
