//! Fixed-seed message-fault scenarios.
//!
//! The randomized sweep keeps control-plane message faults mild (short
//! delays, idempotent duplicates) because its recovery invariants
//! assume the watchdog's ForceUnsprint actually lands. These scenarios
//! probe the aggressive regimes on fixed seeds, each asserting the
//! precise failure signature the fault must (and must only) produce:
//!
//! - **lost-unsprint-command** — every control message dropped: the
//!   watchdog fires but its command never arrives, so a stuck sprint
//!   overruns the watchdog deadline all the way to query completion.
//! - **delayed-budget-telemetry** — every message delayed: the
//!   controller acts on a stale budget cache and late unsprints, but
//!   the overrun stays bounded by watchdog + max delay.
//! - **watchdog-partition** — the watchdog↔controller link partitioned
//!   for the whole run: zero forced unsprints land despite the watchdog
//!   firing, and every cut is accounted by the partition counter.
//!
//! Each scenario also re-checks the sweep's structural invariants:
//! queries are conserved, the run replays bit-identically, and the
//! same configuration under an *empty* message plan stays inside the
//! watchdog bound (so the overrun is attributable to the message fault
//! alone).

use faults::{FaultCounters, FaultPlan, LinkPartition, MessageFaults, Peer};
use mechanisms::MechanismKind;
use simcore::time::{Rate, SimDuration};
use simcore::SprintError;
use testbed::{
    run_supervised, ArrivalSpec, BudgetSpec, QueryRecord, RunResult, ServerConfig, SprintPolicy,
    SupervisorConfig,
};
use workloads::{QueryMix, WorkloadKind};

use crate::{runs_identical, Violation};

/// Watchdog deadline for every scenario, in seconds. Short, so stuck
/// sprints trip it many times per run.
const WATCHDOG_SECS: f64 = 20.0;

/// Max in-flight delay for the delayed-telemetry scenario, in seconds.
const DELAY_SECS: f64 = 30.0;

/// Slack on watchdog-bound assertions, matching the sweep's tolerance.
const SLACK_SECS: f64 = 2.0;

/// One scenario's full launch recipe: everything needed to rerun the
/// identical fixed-seed run. Exposed so the tracing layer
/// ([`crate::trace`]) can replay each scenario instrumented and
/// reconstruct the causal chain behind its failure signature.
#[derive(Debug, Clone)]
pub struct ScenarioSetup {
    /// Scenario name (doubles as the violation case label).
    pub name: &'static str,
    /// Fixed-seed server configuration.
    pub cfg: ServerConfig,
    /// The message-fault plan under test.
    pub plan: FaultPlan,
    /// Supervisor configuration (short watchdog).
    pub sup: SupervisorConfig,
}

/// Outcome of one scenario: its name, the counters that prove the
/// fault actually fired, and any failed assertions.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (doubles as the violation case label).
    pub name: &'static str,
    /// Longest single-query sprint in the run, in seconds.
    pub max_sprint_secs: f64,
    /// Messages perturbed by the scenario's fault class.
    pub faulted_messages: u64,
    /// Watchdog commands that actually landed.
    pub forced_unsprints: u64,
    /// Full fault counters, for per-class message breakdowns in the
    /// human report.
    pub counters: FaultCounters,
    /// Failed assertions (empty = scenario behaved exactly as modeled).
    pub violations: Vec<Violation>,
}

/// A base run whose every sprint sticks on: recovery depends entirely
/// on the watchdog's ForceUnsprint landing, which is what the message
/// faults then perturb.
fn scenario_config(seed: u64) -> (ServerConfig, SupervisorConfig) {
    let cfg = ServerConfig {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        arrivals: ArrivalSpec::poisson(Rate::per_hour(3.0)),
        policy: SprintPolicy::new(
            SimDuration::ZERO,
            BudgetSpec::Seconds(10.0),
            SimDuration::from_secs(1_000_000),
        ),
        slots: 1,
        num_queries: 60,
        warmup: 0,
        seed,
    };
    let sup = SupervisorConfig {
        watchdog_secs: WATCHDOG_SECS,
        ..SupervisorConfig::default()
    };
    (cfg, sup)
}

fn base_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xC1A05,
        stuck_sprint_prob: 1.0,
        ..FaultPlan::default()
    }
}

fn max_sprint_secs(run: &RunResult) -> f64 {
    run.records()
        .iter()
        .map(|q: &QueryRecord| q.sprint_seconds)
        .fold(0.0_f64, f64::max)
}

/// Structural checks shared by every scenario: conservation, replay
/// determinism, and a clean-message twin that stays watchdog-bounded.
fn structural_checks(
    name: &'static str,
    cfg: &ServerConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    run: &RunResult,
    out: &mut Vec<Violation>,
) -> Result<(), SprintError> {
    if !run.conserves_queries() {
        out.push(Violation {
            case: name.to_string(),
            invariant: "conservation",
            details: format!(
                "served {} + turned away {} != arrived {}",
                run.served(),
                run.recovery_counters().turned_away(),
                run.arrived()
            ),
        });
    }
    let replay = run_supervised(
        cfg.clone(),
        &*cfg_mechanism().build(),
        Some(plan.clone()),
        *sup,
    )?;
    if !runs_identical(run, &replay) {
        out.push(Violation {
            case: name.to_string(),
            invariant: "replay",
            details: "identical (cfg, plan, sup) produced diverging runs".to_string(),
        });
    }
    let mut clean_plan = plan.clone();
    clean_plan.messages = MessageFaults::default();
    let clean = run_supervised(
        cfg.clone(),
        &*cfg_mechanism().build(),
        Some(clean_plan),
        *sup,
    )?;
    let clean_max = max_sprint_secs(&clean);
    if clean_max > WATCHDOG_SECS + SLACK_SECS {
        out.push(Violation {
            case: name.to_string(),
            invariant: "clean-twin-bounded",
            details: format!(
                "without message faults the watchdog must hold: sprinted {clean_max:.1}s"
            ),
        });
    }
    Ok(())
}

pub(crate) fn cfg_mechanism() -> MechanismKind {
    MechanismKind::CpuThrottle
}

fn lost_unsprint_setup() -> ScenarioSetup {
    let (cfg, sup) = scenario_config(0xD207);
    ScenarioSetup {
        name: "lost-unsprint-command",
        cfg,
        plan: FaultPlan {
            messages: MessageFaults {
                drop_prob: 1.0,
                ..MessageFaults::default()
            },
            ..base_plan()
        },
        sup,
    }
}

fn delayed_telemetry_setup() -> ScenarioSetup {
    let (cfg, sup) = scenario_config(0xDE1A7);
    ScenarioSetup {
        name: "delayed-budget-telemetry",
        cfg,
        plan: FaultPlan {
            messages: MessageFaults {
                delay_prob: 1.0,
                delay_secs: DELAY_SECS,
                ..MessageFaults::default()
            },
            ..base_plan()
        },
        sup,
    }
}

fn watchdog_partition_setup() -> ScenarioSetup {
    let (cfg, sup) = scenario_config(0x9A271);
    ScenarioSetup {
        name: "watchdog-partition",
        cfg,
        plan: FaultPlan {
            messages: MessageFaults {
                partitions: vec![LinkPartition {
                    a: Peer::Watchdog,
                    b: Peer::Controller,
                    start_secs: 0.0,
                    duration_secs: 1e9,
                }],
                ..MessageFaults::default()
            },
            ..base_plan()
        },
        sup,
    }
}

/// The launch recipes of all fixed-seed scenarios, in report order.
pub fn scenario_setups() -> Vec<ScenarioSetup> {
    vec![
        lost_unsprint_setup(),
        delayed_telemetry_setup(),
        watchdog_partition_setup(),
    ]
}

/// Lost unsprint commands: `drop_prob = 1.0`. The watchdog fires but
/// nothing arrives, so stuck sprints overrun until the query finishes.
fn lost_unsprint_command() -> Result<ScenarioReport, SprintError> {
    let ScenarioSetup {
        name,
        cfg,
        plan,
        sup,
    } = lost_unsprint_setup();
    let run = run_supervised(
        cfg.clone(),
        &*cfg_mechanism().build(),
        Some(plan.clone()),
        sup,
    )?;
    let max_sprint = max_sprint_secs(&run);
    let mut violations = Vec::new();
    if run.fault_counters().msgs_dropped == 0 {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "fault-fired",
            details: "drop_prob=1.0 dropped no messages".to_string(),
        });
    }
    if run.recovery_counters().forced_unsprints != 0 {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "commands-lost",
            details: format!(
                "{} ForceUnsprint commands landed despite total loss",
                run.recovery_counters().forced_unsprints
            ),
        });
    }
    if max_sprint <= WATCHDOG_SECS + SLACK_SECS {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "overrun-visible",
            details: format!(
                "losing every unsprint command must breach the watchdog: \
                 max sprint {max_sprint:.1}s <= {WATCHDOG_SECS:.0}s + slack"
            ),
        });
    }
    structural_checks(name, &cfg, &sup, &plan, &run, &mut violations)?;
    Ok(ScenarioReport {
        name,
        max_sprint_secs: max_sprint,
        faulted_messages: run.fault_counters().msgs_dropped,
        forced_unsprints: run.recovery_counters().forced_unsprints,
        counters: *run.fault_counters(),
        violations,
    })
}

/// Delayed budget telemetry and unsprint commands: `delay_prob = 1.0`
/// with delays up to [`DELAY_SECS`]. Commands eventually land, so the
/// overrun is bounded by watchdog + max delay.
fn delayed_budget_telemetry() -> Result<ScenarioReport, SprintError> {
    let ScenarioSetup {
        name,
        cfg,
        plan,
        sup,
    } = delayed_telemetry_setup();
    let run = run_supervised(
        cfg.clone(),
        &*cfg_mechanism().build(),
        Some(plan.clone()),
        sup,
    )?;
    let max_sprint = max_sprint_secs(&run);
    let mut violations = Vec::new();
    if run.fault_counters().msgs_delayed == 0 {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "fault-fired",
            details: "delay_prob=1.0 delayed no messages".to_string(),
        });
    }
    if run.recovery_counters().forced_unsprints == 0 {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "commands-land-late",
            details: "delayed ForceUnsprint commands must still arrive".to_string(),
        });
    }
    if max_sprint > WATCHDOG_SECS + DELAY_SECS + SLACK_SECS {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "overrun-bounded",
            details: format!(
                "a delayed command bounds the overrun at watchdog + delay: \
                 sprinted {max_sprint:.1}s > {:.0}s",
                WATCHDOG_SECS + DELAY_SECS + SLACK_SECS
            ),
        });
    }
    structural_checks(name, &cfg, &sup, &plan, &run, &mut violations)?;
    Ok(ScenarioReport {
        name,
        max_sprint_secs: max_sprint,
        faulted_messages: run.fault_counters().msgs_delayed,
        forced_unsprints: run.recovery_counters().forced_unsprints,
        counters: *run.fault_counters(),
        violations,
    })
}

/// Watchdog partitioned from the controller for the entire run: like
/// total loss, but via the scheduled-partition path (no randomness) and
/// accounted by the partition counter.
fn watchdog_partition() -> Result<ScenarioReport, SprintError> {
    let ScenarioSetup {
        name,
        cfg,
        plan,
        sup,
    } = watchdog_partition_setup();
    let run = run_supervised(
        cfg.clone(),
        &*cfg_mechanism().build(),
        Some(plan.clone()),
        sup,
    )?;
    let max_sprint = max_sprint_secs(&run);
    let mut violations = Vec::new();
    if run.fault_counters().partition_drops == 0 {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "fault-fired",
            details: "a whole-run partition cut no messages".to_string(),
        });
    }
    if run.fault_counters().msgs_dropped != 0 {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "partition-not-random",
            details: "partition cuts must not count as random drops".to_string(),
        });
    }
    if run.recovery_counters().forced_unsprints != 0 {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "commands-lost",
            details: format!(
                "{} ForceUnsprint commands crossed a severed link",
                run.recovery_counters().forced_unsprints
            ),
        });
    }
    if max_sprint <= WATCHDOG_SECS + SLACK_SECS {
        violations.push(Violation {
            case: name.to_string(),
            invariant: "overrun-visible",
            details: format!(
                "partitioning the watchdog must breach its bound: \
                 max sprint {max_sprint:.1}s <= {WATCHDOG_SECS:.0}s + slack"
            ),
        });
    }
    structural_checks(name, &cfg, &sup, &plan, &run, &mut violations)?;
    Ok(ScenarioReport {
        name,
        max_sprint_secs: max_sprint,
        faulted_messages: run.fault_counters().partition_drops,
        forced_unsprints: run.recovery_counters().forced_unsprints,
        counters: *run.fault_counters(),
        violations,
    })
}

/// Runs all fixed-seed message-fault scenarios.
///
/// # Errors
///
/// Propagates the first validation or simulator error — a typed error
/// is a harness failure, not a scenario verdict.
pub fn run_scenarios() -> Result<Vec<ScenarioReport>, SprintError> {
    Ok(vec![
        lost_unsprint_command()?,
        delayed_budget_telemetry()?,
        watchdog_partition()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_hold() {
        for report in run_scenarios().unwrap() {
            assert!(
                report.violations.is_empty(),
                "{}: {:?}",
                report.name,
                report.violations
            );
            assert!(report.faulted_messages > 0, "{}", report.name);
        }
    }

    #[test]
    fn lost_commands_overrun_but_delayed_commands_stay_bounded() {
        let reports = run_scenarios().unwrap();
        let lost = &reports[0];
        let delayed = &reports[1];
        assert!(lost.max_sprint_secs > delayed.max_sprint_secs);
        assert_eq!(lost.forced_unsprints, 0);
        assert!(delayed.forced_unsprints > 0);
    }
}
