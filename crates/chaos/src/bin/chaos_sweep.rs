//! Chaos sweep: randomized fault plans across the (workload, mechanism,
//! policy) grid, with machine-checked recovery invariants.
//!
//! ```text
//! chaos_sweep [--seeds N] [--queries N] [--util F] [--seed N]
//!             [--workload NAME] [--p99-factor F]
//!             [--replay workload/mechanism/policy/seedN]
//! ```
//!
//! Prints a JSON report to stdout — including per-cell model-health
//! breaker dwell times and the flight-recorder tail of any violating
//! run — and exits non-zero if any invariant was violated or
//! supervision failed to improve SLO attainment in every cell. Before
//! the sweep it runs the fleet chaos scenarios (coordinator crash mid
//! sprint wave, split-brain partition, lease-renewal storm), swept
//! across `--seeds` root seeds with the four fleet invariants checked
//! on every run. Scenario lines include a per-class message-fault
//! breakdown (partitioned/dropped/duplicated/delayed). The fixed-seed
//! single-node message-fault scenarios live in the declarative TOML
//! catalog now (`scenarios/*.toml`, run by `scenario_run`).
//!
//! `--replay` skips the sweep and re-runs the single case a violation
//! named (under the same `--seed`/`--seeds`/sizing flags as the sweep
//! that reported it), re-checking its invariants and printing the
//! run's flight-recorder tail.

use chaos::{replay_case, run_fleet_scenarios, sweep, SweepConfig};
use faults::FaultCounters;
use workloads::WorkloadKind;

/// One-line per-class message-fault breakdown for human reports.
fn message_class_line(counters: &FaultCounters) -> String {
    let classes: Vec<String> = counters
        .message_classes()
        .iter()
        .map(|(label, n)| format!("{label} {n}"))
        .collect();
    format!(
        "messages: {} ({} total)",
        classes.join(", "),
        counters.messages_total()
    )
}

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn numeric<T: std::str::FromStr>(name: &str, default: T) -> T {
    match arg_value(name) {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} expects a number, got {v}")),
        None => default,
    }
}

fn replay(cfg: &SweepConfig, case: &str) -> std::process::ExitCode {
    let outcome = match replay_case(cfg, case) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    println!(
        "replayed {} ({} fault events)",
        outcome.label, outcome.fault_events
    );
    println!("{}", message_class_line(&outcome.counters));
    println!("plan: {:?}", outcome.plan);
    println!("recorder tail ({} events):", outcome.events.len());
    for e in &outcome.events {
        println!(
            "  [{:>4}] {:>12}us  {}  {}",
            e.seq,
            e.at.0,
            e.kind.name(),
            e.kind.detail()
        );
    }
    if outcome.violations.is_empty() {
        println!("invariants clean on replay");
        std::process::ExitCode::SUCCESS
    } else {
        for v in &outcome.violations {
            eprintln!("violation [{}] {}: {}", v.case, v.invariant, v.details);
        }
        std::process::ExitCode::FAILURE
    }
}

fn main() -> std::process::ExitCode {
    let mut cfg = SweepConfig {
        seeds_per_cell: numeric("--seeds", 16),
        num_queries: numeric("--queries", 140),
        utilization: numeric("--util", 0.6),
        p99_degradation_factor: numeric("--p99-factor", 15.0),
        ..SweepConfig::default()
    };
    cfg.seed = numeric("--seed", cfg.seed);
    if let Some(w) = arg_value("--workload") {
        match WorkloadKind::parse(&w) {
            Some(kind) => cfg.workloads = vec![kind],
            None => {
                eprintln!("unknown workload {w:?}");
                return std::process::ExitCode::FAILURE;
            }
        }
    }

    if let Some(case) = arg_value("--replay") {
        return replay(&cfg, &case);
    }

    match run_fleet_scenarios(cfg.seeds_per_cell) {
        Ok(reports) => {
            let mut bad = 0;
            for r in &reports {
                eprintln!(
                    "fleet scenario {} ({} nodes x {} seeds): {} grants, \
                     {} renewals, {} expiries, {} elections, {} step-downs, \
                     {} forced unsprints, {} violation(s)",
                    r.name,
                    r.nodes,
                    r.seeds,
                    r.grants,
                    r.renewals,
                    r.expiries,
                    r.elections,
                    r.step_downs,
                    r.forced_unsprints,
                    r.violations.len(),
                );
                eprintln!("  {}", message_class_line(&r.counters));
                for v in &r.violations {
                    eprintln!("  [{}] {}: {}", v.case, v.invariant, v.details);
                }
                bad += r.violations.len();
            }
            if bad > 0 {
                eprintln!("{bad} fleet scenario violation(s)");
                return std::process::ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("fleet scenarios failed: {e}");
            return std::process::ExitCode::FAILURE;
        }
    }

    let report = match sweep(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos sweep failed: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    println!("{}", report.to_json().to_string_pretty());
    for c in &report.cells {
        eprintln!(
            "{}/{}: breaker dwell full={:.0}s stale={:.0}s no-sprint={:.0}s \
             ({} transitions, {} recorded interventions)",
            c.workload.name(),
            c.mechanism.name(),
            c.breaker_dwell_secs[0],
            c.breaker_dwell_secs[1],
            c.breaker_dwell_secs[2],
            c.breaker_transitions,
            c.recorded_interventions,
        );
    }
    let n = report.violations().count();
    if n > 0 {
        eprintln!("{n} invariant violation(s)");
        return std::process::ExitCode::FAILURE;
    }
    if !report.all_cells_improved() {
        eprintln!("supervision did not improve SLO attainment in every cell");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
