//! Single-case replay: re-run one sweep cell run by its case label.
//!
//! A sweep violation names its run as `workload/mechanism/policy/seedN`
//! (e.g. `Jacobi/DVFS/sprint/seed3`). Because every per-run seed is
//! derived deterministically from [`SweepConfig::seed`], that label is
//! enough to reconstruct the exact `(config, plan)` pair and re-execute
//! just the one run — with the flight recorder attached — instead of
//! the whole sweep. `chaos_sweep --replay <case>` exposes this for
//! debugging: it re-checks the invariants and prints the recorder tail.

use faults::{FaultCounters, FaultPlan};
use mechanisms::MechanismKind;
use obs::Event;
use simcore::rng::SimRng;
use simcore::SprintError;
use testbed::{run_supervised_recorded, SupervisorConfig};
use workloads::WorkloadKind;

use crate::plan::random_plan;
use crate::report::Violation;
use crate::{
    check_invariants, horizon_secs, run_supervised, runs_identical, server_config, PolicyKind,
    SweepConfig, RECORDER_CAPACITY, VIOLATION_EVENT_TAIL,
};

/// Outcome of replaying one case.
#[derive(Debug, Clone)]
pub struct CaseReplay {
    /// The case label as parsed back (canonical form).
    pub label: String,
    /// The regenerated fault plan the run executed under.
    pub plan: FaultPlan,
    /// Invariant violations observed on the re-run (empty = clean).
    pub violations: Vec<Violation>,
    /// Tail of the run's flight-recorder event log.
    pub events: Vec<Event>,
    /// Total injected fault events.
    pub fault_events: u64,
    /// Full fault counters, for per-class message breakdowns.
    pub counters: FaultCounters,
}

fn parse_label(case: &str) -> Result<(WorkloadKind, MechanismKind, PolicyKind, u64), SprintError> {
    let bad = |what: &str| {
        SprintError::invalid(
            "replay_case",
            format!("{what} in case `{case}` (expected workload/mechanism/policy/seedN)"),
        )
    };
    let parts: Vec<&str> = case.split('/').collect();
    let [w, m, p, s] = parts[..] else {
        return Err(bad("wrong number of segments"));
    };
    let workload = WorkloadKind::parse(w).ok_or_else(|| bad("unknown workload"))?;
    let mechanism = MechanismKind::parse(m).ok_or_else(|| bad("unknown mechanism"))?;
    let policy = PolicyKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(p))
        .ok_or_else(|| bad("unknown policy"))?;
    let seed_idx = s
        .strip_prefix("seed")
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| bad("bad seed index"))?;
    Ok((workload, mechanism, policy, seed_idx))
}

/// Re-runs the single sweep run named by `case` under `cfg`, with the
/// flight recorder attached, re-checking the per-run invariants.
///
/// `cfg` must match the sweep that reported the case (same `seed`,
/// `seeds_per_cell`, sizing), or the derived per-run seeds will name a
/// different run.
///
/// # Errors
///
/// Returns an error if the label does not parse, the seed index is out
/// of range for `cfg.seeds_per_cell`, or the run itself fails.
pub fn replay_case(cfg: &SweepConfig, case: &str) -> Result<CaseReplay, SprintError> {
    cfg.validate()?;
    let (workload, mechanism, policy, seed_idx) = parse_label(case)?;
    if seed_idx >= cfg.seeds_per_cell {
        return Err(SprintError::invalid(
            "replay_case",
            format!(
                "seed index {seed_idx} out of range: the sweep ran {} seeds per cell",
                cfg.seeds_per_cell
            ),
        ));
    }
    let mech = mechanism.build();
    let sustained = mech.sustained_rate(workload);
    let sup = SupervisorConfig::default();
    let horizon = horizon_secs(cfg, sustained);

    // Replicate run_cell's draw order exactly: one base seed per policy
    // for the clean reference runs, then (run_seed, plan_seed) pairs.
    let mut cell_rng = SimRng::new(cfg.seed)
        .split(1 + workload as u64)
        .split(101 + mechanism as u64);
    let mut p99_ref = [0.0_f64; PolicyKind::ALL.len()];
    for (i, pol) in PolicyKind::ALL.iter().enumerate() {
        let base_seed = cell_rng.next_u64();
        let clean_cfg = server_config(cfg, workload, sustained, *pol, base_seed);
        let clean = run_supervised(clean_cfg, mech.as_ref(), None, sup)?;
        p99_ref[i] = clean.response_quantile_secs(0.99);
    }
    let mut run_seed = 0;
    let mut plan_seed = 0;
    for _ in 0..=seed_idx {
        run_seed = cell_rng.next_u64();
        plan_seed = cell_rng.next_u64();
    }
    let plan = random_plan(plan_seed, cfg.slots, horizon);
    let policy_idx = PolicyKind::ALL
        .iter()
        .position(|k| *k == policy)
        .unwrap_or(0);

    let label = format!(
        "{}/{}/{}/seed{}",
        workload.name(),
        mechanism.name(),
        policy.name(),
        seed_idx
    );
    let scfg = server_config(cfg, workload, sustained, policy, run_seed);
    let run = run_supervised_recorded(
        scfg.clone(),
        mech.as_ref(),
        Some(plan.clone()),
        sup,
        RECORDER_CAPACITY,
    )?;
    let mut violations = Vec::new();
    check_invariants(
        cfg,
        &sup,
        &label,
        &run,
        p99_ref[policy_idx],
        &mut violations,
    );
    let rerun = run_supervised_recorded(
        scfg,
        mech.as_ref(),
        Some(plan.clone()),
        sup,
        RECORDER_CAPACITY,
    )?;
    if !runs_identical(&run, &rerun) {
        violations.push(Violation {
            case: label.clone(),
            invariant: "replay",
            details: "identical seeds produced diverging runs".to_string(),
        });
    }
    let events = run
        .telemetry()
        .map(|t| t.last(VIOLATION_EVENT_TAIL).to_vec())
        .unwrap_or_default();
    Ok(CaseReplay {
        label,
        plan,
        violations,
        events,
        fault_events: run.fault_counters().total(),
        counters: *run.fault_counters(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            seeds_per_cell: 2,
            num_queries: 60,
            workloads: vec![WorkloadKind::Jacobi],
            mechanisms: vec![MechanismKind::Dvfs],
            ..SweepConfig::default()
        }
    }

    #[test]
    fn replayed_case_matches_the_sweeps_verdict() {
        // The tiny sweep is invariant-clean, so replaying any of its
        // cases must also come back clean — and deterministically.
        let a = replay_case(&tiny(), "Jacobi/DVFS/sprint/seed1").unwrap();
        let b = replay_case(&tiny(), "Jacobi/DVFS/sprint/seed1").unwrap();
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.fault_events > 0, "the regenerated plan must inject");
        assert!(!a.events.is_empty(), "recorder tail must be attached");
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.fault_events, b.fault_events);
    }

    #[test]
    fn bad_labels_are_rejected() {
        let cfg = tiny();
        assert!(replay_case(&cfg, "Jacobi/DVFS/sprint").is_err());
        assert!(replay_case(&cfg, "NoSuch/DVFS/sprint/seed0").is_err());
        assert!(replay_case(&cfg, "Jacobi/NoSuch/sprint/seed0").is_err());
        assert!(replay_case(&cfg, "Jacobi/DVFS/nosuch/seed0").is_err());
        assert!(replay_case(&cfg, "Jacobi/DVFS/sprint/seed99").is_err());
        assert!(replay_case(&cfg, "Jacobi/DVFS/sprint/0").is_err());
    }
}
