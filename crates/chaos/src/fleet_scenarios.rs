//! Fixed-spec fleet chaos scenarios.
//!
//! The fleet layer claims that a shared sprint budget arbitrated by
//! time-bounded leases survives coordinator crashes, split-brain
//! partitions, and lossy control planes without ever exceeding the
//! budget by more than one lease duration of slack. These scenarios
//! sweep that claim across many root seeds, each run checked against
//! the four fleet invariants:
//!
//! 1. **Bounded power** — aggregate sprint power never exceeds the
//!    budget by more than one lease duration of stale-lease slack
//!    (checked in-run by the fleet's power tracker);
//! 2. **Epoch fencing** — no two coordinators ever grant in the same
//!    epoch (checked in-run per grant);
//! 3. **Replay** — the identical [`FleetSpec`] reproduces a
//!    bit-identical merged journal;
//! 4. **Fail-safe convergence** — every run terminates with all
//!    queries served and no node sprinting without a live lease
//!    (checked in-run by the health sampler and at node completion).
//!
//! Each scenario additionally asserts the precise failure signature
//! its fault must produce — a crash must force an election, a
//! split-brain must fence the deposed primary and lapse the stranded
//! side's leases, a renewal storm must visibly drop and retry — so a
//! scenario that silently stops injecting cannot pass.

use faults::FaultCounters;
use fleet::{run_fleet_journaled, CoordinatorCrash, FleetPartition, FleetResult, FleetSpec};
use simcore::SprintError;

use crate::Violation;

/// Nodes per scenario fleet: small enough to sweep tens of seeds
/// quickly, large enough that the shared budget (3 sprinters for 8
/// T2.small nodes) is genuinely contended.
const FLEET_NODES: u32 = 8;

/// Outcome of one fleet scenario across all its seeds.
#[derive(Debug, Clone)]
pub struct FleetScenarioReport {
    /// Scenario name (doubles as the violation case label).
    pub name: &'static str,
    /// Root seeds swept.
    pub seeds: u64,
    /// Nodes per fleet.
    pub nodes: u32,
    /// Lease grants across all seeds.
    pub grants: u64,
    /// Lease renewals across all seeds.
    pub renewals: u64,
    /// Lease expiries (each one a fail-safe unsprint window).
    pub expiries: u64,
    /// Coordinator elections across all seeds.
    pub elections: u64,
    /// Primary step-downs (self-fencing on peer-ack starvation).
    pub step_downs: u64,
    /// Sprints force-stopped by lease lapses.
    pub forced_unsprints: u64,
    /// Message-fault counters merged across all seeds.
    pub counters: FaultCounters,
    /// Failed assertions (empty = scenario behaved exactly as modeled).
    pub violations: Vec<Violation>,
}

/// Decorrelated per-run root seed for seed index `s` of a scenario.
fn scenario_seed(base: u64, s: u64) -> u64 {
    base.wrapping_add(s.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs one seeded fleet twice, copying in-run invariant violations
/// (bounded power, epoch fencing, fail-safe, conservation) and adding
/// the replay and convergence checks the runtime cannot self-verify.
fn run_seed_checked(
    name: &'static str,
    s: u64,
    spec: &FleetSpec,
    out: &mut Vec<Violation>,
) -> Result<FleetResult, SprintError> {
    let case = format!("{name}/seed{s}");
    let (run, journal) = run_fleet_journaled(spec)?;
    for v in &run.violations {
        out.push(Violation {
            case: case.clone(),
            invariant: v.invariant,
            details: v.details.clone(),
        });
    }
    let (_, rejournal) = run_fleet_journaled(spec)?;
    if let Some(divergence) = journal.diff(&rejournal) {
        out.push(Violation {
            case: case.clone(),
            invariant: "fleet-replay",
            details: format!(
                "identical FleetSpec produced diverging journals: {}",
                divergence.render(&journal, 2)
            ),
        });
    }
    if run.served != u64::from(spec.queries_total) {
        out.push(Violation {
            case,
            invariant: "fleet-converged",
            details: format!(
                "fleet finished with {} of {} queries served",
                run.served, spec.queries_total
            ),
        });
    }
    Ok(run)
}

/// Folds one run's observables into the scenario report.
fn accumulate(report: &mut FleetScenarioReport, run: &FleetResult) {
    report.grants += run.stats.grants;
    report.renewals += run.stats.renewals;
    report.expiries += run.stats.expiries;
    report.elections += run.stats.elections;
    report.step_downs += run.stats.step_downs;
    report.forced_unsprints += run.forced_unsprints;
    report.counters = report.counters.merged(&run.counters);
}

fn empty_report(name: &'static str, seeds: u64) -> FleetScenarioReport {
    FleetScenarioReport {
        name,
        seeds,
        nodes: FLEET_NODES,
        grants: 0,
        renewals: 0,
        expiries: 0,
        elections: 0,
        step_downs: 0,
        forced_unsprints: 0,
        counters: FaultCounters::default(),
        violations: Vec::new(),
    }
}

/// The initial primary crashes at 90s — mid first lease wave, with
/// leases granted and sprints running — and never comes back. The
/// standby must take over by heartbeat timeout, every seed, and the
/// epoch must advance past the crashed primary's term so stale grants
/// stay fenced.
fn coordinator_crash_mid_sprint_wave(seeds: u64) -> Result<FleetScenarioReport, SprintError> {
    let name = "fleet-coordinator-crash";
    let mut report = empty_report(name, seeds);
    for s in 0..seeds {
        let mut spec = FleetSpec::small(scenario_seed(0xF1E7_C4A5, s), FLEET_NODES)?;
        spec.faults.coordinator_crashes.push(CoordinatorCrash {
            coordinator: 0,
            at_secs: 90.0,
            repair_secs: 0.0,
        });
        let run = run_seed_checked(name, s, &spec, &mut report.violations)?;
        if run.stats.elections == 0 {
            report.violations.push(Violation {
                case: format!("{name}/seed{s}"),
                invariant: "failover-happened",
                details: "the standby never took over from the crashed primary".to_string(),
            });
        }
        if run.stats.max_epoch <= u64::from(spec.coordinators) {
            report.violations.push(Violation {
                case: format!("{name}/seed{s}"),
                invariant: "epoch-advanced",
                details: format!(
                    "failover must move past the initial term: max epoch {}",
                    run.stats.max_epoch
                ),
            });
        }
        accumulate(&mut report, &run);
    }
    if report.grants == 0 {
        report.violations.push(Violation {
            case: name.to_string(),
            invariant: "fault-fired",
            details: "no leases were ever granted, so the crash perturbed nothing".to_string(),
        });
    }
    Ok(report)
}

/// A 150-second split-brain: the primary plus half the nodes on side
/// A, the standby plus the rest on side B. The deposed primary must
/// fence itself (step down on peer-ack starvation) before the standby's
/// election lands, side A's leases must lapse while stranded, and both
/// sides must re-admit after the heal — all without a single
/// epoch-overlap or power-overrun violation.
fn split_brain_partition(seeds: u64) -> Result<FleetScenarioReport, SprintError> {
    let name = "fleet-split-brain";
    let mut report = empty_report(name, seeds);
    for s in 0..seeds {
        let mut spec = FleetSpec::small(scenario_seed(0x5B11_B4A1, s), FLEET_NODES)?;
        spec.faults.partitions.push(FleetPartition {
            coords_a: vec![0],
            nodes_a_lo: 0,
            nodes_a_hi: FLEET_NODES / 2,
            start_secs: 80.0,
            duration_secs: 150.0,
        });
        let run = run_seed_checked(name, s, &spec, &mut report.violations)?;
        let case = || format!("{name}/seed{s}");
        if run.counters.partition_drops == 0 {
            report.violations.push(Violation {
                case: case(),
                invariant: "fault-fired",
                details: "a 150s fleet partition cut no messages".to_string(),
            });
        }
        if run.stats.step_downs == 0 {
            report.violations.push(Violation {
                case: case(),
                invariant: "primary-fenced",
                details: "the isolated primary never stepped down on ack starvation".to_string(),
            });
        }
        if run.stats.elections == 0 {
            report.violations.push(Violation {
                case: case(),
                invariant: "failover-happened",
                details: "side B never elected a primary across the partition".to_string(),
            });
        }
        accumulate(&mut report, &run);
    }
    // Aggregate, not per-seed: with a budget of 1 the sole lease-holder
    // can sit on side B and renew straight through via the newly
    // elected side-B primary, so an individual seed may lapse nothing.
    if report.expiries == 0 {
        report.violations.push(Violation {
            case: name.to_string(),
            invariant: "stranded-leases-lapse",
            details: "no lease ever lapsed across a partition longer than a lease".to_string(),
        });
    }
    Ok(report)
}

/// A lossy control plane under full load: half of all lease traffic
/// dropped, a fifth duplicated, a third delayed. Renewals fail often
/// enough that leases visibly lapse and retry storms hammer the
/// coordinators — and the budget bound must hold anyway, because
/// fail-safe expiry does not depend on any message arriving.
fn lease_renewal_storm(seeds: u64) -> Result<FleetScenarioReport, SprintError> {
    let name = "fleet-renewal-storm";
    let mut report = empty_report(name, seeds);
    for s in 0..seeds {
        let mut spec = FleetSpec::small(scenario_seed(0x5702_1233, s), FLEET_NODES)?;
        spec.faults.messages.drop_prob = 0.5;
        spec.faults.messages.dup_prob = 0.2;
        spec.faults.messages.delay_prob = 0.3;
        spec.faults.messages.delay_secs = 2.0;
        let run = run_seed_checked(name, s, &spec, &mut report.violations)?;
        let case = || format!("{name}/seed{s}");
        if run.counters.msgs_dropped == 0 {
            report.violations.push(Violation {
                case: case(),
                invariant: "fault-fired",
                details: "drop_prob=0.5 dropped no control messages".to_string(),
            });
        }
        if run.stats.retries == 0 {
            report.violations.push(Violation {
                case: case(),
                invariant: "retries-visible",
                details: "half the control plane lost, yet no RPC ever retried".to_string(),
            });
        }
        accumulate(&mut report, &run);
    }
    if report.expiries == 0 {
        report.violations.push(Violation {
            case: name.to_string(),
            invariant: "leases-lapse",
            details: "a 50% lossy control plane must lapse some leases".to_string(),
        });
    }
    if report.counters.msgs_duplicated == 0 || report.counters.msgs_delayed == 0 {
        report.violations.push(Violation {
            case: name.to_string(),
            invariant: "fault-fired",
            details: format!(
                "duplicate/delay classes never fired: {:?}",
                report.counters.message_classes()
            ),
        });
    }
    Ok(report)
}

/// Runs all fleet chaos scenarios, `seeds` root seeds each.
///
/// # Errors
///
/// Propagates the first validation or simulator error — a typed error
/// is a harness failure, not a scenario verdict.
pub fn run_fleet_scenarios(seeds: u64) -> Result<Vec<FleetScenarioReport>, SprintError> {
    SprintError::require_nonzero("run_fleet_scenarios::seeds", seeds as usize)?;
    Ok(vec![
        coordinator_crash_mid_sprint_wave(seeds)?,
        split_brain_partition(seeds)?,
        lease_renewal_storm(seeds)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fleet_scenarios_hold_on_a_few_seeds() {
        for report in run_fleet_scenarios(3).unwrap() {
            assert!(
                report.violations.is_empty(),
                "{}: {:?}",
                report.name,
                report.violations
            );
            assert!(report.grants > 0, "{}", report.name);
        }
    }

    #[test]
    fn scenario_signatures_are_distinct() {
        let reports = run_fleet_scenarios(2).unwrap();
        let crash = &reports[0];
        let split = &reports[1];
        let storm = &reports[2];
        assert!(crash.elections > 0);
        assert_eq!(
            crash.counters.messages_total(),
            0,
            "crash plan is loss-free"
        );
        assert!(split.counters.partition_drops > 0);
        assert!(split.step_downs > 0);
        assert!(storm.counters.msgs_dropped > 0);
        assert!(storm.expiries > 0);
    }

    /// The acceptance bar: every fleet scenario invariant-clean across
    /// 32 root seeds. Slow in debug builds, so opt-in:
    /// `cargo test -p chaos --release -- --ignored fleet_scenarios_hold_at_32_seeds`.
    #[test]
    #[ignore = "32-seed acceptance sweep; run explicitly in release"]
    fn fleet_scenarios_hold_at_32_seeds() {
        for report in run_fleet_scenarios(32).unwrap() {
            assert!(
                report.violations.is_empty(),
                "{}: {} violation(s), first: {:?}",
                report.name,
                report.violations.len(),
                report.violations.first()
            );
        }
    }

    #[test]
    fn fleet_scenarios_are_deterministic() {
        let a = run_fleet_scenarios(2).unwrap();
        let b = run_fleet_scenarios(2).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.grants, y.grants);
            assert_eq!(x.counters, y.counters);
            assert_eq!(x.violations.len(), y.violations.len());
        }
    }
}
