//! Randomized-but-seeded fault-plan generation.

use faults::{FaultPlan, StormWindow};
use simcore::rng::SimRng;

/// Generates a randomized [`FaultPlan`] from a seed.
///
/// The same `(seed, slots, horizon_secs)` triple always yields the same
/// plan, and every generated plan passes [`FaultPlan::validate`]: storm
/// windows are drawn from disjoint thirds of the horizon so they can
/// never overlap, and probabilities stay inside `[0, 1]`.
///
/// Every plan arms the flaky-slot fault (the one quarantine decisively
/// repairs) plus a random subset of the other fault classes at moderate
/// intensities, so sweeps exercise both single-fault and compound-fault
/// recovery paths.
pub fn random_plan(seed: u64, slots: usize, horizon_secs: f64) -> FaultPlan {
    let mut rng = SimRng::new(seed).split(0xFA17);
    let mut plan = FaultPlan {
        seed: rng.next_u64(),
        bad_slot: Some(rng.index(slots.max(1))),
        bad_slot_crash_prob: rng.uniform(0.5, 0.9),
        max_retries: 1 + rng.index(3) as u32,
        ..FaultPlan::default()
    };
    // Unsupervised crashes wait on out-of-band repair for a meaningful
    // slice of the run; the supervisor's backoff/quarantine ladder is
    // what removes this cost.
    plan.crash_repair_secs = rng.uniform(0.03, 0.10) * horizon_secs;
    if rng.chance(0.5) {
        plan.engage_failure_prob = rng.uniform(0.05, 0.3);
    }
    if rng.chance(0.5) {
        plan.stuck_sprint_prob = rng.uniform(0.05, 0.3);
    }
    if rng.chance(0.4) {
        plan.budget_drift_secs = rng.uniform(-30.0, 30.0);
    }
    if rng.chance(0.3) {
        plan.crash_prob = rng.uniform(0.01, 0.05);
    }
    // Up to two storms, each confined to its own third of the horizon
    // (disjoint by construction, as FaultPlan::validate requires).
    for third in 1..3 {
        if rng.chance(0.4) {
            let lo = horizon_secs * third as f64 / 3.0;
            let span = horizon_secs / 3.0;
            let start = lo + rng.uniform(0.0, span * 0.3);
            plan.storms.push(StormWindow {
                start_secs: start,
                duration_secs: rng.uniform(span * 0.2, span * 0.6),
                multiplier: rng.uniform(1.5, 3.0),
            });
        }
    }
    if rng.chance(0.3) {
        plan.thermal_period_secs = rng.uniform(horizon_secs / 8.0, horizon_secs / 3.0);
        plan.thermal_lockout_secs = rng.uniform(5.0, 30.0);
    }
    // Mild control-plane message faults: delays stay under the sweep's
    // 2 s stuck-sprint slack (a late ForceUnsprint extends a sprint by
    // at most the delay), and duplicate echoes are idempotent, so the
    // recovery invariants must still hold. Drops and partitions are
    // *not* armed here — a lost unsprint command legitimately breaches
    // the watchdog bound, which is exactly what the dedicated
    // message-fault scenarios assert instead.
    if rng.chance(0.4) {
        plan.messages.delay_prob = rng.uniform(0.1, 0.4);
        plan.messages.delay_secs = rng.uniform(0.3, 1.5);
        if rng.chance(0.5) {
            plan.messages.dup_prob = rng.uniform(0.05, 0.2);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_always_validate() {
        for seed in 0..500 {
            let plan = random_plan(seed, 2, 10_000.0);
            plan.validate()
                .unwrap_or_else(|e| panic!("seed {seed} built an invalid plan: {e}"));
            assert!(!plan.is_noop(), "seed {seed}: plans always arm a fault");
            assert!(plan.bad_slot.is_some());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_plan(42, 2, 5_000.0), random_plan(42, 2, 5_000.0));
        assert_ne!(random_plan(42, 2, 5_000.0), random_plan(43, 2, 5_000.0));
    }

    #[test]
    fn message_faults_stay_inside_the_watchdog_slack() {
        let mut armed = 0;
        for seed in 0..200 {
            let plan = random_plan(seed, 2, 9_000.0);
            assert_eq!(plan.messages.drop_prob, 0.0, "sweep plans never drop");
            assert!(plan.messages.partitions.is_empty(), "never partition");
            assert!(plan.messages.delay_secs <= 1.5 + 1e-9);
            if plan.messages.delay_prob > 0.0 {
                armed += 1;
            }
        }
        assert!(armed > 20, "delays should arm regularly, got {armed}");
    }

    #[test]
    fn storms_land_inside_the_back_two_thirds() {
        for seed in 0..200 {
            let plan = random_plan(seed, 2, 9_000.0);
            for w in &plan.storms {
                assert!(w.start_secs >= 3_000.0 - 1e-9);
                assert!(w.start_secs + w.duration_secs <= 9_000.0 + 1e-9);
            }
        }
    }
}
