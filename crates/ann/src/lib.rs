//! Artificial neural network baseline (Table 1A's *ANN* approach).
//!
//! The paper's comparison model is a multi-layer artificial network
//! (10 hidden layers × 100 neurons) that maps sprinting policies and
//! workload conditions *directly* to response time. Because response
//! time is discontinuous in policy parameters, the ANN needs 6–54X more
//! training data than the hybrid approach to reach comparable accuracy
//! (§3.1) — a result this reproduction confirms.
//!
//! Implementation: fully-connected MLP with ReLU hidden activations and
//! a linear output, trained with Adam on mean-squared error over
//! z-score-normalized features and targets.

pub mod mlp;

pub use mlp::{AnnConfig, Mlp};
