//! Multi-layer perceptron with Adam training.

use mlcore::{Dataset, Normalizer};
use simcore::SimRng;

/// MLP architecture and training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnConfig {
    /// Hidden layer widths, in order.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed for initialization and batch shuffling.
    pub seed: u64,
}

impl Default for AnnConfig {
    /// A compact architecture that trains reliably on profiling-sized
    /// datasets; see [`AnnConfig::paper`] for the paper's exact shape.
    fn default() -> Self {
        AnnConfig {
            hidden: vec![64, 64, 64],
            learning_rate: 3e-3,
            epochs: 400,
            batch_size: 32,
            seed: 0xA11,
        }
    }
}

impl AnnConfig {
    /// The paper's architecture: 10 hidden layers of 100 neurons
    /// (Table 1A).
    pub fn paper() -> AnnConfig {
        AnnConfig {
            hidden: vec![100; 10],
            epochs: 600,
            learning_rate: 1e-3,
            ..AnnConfig::default()
        }
    }
}

/// One dense layer.
#[derive(Debug, Clone)]
struct Layer {
    /// Row-major `out × in` weight matrix.
    w: Vec<f64>,
    b: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut SimRng) -> Layer {
        // He initialization for ReLU stacks.
        let scale = (2.0 / inputs as f64).sqrt();
        let w = (0..inputs * outputs)
            .map(|_| scale * rng.normal())
            .collect();
        Layer {
            w,
            b: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
            let z: f64 = row.iter().zip(x).map(|(&w, &xi)| w * xi).sum::<f64>() + self.b[o];
            out.push(z);
        }
    }
}

/// Adam state for one parameter tensor.
#[derive(Debug, Clone, Default)]
struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    fn new(n: usize) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            params[i] -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

/// A trained MLP regressor (features → scalar target).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    normalizer: Normalizer,
    num_features: usize,
}

impl Mlp {
    /// Trains on `data` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or the config has no epochs/batches.
    pub fn train(data: &Dataset, cfg: &AnnConfig) -> Mlp {
        assert!(!data.is_empty(), "cannot train on empty data");
        assert!(cfg.epochs > 0 && cfg.batch_size > 0, "degenerate config");
        let normalizer = Normalizer::fit(data);
        let rows: Vec<Vec<f64>> = (0..data.len())
            .map(|i| normalizer.transform(data.row(i)))
            .collect();
        let targets: Vec<f64> = (0..data.len())
            .map(|i| normalizer.transform_target(data.target(i)))
            .collect();

        let mut rng = SimRng::new(cfg.seed);
        let mut sizes = vec![data.num_features()];
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(1);
        let mut layers: Vec<Layer> = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        let mut adam_w: Vec<Adam> = layers.iter().map(|l| Adam::new(l.w.len())).collect();
        let mut adam_b: Vec<Adam> = layers.iter().map(|l| Adam::new(l.b.len())).collect();

        let n = rows.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0;
        for _epoch in 0..cfg.epochs {
            // Shuffle example order each epoch.
            rng.shuffle(&mut order);
            for batch in order.chunks(cfg.batch_size) {
                t += 1;
                let (gw, gb) = batch_gradients(&layers, &rows, &targets, batch);
                for (l, layer) in layers.iter_mut().enumerate() {
                    adam_w[l].step(&mut layer.w, &gw[l], cfg.learning_rate, t);
                    adam_b[l].step(&mut layer.b, &gb[l], cfg.learning_rate, t);
                }
            }
        }
        Mlp {
            layers,
            normalizer,
            num_features: data.num_features(),
        }
    }

    /// Predicts the target for one raw (unnormalized) feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the training data.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.num_features, "row width mismatch");
        let mut x = self.normalizer.transform(row);
        let mut buf = Vec::new();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(&x, &mut buf);
            if i < last {
                for z in &mut buf {
                    *z = z.max(0.0); // ReLU.
                }
            }
            std::mem::swap(&mut x, &mut buf);
        }
        self.normalizer.inverse_target(x[0])
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }
}

/// Mean gradients over a mini-batch (weights and biases per layer).
fn batch_gradients(
    layers: &[Layer],
    rows: &[Vec<f64>],
    targets: &[f64],
    batch: &[usize],
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
    let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
    let last = layers.len() - 1;
    for &i in batch {
        // Forward pass, caching pre-activations and activations.
        let mut acts: Vec<Vec<f64>> = vec![rows[i].clone()];
        let mut pre: Vec<Vec<f64>> = Vec::with_capacity(layers.len());
        for (l, layer) in layers.iter().enumerate() {
            let mut z = Vec::new();
            layer.forward(acts.last().expect("input present"), &mut z);
            pre.push(z.clone());
            if l < last {
                for v in &mut z {
                    *v = v.max(0.0);
                }
            }
            acts.push(z);
        }
        // Backward pass: d MSE/2 = (pred - y).
        let pred = acts.last().expect("output present")[0];
        let mut delta = vec![pred - targets[i]];
        for l in (0..layers.len()).rev() {
            let input = &acts[l];
            for (o, &d) in delta.iter().enumerate() {
                gb[l][o] += d;
                let row = &mut gw[l][o * layers[l].inputs..(o + 1) * layers[l].inputs];
                for (g, &xi) in row.iter_mut().zip(input) {
                    *g += d * xi;
                }
            }
            if l > 0 {
                // Propagate through weights and the previous ReLU.
                let mut next = vec![0.0; layers[l].inputs];
                for (o, &d) in delta.iter().enumerate() {
                    let row = &layers[l].w[o * layers[l].inputs..(o + 1) * layers[l].inputs];
                    for (nx, &w) in next.iter_mut().zip(row) {
                        *nx += d * w;
                    }
                }
                for (nx, &z) in next.iter_mut().zip(&pre[l - 1]) {
                    if z <= 0.0 {
                        *nx = 0.0;
                    }
                }
                delta = next;
            }
        }
    }
    let scale = 1.0 / batch.len() as f64;
    for g in gw.iter_mut().flat_map(|v| v.iter_mut()) {
        *g *= scale;
    }
    for g in gb.iter_mut().flat_map(|v| v.iter_mut()) {
        *g *= scale;
    }
    (gw, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x1", "x2"]);
        for i in 0..n {
            let a = (i % 17) as f64 / 4.0;
            let b = ((i * 5) % 13) as f64 / 3.0;
            d.push(vec![a, b], 3.0 * a - 2.0 * b + 1.0);
        }
        d
    }

    #[test]
    fn learns_linear_function() {
        let d = linear_dataset(200);
        let cfg = AnnConfig {
            hidden: vec![16],
            epochs: 300,
            ..AnnConfig::default()
        };
        let m = Mlp::train(&d, &cfg);
        let p = m.predict(&[2.0, 1.0]);
        assert!((p - 5.0).abs() < 0.5, "prediction {p}");
    }

    #[test]
    fn learns_nonlinear_function() {
        let mut d = Dataset::new(vec!["x"]);
        for i in 0..300 {
            let x = i as f64 / 50.0 - 3.0;
            d.push(vec![x], x * x);
        }
        let cfg = AnnConfig {
            hidden: vec![32, 32],
            epochs: 600,
            ..AnnConfig::default()
        };
        let m = Mlp::train(&d, &cfg);
        for (x, y) in [(0.0, 0.0), (2.0, 4.0), (-2.0, 4.0)] {
            let p = m.predict(&[x]);
            assert!((p - y).abs() < 0.7, "f({x}) = {p}, want {y}");
        }
    }

    #[test]
    fn deterministic_training() {
        let d = linear_dataset(100);
        let cfg = AnnConfig {
            hidden: vec![8],
            epochs: 50,
            ..AnnConfig::default()
        };
        let a = Mlp::train(&d, &cfg);
        let b = Mlp::train(&d, &cfg);
        assert_eq!(a.predict(&[1.0, 1.0]), b.predict(&[1.0, 1.0]));
    }

    #[test]
    fn deep_paper_architecture_trains() {
        // The paper's 10 × 100 stack must at least fit the training
        // data roughly (it is over-parameterized for this toy set).
        let d = linear_dataset(100);
        let mut cfg = AnnConfig::paper();
        cfg.epochs = 60;
        let m = Mlp::train(&d, &cfg);
        assert!(m.num_params() > 90_000);
        let p = m.predict(&[2.0, 1.0]);
        assert!((p - 5.0).abs() < 2.0, "deep prediction {p}");
    }

    #[test]
    fn num_params_counts_all_layers() {
        let d = linear_dataset(20);
        let cfg = AnnConfig {
            hidden: vec![4],
            epochs: 1,
            ..AnnConfig::default()
        };
        let m = Mlp::train(&d, &cfg);
        // 2*4 + 4 weights+biases, then 4*1 + 1.
        assert_eq!(m.num_params(), (2 * 4 + 4) + (4 + 1));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn predict_rejects_wrong_width() {
        let d = linear_dataset(20);
        let cfg = AnnConfig {
            hidden: vec![4],
            epochs: 1,
            ..AnnConfig::default()
        };
        let m = Mlp::train(&d, &cfg);
        let _ = m.predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn train_rejects_empty() {
        let d = Dataset::new(vec!["x"]);
        let _ = Mlp::train(&d, &AnnConfig::default());
    }
}
