//! Machine-learning plumbing shared by the forest and ANN models.
//!
//! The modeling pipeline (§2.3–2.4, §3) needs tabular datasets over
//! workload conditions and sprinting policies, seeded train/test
//! splits, feature normalization and regression error metrics. This
//! crate provides those pieces without any model-specific logic; the
//! learners live in the `forest` and `ann` crates.

pub mod dataset;
pub mod metrics;

pub use dataset::{Dataset, Normalizer};
pub use metrics::{error_quantile, mean_abs_error, median_abs_relative_error, rmse};
