//! Regression error metrics used throughout the evaluation (§3).

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mean_abs_error(predicted: &[f64], observed: &[f64]) -> f64 {
    check(predicted, observed);
    predicted
        .iter()
        .zip(observed)
        .map(|(&p, &o)| (p - o).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Root-mean-square error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(predicted: &[f64], observed: &[f64]) -> f64 {
    check(predicted, observed);
    (predicted
        .iter()
        .zip(observed)
        .map(|(&p, &o)| (p - o) * (p - o))
        .sum::<f64>()
        / predicted.len() as f64)
        .sqrt()
}

/// Absolute relative errors `|p - o| / o` per example.
///
/// # Panics
///
/// Panics if any observation is zero.
pub fn abs_relative_errors(predicted: &[f64], observed: &[f64]) -> Vec<f64> {
    check(predicted, observed);
    predicted
        .iter()
        .zip(observed)
        .map(|(&p, &o)| {
            assert!(o != 0.0, "relative error undefined at observed = 0");
            (p - o).abs() / o.abs()
        })
        .collect()
}

/// The paper's headline metric: median absolute relative error.
///
/// # Panics
///
/// Panics if inputs are empty/mismatched or any observation is zero.
pub fn median_abs_relative_error(predicted: &[f64], observed: &[f64]) -> f64 {
    error_quantile(predicted, observed, 0.5)
}

/// A quantile of the absolute relative error distribution.
///
/// # Panics
///
/// Panics if inputs are empty/mismatched, `q` is out of `[0, 1]`, or
/// any observation is zero.
pub fn error_quantile(predicted: &[f64], observed: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    let mut errs = abs_relative_errors(predicted, observed);
    errs.sort_by(f64::total_cmp);
    let n = errs.len();
    if n == 1 {
        return errs[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    errs[lo] * (1.0 - frac) + errs[hi] * frac
}

fn check(predicted: &[f64], observed: &[f64]) {
    assert_eq!(predicted.len(), observed.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty prediction set");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_rmse_basic() {
        let p = [1.0, 2.0, 3.0];
        let o = [2.0, 2.0, 1.0];
        assert!((mean_abs_error(&p, &o) - 1.0).abs() < 1e-12);
        let expected_rmse = ((1.0 + 0.0 + 4.0) / 3.0f64).sqrt();
        assert!((rmse(&p, &o) - expected_rmse).abs() < 1e-12);
    }

    #[test]
    fn median_relative_error() {
        let p = [110.0, 95.0, 130.0];
        let o = [100.0, 100.0, 100.0];
        assert!((median_abs_relative_error(&p, &o) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let p = [110.0, 120.0];
        let o = [100.0, 100.0];
        assert!((error_quantile(&p, &o, 0.0) - 0.10).abs() < 1e-12);
        assert!((error_quantile(&p, &o, 1.0) - 0.20).abs() < 1e-12);
        assert!((error_quantile(&p, &o, 0.5) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_zero_error() {
        let o = [5.0, 6.0];
        assert_eq!(median_abs_relative_error(&o, &o), 0.0);
        assert_eq!(rmse(&o, &o), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mean_abs_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "observed = 0")]
    fn zero_observed_panics() {
        let _ = median_abs_relative_error(&[1.0], &[0.0]);
    }
}
