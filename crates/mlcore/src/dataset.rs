//! Tabular regression datasets.

use simcore::SimRng;

/// A dense tabular dataset: rows of features plus one regression
/// target per row.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature columns.
    ///
    /// # Panics
    ///
    /// Panics if `feature_names` is empty or has duplicates.
    pub fn new<S: Into<String>>(feature_names: Vec<S>) -> Dataset {
        let names: Vec<String> = feature_names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "dataset needs at least one feature");
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate feature names");
        Dataset {
            feature_names: names,
            rows: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Appends one example.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the feature count or any
    /// value is not finite.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "row width mismatch"
        );
        assert!(
            features.iter().all(|x| x.is_finite()) && target.is_finite(),
            "non-finite value in example"
        );
        self.rows.push(features);
        self.targets.push(target);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Feature column names in order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Index of a named feature column.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Target of example `i`.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Splits into `(train, test)` with `train_frac` of examples in the
    /// training set, shuffled deterministically by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is outside `(0, 1]`.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_frac > 0.0 && train_frac <= 1.0,
            "train fraction {train_frac} out of (0, 1]"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand_pcg_like(seed);
        // Fisher–Yates.
        for i in (1..idx.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            idx.swap(i, j);
        }
        let n_train = ((self.len() as f64 * train_frac).round() as usize).min(self.len());
        let mut train = Dataset::new(self.feature_names.clone());
        let mut test = Dataset::new(self.feature_names.clone());
        for (k, &i) in idx.iter().enumerate() {
            let dst = if k < n_train { &mut train } else { &mut test };
            dst.push(self.rows[i].clone(), self.targets[i]);
        }
        (train, test)
    }

    /// Bootstrap sample of `n` examples drawn with replacement.
    pub fn bootstrap(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = rand_pcg_like(seed);
        let mut out = Dataset::new(self.feature_names.clone());
        if self.is_empty() {
            return out;
        }
        for _ in 0..n {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            out.push(self.rows[i].clone(), self.targets[i]);
        }
        out
    }

    /// Keeps only the first `n` examples (e.g. to study training-set
    /// size effects, §3.1).
    pub fn truncated(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            feature_names: self.feature_names.clone(),
            rows: self.rows[..n].to_vec(),
            targets: self.targets[..n].to_vec(),
        }
    }

    /// Splits into `k` shuffled folds for cross-validation; returns
    /// `(train, validation)` pairs, one per fold. Fold sizes differ by
    /// at most one example.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k` exceeds the number of examples.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "need at least two folds");
        assert!(k <= self.len(), "more folds than examples");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand_pcg_like(seed);
        for i in (1..idx.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            idx.swap(i, j);
        }
        (0..k)
            .map(|fold| {
                let mut train = Dataset::new(self.feature_names.clone());
                let mut val = Dataset::new(self.feature_names.clone());
                for (pos, &i) in idx.iter().enumerate() {
                    let dst = if pos % k == fold {
                        &mut val
                    } else {
                        &mut train
                    };
                    dst.push(self.rows[i].clone(), self.targets[i]);
                }
                (train, val)
            })
            .collect()
    }
}

fn rand_pcg_like(seed: u64) -> SimRng {
    SimRng::new(seed)
}

/// Per-column z-score normalizer fit on a training set.
#[derive(Debug, Clone)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
    target_mean: f64,
    target_std: f64,
}

impl Normalizer {
    /// Fits means and standard deviations on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset) -> Normalizer {
        assert!(!data.is_empty(), "cannot fit normalizer on empty data");
        let d = data.num_features();
        let n = data.len() as f64;
        let mut means = vec![0.0; d];
        for i in 0..data.len() {
            for (m, &x) in means.iter_mut().zip(data.row(i)) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for i in 0..data.len() {
            for ((s, &m), &x) in stds.iter_mut().zip(&means).zip(data.row(i)) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt().max(1e-12);
        }
        let target_mean = data.targets().iter().sum::<f64>() / n;
        let target_var = data
            .targets()
            .iter()
            .map(|&t| (t - target_mean) * (t - target_mean))
            .sum::<f64>()
            / n;
        Normalizer {
            means,
            stds,
            target_mean,
            target_std: target_var.sqrt().max(1e-12),
        }
    }

    /// Normalizes one feature row.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect()
    }

    /// Normalizes a target value.
    pub fn transform_target(&self, t: f64) -> f64 {
        (t - self.target_mean) / self.target_std
    }

    /// Maps a normalized prediction back to target units.
    pub fn inverse_target(&self, z: f64) -> f64 {
        z * self.target_std + self.target_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a", "b"]);
        for i in 0..10 {
            let x = i as f64;
            d.push(vec![x, 2.0 * x], 3.0 * x + 1.0);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.row(3), &[3.0, 6.0]);
        assert_eq!(d.target(3), 10.0);
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("z"), None);
    }

    #[test]
    fn split_partitions_all_examples() {
        let d = toy();
        let (train, test) = d.split(0.8, 42);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        let mut all: Vec<f64> = train
            .targets()
            .iter()
            .chain(test.targets())
            .cloned()
            .collect();
        all.sort_by(f64::total_cmp);
        let mut expect: Vec<f64> = d.targets().to_vec();
        expect.sort_by(f64::total_cmp);
        assert_eq!(all, expect);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy();
        let (a, _) = d.split(0.5, 7);
        let (b, _) = d.split(0.5, 7);
        assert_eq!(a.targets(), b.targets());
        let (c, _) = d.split(0.5, 8);
        assert_ne!(a.targets(), c.targets());
    }

    #[test]
    fn bootstrap_draws_existing_rows() {
        let d = toy();
        let b = d.bootstrap(30, 3);
        assert_eq!(b.len(), 30);
        for i in 0..b.len() {
            let t = b.target(i);
            assert!(d.targets().contains(&t));
        }
    }

    #[test]
    fn truncated_keeps_prefix() {
        let d = toy();
        let t = d.truncated(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.target(3), 10.0);
        assert_eq!(d.truncated(100).len(), 10);
    }

    #[test]
    fn normalizer_round_trips() {
        let d = toy();
        let n = Normalizer::fit(&d);
        let z = n.transform_target(d.target(5));
        assert!((n.inverse_target(z) - d.target(5)).abs() < 1e-9);
        // Normalized column means ~0.
        let mut mean0 = 0.0;
        for i in 0..d.len() {
            mean0 += n.transform(d.row(i))[0];
        }
        assert!((mean0 / d.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn k_folds_partition_exactly() {
        let d = toy();
        let folds = d.k_folds(3, 9);
        assert_eq!(folds.len(), 3);
        let mut seen: Vec<f64> = Vec::new();
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), d.len());
            seen.extend(val.targets());
        }
        // Every example appears in exactly one validation fold.
        seen.sort_by(f64::total_cmp);
        let mut expect: Vec<f64> = d.targets().to_vec();
        expect.sort_by(f64::total_cmp);
        assert_eq!(seen, expect);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn k_folds_rejects_single_fold() {
        let _ = toy().k_folds(1, 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut d = Dataset::new(vec!["a"]);
        d.push(vec![1.0, 2.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let mut d = Dataset::new(vec!["a"]);
        d.push(vec![f64::NAN], 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate feature")]
    fn duplicate_names_rejected() {
        let _ = Dataset::new(vec!["a", "a"]);
    }
}
