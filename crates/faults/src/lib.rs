//! Deterministic fault injection for the sprinting testbed.
//!
//! The paper's argument (§3) is that sprinting policies must survive
//! *runtime deviations*: mechanism toggles that fail or stick, budget
//! sensors that drift, execution slots that crash, load that spikes,
//! and thermal envelopes that force an emergency unsprint. This crate
//! provides a seedable, off-by-default [`FaultPlan`] describing those
//! failures plus a [`FaultInjector`] the testbed event loop consults at
//! its decision points.
//!
//! Two invariants make the subsystem safe to leave compiled in:
//!
//! 1. **Empty plan ⇒ no-op.** [`FaultPlan::default`] injects nothing
//!    and the injector draws no randomness, so a faultless run is
//!    bit-identical to a build without fault hooks.
//! 2. **Determinism.** All fault decisions come from a dedicated
//!    [`SimRng`] stream derived from [`FaultPlan::seed`], so the same
//!    `(config seed, fault plan)` pair replays the exact same run, and
//!    the server's own arrival/service streams are never perturbed.

#![deny(unreachable_pub)]

use reactor::{Delivery, NetworkEffect};
use simcore::error::SprintError;
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};

/// A control-plane actor in the testbed's reactor: an endpoint of the
/// simulated network that [`MessageFaults`] perturb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// The sprint controller (the queue manager's decision loop).
    Controller,
    /// The budget sensor reporting the reserve pool level.
    BudgetSensor,
    /// The watchdog that force-unsprints stuck mechanisms.
    Watchdog,
    /// The execution slots (addressed collectively).
    Slots,
}

impl Peer {
    /// Stable integer id used in telemetry events.
    pub fn index(self) -> u32 {
        match self {
            Peer::Controller => 0,
            Peer::BudgetSensor => 1,
            Peer::Watchdog => 2,
            Peer::Slots => 3,
        }
    }

    /// All control-plane peers.
    pub const ALL: [Peer; 4] = [
        Peer::Controller,
        Peer::BudgetSensor,
        Peer::Watchdog,
        Peer::Slots,
    ];

    /// Human-readable name for replay/debug output.
    pub fn name(self) -> &'static str {
        match self {
            Peer::Controller => "controller",
            Peer::BudgetSensor => "budget-sensor",
            Peer::Watchdog => "watchdog",
            Peer::Slots => "slots",
        }
    }

    /// Parses a [`Peer::name`] back to the peer, for replay tooling
    /// that round-trips fault plans through text.
    pub fn parse(name: &str) -> Option<Peer> {
        Peer::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }
}

/// A window during which *all* messages between two peers are dropped,
/// in both directions — the classic network partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPartition {
    /// One endpoint of the severed link.
    pub a: Peer,
    /// The other endpoint.
    pub b: Peer,
    /// Partition start, in simulated seconds.
    pub start_secs: f64,
    /// Partition length, in simulated seconds (half-open window).
    pub duration_secs: f64,
}

impl LinkPartition {
    /// Whether this partition severs the `from -> to` link at `now_secs`.
    fn cuts(&self, now_secs: f64, from: Peer, to: Peer) -> bool {
        let on_link = (self.a == from && self.b == to) || (self.a == to && self.b == from);
        on_link && now_secs >= self.start_secs && now_secs < self.start_secs + self.duration_secs
    }
}

/// Message-level faults on the control plane: per-message delay, drop
/// and duplication probabilities plus scheduled link partitions.
///
/// Reordering needs no knob of its own: delays are drawn independently
/// per message, so two delayed messages on the same link can overtake
/// each other.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageFaults {
    /// Per-message probability of an in-flight delay.
    pub delay_prob: f64,
    /// Maximum delay in seconds; each delayed message draws uniformly
    /// from `(0, delay_secs]`. Also bounds the duplicate echo latency.
    pub delay_secs: f64,
    /// Per-message probability of silent loss.
    pub drop_prob: f64,
    /// Per-message probability of duplication (delivered inline *and*
    /// echoed once after a random positive delay).
    pub dup_prob: f64,
    /// Scheduled link partitions (checked before any random fault, and
    /// without drawing randomness).
    pub partitions: Vec<LinkPartition>,
}

impl Default for MessageFaults {
    fn default() -> Self {
        MessageFaults {
            delay_prob: 0.0,
            delay_secs: 0.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            partitions: Vec::new(),
        }
    }
}

impl MessageFaults {
    /// Whether no message fault can ever fire.
    pub fn is_noop(&self) -> bool {
        self.delay_prob == 0.0
            && self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.partitions.is_empty()
    }

    /// Draws the fate of one message already known to be unpartitioned,
    /// counting whichever fault class fires into `counters`.
    ///
    /// This is the single source of truth for the per-class draw order
    /// (drop, then duplicate, then delay) shared by the testbed's
    /// [`FaultInjector`] and the fleet control plane: each draw happens
    /// only when its probability is non-zero, so a no-op plan consumes
    /// no randomness and perturbs nothing.
    pub fn draw_delivery(&self, rng: &mut SimRng, counters: &mut FaultCounters) -> Delivery {
        if self.drop_prob > 0.0 && rng.chance(self.drop_prob) {
            counters.msgs_dropped += 1;
            return Delivery::Dropped { partitioned: false };
        }
        if self.dup_prob > 0.0 && rng.chance(self.dup_prob) {
            counters.msgs_duplicated += 1;
            let extra = rng.uniform(0.0, self.delay_secs);
            return Delivery::Duplicated {
                // At least one microsecond so the echo is a distinct
                // event rather than a same-instant double delivery.
                extra_delay: SimDuration(((extra * 1e6) as u64).max(1)),
            };
        }
        if self.delay_prob > 0.0 && rng.chance(self.delay_prob) {
            counters.msgs_delayed += 1;
            let delay = rng.uniform(0.0, self.delay_secs);
            return Delivery::Delayed {
                delay: SimDuration(((delay * 1e6) as u64).max(1)),
            };
        }
        Delivery::Inline
    }

    /// Validates every field, returning the first violation.
    pub fn validate(&self) -> Result<(), SprintError> {
        for (name, p) in [
            ("messages.delay_prob", self.delay_prob),
            ("messages.drop_prob", self.drop_prob),
            ("messages.dup_prob", self.dup_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(SprintError::InvalidFaultPlan {
                    details: format!("{name} must be in [0, 1], got {p}"),
                });
            }
        }
        if !self.delay_secs.is_finite() || self.delay_secs < 0.0 {
            return Err(SprintError::InvalidFaultPlan {
                details: format!(
                    "messages.delay_secs must be finite and >= 0, got {}",
                    self.delay_secs
                ),
            });
        }
        if (self.delay_prob > 0.0 || self.dup_prob > 0.0) && self.delay_secs == 0.0 {
            return Err(SprintError::InvalidFaultPlan {
                details: "messages.delay_secs must be > 0 when delay_prob or dup_prob is set"
                    .to_string(),
            });
        }
        for (i, p) in self.partitions.iter().enumerate() {
            if p.a == p.b {
                return Err(SprintError::InvalidFaultPlan {
                    details: format!("partition {i}: endpoints must differ, got {:?}", p.a),
                });
            }
            if !p.start_secs.is_finite() || p.start_secs < 0.0 {
                return Err(SprintError::InvalidFaultPlan {
                    details: format!("partition {i}: start_secs must be finite and >= 0"),
                });
            }
            if !p.duration_secs.is_finite() || p.duration_secs <= 0.0 {
                return Err(SprintError::InvalidFaultPlan {
                    details: format!("partition {i}: duration_secs must be finite and > 0"),
                });
            }
        }
        Ok(())
    }
}

/// A window of time during which arrivals are compressed by a burst
/// multiplier — an injected load storm on top of whatever modulation
/// the arrival spec already carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormWindow {
    /// Window start, in simulated seconds.
    pub start_secs: f64,
    /// Window length, in simulated seconds.
    pub duration_secs: f64,
    /// Arrival-rate multiplier inside the window (e.g. `3.0` = 3X).
    pub multiplier: f64,
}

/// Declarative description of every fault the testbed can inject.
///
/// All fields default to "off"; construct with struct-update syntax:
///
/// ```
/// use faults::FaultPlan;
/// let plan = FaultPlan {
///     seed: 7,
///     engage_failure_prob: 0.2,
///     ..FaultPlan::default()
/// };
/// assert!(!plan.is_noop());
/// assert!(FaultPlan::default().is_noop());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG streams.
    pub seed: u64,
    /// Probability that a sprint engage attempt fails (the DVFS/core
    /// toggle is issued but the platform stays at sustained speed).
    pub engage_failure_prob: f64,
    /// Probability that an *engaged* sprint sticks on: the mechanism
    /// cannot toggle back until the query completes (or a thermal
    /// emergency force-unsprints it).
    pub stuck_sprint_prob: f64,
    /// Additive budget-sensor drift in sprint-seconds: the queue
    /// manager *senses* `true_level + drift` (clamped at zero) while
    /// the real pool drains truthfully. Positive drift makes the
    /// server sprint blind past exhaustion; negative drift starves
    /// sprinting while budget is actually available.
    pub budget_drift_secs: f64,
    /// Per-dispatch probability that the execution slot crashes partway
    /// through the query, losing all progress.
    pub crash_prob: f64,
    /// A slot with correlated failures (flaky hardware): dispatches on
    /// this slot crash with [`bad_slot_crash_prob`] instead of
    /// [`crash_prob`]. `None` means every slot crashes uniformly.
    ///
    /// [`bad_slot_crash_prob`]: FaultPlan::bad_slot_crash_prob
    /// [`crash_prob`]: FaultPlan::crash_prob
    pub bad_slot: Option<usize>,
    /// Per-dispatch crash probability on the [`bad_slot`] — the fault a
    /// supervisor can actually repair by quarantining the slot.
    ///
    /// [`bad_slot`]: FaultPlan::bad_slot
    pub bad_slot_crash_prob: f64,
    /// Maximum number of crash-requeue retries per query; after the
    /// limit, the slot is considered quarantined-then-replaced and the
    /// query runs crash-free.
    pub max_retries: u32,
    /// How long a crashed slot stays down when *no supervisor* is
    /// attached, modeling out-of-band repair (an operator noticing and
    /// restarting the process). `0.0` keeps the legacy instant-restart
    /// behavior. Supervised runs ignore this: the supervisor's own
    /// backoff/quarantine ladder governs the slot instead.
    pub crash_repair_secs: f64,
    /// Arrival-burst windows multiplying the configured arrival rate.
    pub storms: Vec<StormWindow>,
    /// Period of injected thermal emergencies in seconds (`0.0` = off).
    /// At each emergency every sprinting slot is forced back to
    /// sustained speed and the budget drain stops.
    pub thermal_period_secs: f64,
    /// Engage lockout after a thermal emergency: sprint engage attempts
    /// within this many seconds of an emergency are refused.
    pub thermal_lockout_secs: f64,
    /// Message-level faults on the control plane (delay, drop,
    /// duplication, link partitions).
    pub messages: MessageFaults,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            engage_failure_prob: 0.0,
            stuck_sprint_prob: 0.0,
            budget_drift_secs: 0.0,
            crash_prob: 0.0,
            bad_slot: None,
            bad_slot_crash_prob: 0.0,
            max_retries: 1,
            crash_repair_secs: 0.0,
            storms: Vec::new(),
            thermal_period_secs: 0.0,
            thermal_lockout_secs: 0.0,
            messages: MessageFaults::default(),
        }
    }
}

impl FaultPlan {
    /// Whether this plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.engage_failure_prob == 0.0
            && self.stuck_sprint_prob == 0.0
            && self.budget_drift_secs == 0.0
            && self.crash_prob == 0.0
            && self.bad_slot_crash_prob == 0.0
            && self.storms.is_empty()
            && self.thermal_period_secs == 0.0
            && self.messages.is_noop()
    }

    /// Validates every field, returning the first violation.
    pub fn validate(&self) -> Result<(), SprintError> {
        for (name, p) in [
            ("engage_failure_prob", self.engage_failure_prob),
            ("stuck_sprint_prob", self.stuck_sprint_prob),
            ("crash_prob", self.crash_prob),
            ("bad_slot_crash_prob", self.bad_slot_crash_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(SprintError::InvalidFaultPlan {
                    details: format!("{name} must be in [0, 1], got {p}"),
                });
            }
        }
        if !self.crash_repair_secs.is_finite() || self.crash_repair_secs < 0.0 {
            return Err(SprintError::InvalidFaultPlan {
                details: format!(
                    "crash_repair_secs must be finite and >= 0, got {}",
                    self.crash_repair_secs
                ),
            });
        }
        if !self.budget_drift_secs.is_finite() {
            return Err(SprintError::InvalidFaultPlan {
                details: format!(
                    "budget_drift_secs must be finite, got {}",
                    self.budget_drift_secs
                ),
            });
        }
        for (i, w) in self.storms.iter().enumerate() {
            if !w.start_secs.is_finite() || w.start_secs < 0.0 {
                return Err(SprintError::InvalidFaultPlan {
                    details: format!("storm {i}: start_secs must be finite and >= 0"),
                });
            }
            if !w.duration_secs.is_finite() || w.duration_secs <= 0.0 {
                return Err(SprintError::InvalidFaultPlan {
                    details: format!("storm {i}: duration_secs must be finite and > 0"),
                });
            }
            if !w.multiplier.is_finite() || w.multiplier <= 0.0 {
                return Err(SprintError::InvalidFaultPlan {
                    details: format!("storm {i}: multiplier must be finite and > 0"),
                });
            }
        }
        // Overlapping windows would compound multiplicatively into an
        // ambiguous rate; require disjoint windows so a plan means the
        // same thing however the list is ordered.
        let mut spans: Vec<(f64, f64, usize)> = self
            .storms
            .iter()
            .enumerate()
            .map(|(i, w)| (w.start_secs, w.start_secs + w.duration_secs, i))
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in spans.windows(2) {
            let (_, prev_end, prev_i) = pair[0];
            let (start, _, i) = pair[1];
            if start < prev_end {
                return Err(SprintError::InvalidFaultPlan {
                    details: format!(
                        "storms {prev_i} and {i} overlap: window {i} starts at {start}s \
                         before window {prev_i} ends at {prev_end}s"
                    ),
                });
            }
        }
        if self.thermal_period_secs != 0.0
            && (!self.thermal_period_secs.is_finite() || self.thermal_period_secs <= 0.0)
        {
            return Err(SprintError::InvalidFaultPlan {
                details: format!(
                    "thermal_period_secs must be 0 (off) or finite and > 0, got {}",
                    self.thermal_period_secs
                ),
            });
        }
        if !self.thermal_lockout_secs.is_finite() || self.thermal_lockout_secs < 0.0 {
            return Err(SprintError::InvalidFaultPlan {
                details: format!(
                    "thermal_lockout_secs must be finite and >= 0, got {}",
                    self.thermal_lockout_secs
                ),
            });
        }
        self.messages.validate()?;
        Ok(())
    }
}

/// Per-fault occurrence counters reported in run metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Sprint engage attempts that failed (toggle fault).
    pub engage_failures: u64,
    /// Sprints that engaged but stuck on until completion/thermal.
    pub stuck_sprints: u64,
    /// Execution-slot crashes (each loses one in-flight query's work).
    pub slot_crashes: u64,
    /// Queries whose crash-retry budget was exhausted (ran crash-free
    /// afterwards on a replacement slot).
    pub retries_exhausted: u64,
    /// Sprinting executions force-unsprinted by thermal emergencies.
    pub thermal_unsprints: u64,
    /// Sprint engage attempts refused during a thermal lockout.
    pub lockout_refusals: u64,
    /// Arrivals whose inter-arrival gap was compressed by a storm.
    pub storm_arrivals: u64,
    /// Control messages delivered late.
    pub msgs_delayed: u64,
    /// Control messages lost to random drop.
    pub msgs_dropped: u64,
    /// Control messages duplicated (inline copy plus a delayed echo).
    pub msgs_duplicated: u64,
    /// Control messages eaten by a scheduled link partition.
    pub partition_drops: u64,
}

impl FaultCounters {
    /// Total injected fault events of any kind.
    pub fn total(&self) -> u64 {
        self.engage_failures
            + self.stuck_sprints
            + self.slot_crashes
            + self.retries_exhausted
            + self.thermal_unsprints
            + self.lockout_refusals
            + self.storm_arrivals
            + self.msgs_delayed
            + self.msgs_dropped
            + self.msgs_duplicated
            + self.partition_drops
    }

    /// Per-class message-fault counts with stable human labels, in the
    /// order the router checks them (partition, drop, dup, delay).
    /// Human reports iterate this instead of hand-picking fields so new
    /// message classes show up everywhere at once.
    pub fn message_classes(&self) -> [(&'static str, u64); 4] {
        [
            ("partitioned", self.partition_drops),
            ("dropped", self.msgs_dropped),
            ("duplicated", self.msgs_duplicated),
            ("delayed", self.msgs_delayed),
        ]
    }

    /// Total message-level faults across every class.
    pub fn messages_total(&self) -> u64 {
        self.msgs_delayed + self.msgs_dropped + self.msgs_duplicated + self.partition_drops
    }

    /// Field-wise sum, for aggregating counters across runs.
    #[must_use]
    pub fn merged(&self, other: &FaultCounters) -> FaultCounters {
        FaultCounters {
            engage_failures: self.engage_failures + other.engage_failures,
            stuck_sprints: self.stuck_sprints + other.stuck_sprints,
            slot_crashes: self.slot_crashes + other.slot_crashes,
            retries_exhausted: self.retries_exhausted + other.retries_exhausted,
            thermal_unsprints: self.thermal_unsprints + other.thermal_unsprints,
            lockout_refusals: self.lockout_refusals + other.lockout_refusals,
            storm_arrivals: self.storm_arrivals + other.storm_arrivals,
            msgs_delayed: self.msgs_delayed + other.msgs_delayed,
            msgs_dropped: self.msgs_dropped + other.msgs_dropped,
            msgs_duplicated: self.msgs_duplicated + other.msgs_duplicated,
            partition_drops: self.partition_drops + other.partition_drops,
        }
    }
}

/// Outcome of one sprint engage attempt under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngageOutcome {
    /// Sprint engaged normally.
    Engaged,
    /// Sprint engaged but the mechanism is stuck on — it cannot toggle
    /// back until the query completes or a thermal emergency fires.
    EngagedStuck,
    /// The toggle failed; the execution continues at sustained speed.
    Failed,
}

/// Stateful fault decision engine for one testbed run.
///
/// Owns private RNG streams (derived from the plan seed) so decisions
/// are deterministic and never perturb the server's own streams.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    engage_rng: SimRng,
    crash_rng: SimRng,
    msg_rng: SimRng,
    locked_until_secs: f64,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Validates the plan and builds an injector.
    pub fn new(plan: FaultPlan) -> Result<FaultInjector, SprintError> {
        plan.validate()?;
        let mut root = SimRng::new(plan.seed);
        // Derivation order is part of the replay contract: the message
        // stream was added after engage/crash, so it splits last and the
        // historical streams are untouched.
        let engage_rng = root.split(0xFA01);
        let crash_rng = root.split(0xFA02);
        let msg_rng = root.split(0xFA03);
        Ok(FaultInjector {
            plan,
            engage_rng,
            crash_rng,
            msg_rng,
            locked_until_secs: f64::NEG_INFINITY,
            counters: FaultCounters::default(),
        })
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the injector can never fire.
    pub fn is_noop(&self) -> bool {
        self.plan.is_noop()
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Decides the outcome of a sprint engage attempt at `now_secs`.
    ///
    /// Draws from the engage stream only when the relevant probability
    /// is non-zero, so a no-op plan consumes no randomness.
    pub fn engage_outcome(&mut self, now_secs: f64) -> EngageOutcome {
        if now_secs < self.locked_until_secs {
            self.counters.lockout_refusals += 1;
            return EngageOutcome::Failed;
        }
        if self.plan.engage_failure_prob > 0.0
            && self.engage_rng.chance(self.plan.engage_failure_prob)
        {
            self.counters.engage_failures += 1;
            return EngageOutcome::Failed;
        }
        if self.plan.stuck_sprint_prob > 0.0 && self.engage_rng.chance(self.plan.stuck_sprint_prob)
        {
            self.counters.stuck_sprints += 1;
            return EngageOutcome::EngagedStuck;
        }
        EngageOutcome::Engaged
    }

    /// The budget level the queue manager *senses* given the true level.
    ///
    /// With zero drift this is exactly `true_level`.
    pub fn sensed_level(&self, true_level: f64) -> f64 {
        (true_level + self.plan.budget_drift_secs).max(0.0)
    }

    /// Decides whether dispatching on `slot` a query with
    /// `retries_so_far` crash-requeues will crash, and if so at what
    /// fraction of its service time. Returns `None` when the query runs
    /// to completion. The [`FaultPlan::bad_slot`], if configured, uses
    /// its own (typically much higher) crash probability.
    pub fn crash_point_frac(&mut self, slot: usize, retries_so_far: u32) -> Option<f64> {
        let prob = if self.plan.bad_slot == Some(slot) {
            self.plan.bad_slot_crash_prob
        } else {
            self.plan.crash_prob
        };
        if prob == 0.0 {
            return None;
        }
        if retries_so_far >= self.plan.max_retries {
            return None;
        }
        if !self.crash_rng.chance(prob) {
            return None;
        }
        // Crash somewhere in (5%, 95%) of the service time so the
        // requeue always loses meaningful progress and the crash never
        // races the completion event at the exact same instant.
        Some(self.crash_rng.uniform(0.05, 0.95))
    }

    /// Records that a crash actually happened (the query was still
    /// in-flight when its crash point arrived).
    pub fn record_crash(&mut self, was_final_retry: bool) {
        self.counters.slot_crashes += 1;
        if was_final_retry {
            self.counters.retries_exhausted += 1;
        }
    }

    /// Storm multiplier active at `now_secs` (product of all matching
    /// windows; `1.0` outside every window).
    pub fn storm_multiplier(&self, now_secs: f64) -> f64 {
        let mut m = 1.0;
        for w in &self.plan.storms {
            if now_secs >= w.start_secs && now_secs < w.start_secs + w.duration_secs {
                m *= w.multiplier;
            }
        }
        m
    }

    /// Records an arrival sampled under an active storm window.
    pub fn record_storm_arrival(&mut self) {
        self.counters.storm_arrivals += 1;
    }

    /// Time of the first thermal emergency, if the plan schedules any.
    pub fn first_thermal_secs(&self) -> Option<f64> {
        (self.plan.thermal_period_secs > 0.0).then_some(self.plan.thermal_period_secs)
    }

    /// Handles a thermal emergency at `now_secs`: starts the engage
    /// lockout, counts `unsprinted` forced unsprints, and returns when
    /// the next emergency fires.
    pub fn on_thermal(&mut self, now_secs: f64, unsprinted: u64) -> f64 {
        self.counters.thermal_unsprints += unsprinted;
        self.locked_until_secs = now_secs + self.plan.thermal_lockout_secs;
        now_secs + self.plan.thermal_period_secs
    }

    /// Maximum crash-requeue retries per query.
    pub fn max_retries(&self) -> u32 {
        self.plan.max_retries
    }

    /// Unsupervised out-of-band repair time for a crashed slot.
    pub fn crash_repair_secs(&self) -> f64 {
        self.plan.crash_repair_secs
    }

    /// Whether the plan carries any message-level fault (if not, the
    /// testbed skips routing entirely and delivers every control
    /// message inline, drawing no randomness).
    pub fn has_message_faults(&self) -> bool {
        !self.plan.messages.is_noop()
    }

    /// Routes one control message sent at `now_secs` from `from` to
    /// `to`, deciding its fate and counting any injected fault.
    ///
    /// Partitions are checked first and consume no randomness; the
    /// drop/duplicate/delay draws each happen only when the matching
    /// probability is non-zero, so a plan without message faults leaves
    /// the message stream untouched.
    pub fn route_message(&mut self, now_secs: f64, from: Peer, to: Peer) -> Delivery {
        let m = &self.plan.messages;
        if m.partitions.iter().any(|p| p.cuts(now_secs, from, to)) {
            self.counters.partition_drops += 1;
            return Delivery::Dropped { partitioned: true };
        }
        m.draw_delivery(&mut self.msg_rng, &mut self.counters)
    }
}

impl NetworkEffect<Peer> for FaultInjector {
    fn route(&mut self, now: SimTime, from: Peer, to: Peer) -> Delivery {
        self.route_message(now.as_secs_f64(), from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(plan.validate().is_ok());
        let mut inj = FaultInjector::new(plan).unwrap();
        // A no-op injector never alters decisions.
        assert_eq!(inj.engage_outcome(0.0), EngageOutcome::Engaged);
        assert_eq!(inj.crash_point_frac(0, 0), None);
        assert_eq!(inj.sensed_level(5.0), 5.0);
        assert_eq!(inj.storm_multiplier(123.0), 1.0);
        assert_eq!(inj.first_thermal_secs(), None);
        assert_eq!(inj.counters().total(), 0);
    }

    #[test]
    fn noop_plan_draws_no_randomness() {
        // Engage decisions on a no-op plan must not consume the stream:
        // two injectors stay in lockstep regardless of call counts.
        let mut a = FaultInjector::new(FaultPlan::default()).unwrap();
        let mut b = FaultInjector::new(FaultPlan::default()).unwrap();
        for _ in 0..10 {
            let _ = a.engage_outcome(1.0);
            let _ = a.crash_point_frac(0, 0);
        }
        let _ = b.engage_outcome(1.0);
        assert_eq!(a.engage_rng.next_u64(), b.engage_rng.next_u64());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let bad = |f: fn(&mut FaultPlan)| {
            let mut p = FaultPlan::default();
            f(&mut p);
            p.validate()
        };
        assert!(bad(|p| p.engage_failure_prob = 1.5).is_err());
        assert!(bad(|p| p.stuck_sprint_prob = -0.1).is_err());
        assert!(bad(|p| p.crash_prob = f64::NAN).is_err());
        assert!(bad(|p| p.bad_slot_crash_prob = 2.0).is_err());
        assert!(bad(|p| p.budget_drift_secs = f64::INFINITY).is_err());
        assert!(bad(|p| p.thermal_period_secs = -5.0).is_err());
        assert!(bad(|p| p.thermal_lockout_secs = f64::NAN).is_err());
        assert!(bad(|p| {
            p.storms.push(StormWindow {
                start_secs: 0.0,
                duration_secs: 0.0,
                multiplier: 2.0,
            })
        })
        .is_err());
        assert!(bad(|p| {
            p.storms.push(StormWindow {
                start_secs: 10.0,
                duration_secs: 5.0,
                multiplier: -1.0,
            })
        })
        .is_err());
    }

    #[test]
    fn engage_failures_are_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 99,
            engage_failure_prob: 0.5,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan.clone()).unwrap();
        let mut b = FaultInjector::new(plan).unwrap();
        let xs: Vec<_> = (0..64).map(|_| a.engage_outcome(0.0)).collect();
        let ys: Vec<_> = (0..64).map(|_| b.engage_outcome(0.0)).collect();
        assert_eq!(xs, ys);
        assert!(xs.contains(&EngageOutcome::Failed));
        assert!(xs.contains(&EngageOutcome::Engaged));
    }

    #[test]
    fn sensed_level_drifts_and_clamps() {
        let plan = FaultPlan {
            budget_drift_secs: 20.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan).unwrap();
        assert_eq!(inj.sensed_level(0.0), 20.0); // Sprinting blind.
        let neg = FaultInjector::new(FaultPlan {
            budget_drift_secs: -50.0,
            ..FaultPlan::default()
        })
        .unwrap();
        assert_eq!(neg.sensed_level(30.0), 0.0); // Starved, clamped.
    }

    #[test]
    fn crash_respects_retry_budget() {
        let plan = FaultPlan {
            seed: 4,
            crash_prob: 1.0,
            max_retries: 2,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan).unwrap();
        let f0 = inj.crash_point_frac(0, 0).expect("first dispatch crashes");
        assert!((0.05..0.95).contains(&f0));
        assert!(inj.crash_point_frac(0, 1).is_some());
        assert!(inj.crash_point_frac(0, 2).is_none(), "retries exhausted");
    }

    #[test]
    fn bad_slot_crashes_only_on_its_slot() {
        let plan = FaultPlan {
            seed: 11,
            bad_slot: Some(1),
            bad_slot_crash_prob: 1.0,
            max_retries: 10,
            ..FaultPlan::default()
        };
        assert!(!plan.is_noop());
        let mut inj = FaultInjector::new(plan).unwrap();
        // Healthy slots never crash (crash_prob is still 0)...
        assert!(inj.crash_point_frac(0, 0).is_none());
        assert!(inj.crash_point_frac(2, 0).is_none());
        // ...while the bad slot always does.
        assert!(inj.crash_point_frac(1, 0).is_some());
        assert!(inj.crash_point_frac(1, 3).is_some());
    }

    #[test]
    fn storms_apply_inside_their_windows() {
        let plan = FaultPlan {
            storms: vec![
                StormWindow {
                    start_secs: 100.0,
                    duration_secs: 50.0,
                    multiplier: 3.0,
                },
                StormWindow {
                    start_secs: 200.0,
                    duration_secs: 100.0,
                    multiplier: 2.0,
                },
            ],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan).unwrap();
        assert_eq!(inj.storm_multiplier(90.0), 1.0);
        assert_eq!(inj.storm_multiplier(110.0), 3.0);
        assert_eq!(inj.storm_multiplier(150.0), 1.0); // Half-open end.
        assert_eq!(inj.storm_multiplier(250.0), 2.0);
        assert_eq!(inj.storm_multiplier(300.0), 1.0);
    }

    #[test]
    fn overlapping_storms_are_rejected() {
        // Declared out of order on purpose: validation must sort first.
        let plan = FaultPlan {
            storms: vec![
                StormWindow {
                    start_secs: 120.0,
                    duration_secs: 100.0,
                    multiplier: 2.0,
                },
                StormWindow {
                    start_secs: 100.0,
                    duration_secs: 50.0,
                    multiplier: 3.0,
                },
            ],
            ..FaultPlan::default()
        };
        let err = plan.validate().unwrap_err();
        assert!(err.to_string().contains("overlap"), "got: {err}");
        assert!(FaultInjector::new(plan).is_err());

        // Back-to-back windows (end == next start) are fine.
        let adjacent = FaultPlan {
            storms: vec![
                StormWindow {
                    start_secs: 100.0,
                    duration_secs: 50.0,
                    multiplier: 3.0,
                },
                StormWindow {
                    start_secs: 150.0,
                    duration_secs: 50.0,
                    multiplier: 2.0,
                },
            ],
            ..FaultPlan::default()
        };
        assert!(adjacent.validate().is_ok());
    }

    #[test]
    fn message_faults_default_is_noop_and_inline() {
        let mut inj = FaultInjector::new(FaultPlan::default()).unwrap();
        assert!(!inj.has_message_faults());
        for i in 0..8 {
            assert_eq!(
                inj.route_message(i as f64, Peer::Watchdog, Peer::Controller),
                Delivery::Inline
            );
        }
        assert_eq!(inj.counters().total(), 0);
    }

    #[test]
    fn noop_message_plan_draws_no_randomness() {
        // Routing under a no-op plan must not consume the message
        // stream: two injectors stay in lockstep regardless of call
        // counts (the same contract engage/crash already honour).
        let mut a = FaultInjector::new(FaultPlan::default()).unwrap();
        let mut b = FaultInjector::new(FaultPlan::default()).unwrap();
        for _ in 0..10 {
            let _ = a.route_message(1.0, Peer::BudgetSensor, Peer::Controller);
        }
        let _ = b.route_message(1.0, Peer::BudgetSensor, Peer::Controller);
        assert_eq!(a.msg_rng.next_u64(), b.msg_rng.next_u64());
    }

    #[test]
    fn message_stream_never_perturbs_engage_or_crash_streams() {
        let plan = FaultPlan {
            seed: 5,
            engage_failure_prob: 0.5,
            crash_prob: 0.5,
            max_retries: 100,
            ..FaultPlan::default()
        };
        let chatty_plan = FaultPlan {
            messages: MessageFaults {
                delay_prob: 0.5,
                delay_secs: 10.0,
                drop_prob: 0.2,
                dup_prob: 0.2,
                ..MessageFaults::default()
            },
            ..plan.clone()
        };
        let mut quiet = FaultInjector::new(plan).unwrap();
        let mut chatty = FaultInjector::new(chatty_plan).unwrap();
        for i in 0..64 {
            let _ = chatty.route_message(i as f64, Peer::Watchdog, Peer::Controller);
        }
        for i in 0..64 {
            assert_eq!(quiet.engage_outcome(0.0), chatty.engage_outcome(0.0));
            assert_eq!(
                quiet.crash_point_frac(0, 0),
                chatty.crash_point_frac(0, 0),
                "{i}"
            );
        }
    }

    #[test]
    fn message_routing_is_deterministic_and_covers_every_fate() {
        let plan = FaultPlan {
            seed: 21,
            messages: MessageFaults {
                delay_prob: 0.4,
                delay_secs: 30.0,
                drop_prob: 0.2,
                dup_prob: 0.2,
                ..MessageFaults::default()
            },
            ..FaultPlan::default()
        };
        assert!(!plan.is_noop());
        let mut a = FaultInjector::new(plan.clone()).unwrap();
        let mut b = FaultInjector::new(plan).unwrap();
        let route = |inj: &mut FaultInjector| -> Vec<Delivery> {
            (0..256)
                .map(|i| inj.route_message(i as f64, Peer::BudgetSensor, Peer::Controller))
                .collect()
        };
        let xs = route(&mut a);
        assert_eq!(xs, route(&mut b));
        assert!(xs.iter().any(|d| matches!(d, Delivery::Inline)));
        assert!(xs.iter().any(|d| matches!(d, Delivery::Delayed { .. })));
        assert!(xs
            .iter()
            .any(|d| matches!(d, Delivery::Dropped { partitioned: false })));
        assert!(xs.iter().any(|d| matches!(d, Delivery::Duplicated { .. })));
        for d in &xs {
            match d {
                Delivery::Delayed { delay } => {
                    assert!(delay.0 >= 1 && delay.as_secs_f64() <= 30.0)
                }
                Delivery::Duplicated { extra_delay } => assert!(extra_delay.0 >= 1),
                _ => {}
            }
        }
        let c = a.counters();
        assert!(c.msgs_delayed > 0 && c.msgs_dropped > 0 && c.msgs_duplicated > 0);
        assert_eq!(c.partition_drops, 0);
    }

    #[test]
    fn partitions_cut_both_directions_inside_the_window_only() {
        let plan = FaultPlan {
            messages: MessageFaults {
                partitions: vec![LinkPartition {
                    a: Peer::Watchdog,
                    b: Peer::Controller,
                    start_secs: 100.0,
                    duration_secs: 50.0,
                }],
                ..MessageFaults::default()
            },
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan).unwrap();
        assert_eq!(
            inj.route_message(99.0, Peer::Watchdog, Peer::Controller),
            Delivery::Inline
        );
        assert_eq!(
            inj.route_message(110.0, Peer::Watchdog, Peer::Controller),
            Delivery::Dropped { partitioned: true }
        );
        assert_eq!(
            inj.route_message(110.0, Peer::Controller, Peer::Watchdog),
            Delivery::Dropped { partitioned: true },
            "partition is bidirectional"
        );
        assert_eq!(
            inj.route_message(110.0, Peer::BudgetSensor, Peer::Controller),
            Delivery::Inline,
            "other links are unaffected"
        );
        assert_eq!(
            inj.route_message(150.0, Peer::Watchdog, Peer::Controller),
            Delivery::Inline,
            "half-open window end"
        );
        assert_eq!(inj.counters().partition_drops, 2);
    }

    #[test]
    fn message_fault_validation_rejects_bad_fields() {
        let bad = |f: fn(&mut MessageFaults)| {
            let mut p = FaultPlan::default();
            f(&mut p.messages);
            p.validate()
        };
        assert!(bad(|m| m.delay_prob = 1.5).is_err());
        assert!(bad(|m| m.drop_prob = f64::NAN).is_err());
        assert!(bad(|m| m.dup_prob = -0.1).is_err());
        assert!(bad(|m| m.delay_secs = -1.0).is_err());
        // delay_prob without a positive delay bound is meaningless.
        assert!(bad(|m| m.delay_prob = 0.5).is_err());
        assert!(bad(|m| {
            m.dup_prob = 0.5;
            m.delay_secs = 0.0;
        })
        .is_err());
        assert!(bad(|m| {
            m.partitions.push(LinkPartition {
                a: Peer::Controller,
                b: Peer::Controller,
                start_secs: 0.0,
                duration_secs: 10.0,
            })
        })
        .is_err());
        assert!(bad(|m| {
            m.partitions.push(LinkPartition {
                a: Peer::Watchdog,
                b: Peer::Controller,
                start_secs: 0.0,
                duration_secs: 0.0,
            })
        })
        .is_err());
        let ok = FaultPlan {
            messages: MessageFaults {
                delay_prob: 0.5,
                delay_secs: 10.0,
                ..MessageFaults::default()
            },
            ..FaultPlan::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn thermal_schedule_and_lockout() {
        let plan = FaultPlan {
            thermal_period_secs: 500.0,
            thermal_lockout_secs: 60.0,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan).unwrap();
        assert_eq!(inj.first_thermal_secs(), Some(500.0));
        let next = inj.on_thermal(500.0, 3);
        assert_eq!(next, 1000.0);
        assert_eq!(inj.counters().thermal_unsprints, 3);
        // Engage refused during lockout, allowed after.
        assert_eq!(inj.engage_outcome(530.0), EngageOutcome::Failed);
        assert_eq!(inj.counters().lockout_refusals, 1);
        assert_eq!(inj.engage_outcome(561.0), EngageOutcome::Engaged);
    }
}
