//! Query mixes (§3.4).
//!
//! A query mix alters the service-time distribution (the "G" in G/G/k)
//! and introduces interference between kinds sharing a node: bandwidth
//! hogs such as SparkStream or Mem pollute the cache for sensitive
//! kernels such as Jacobi. The paper measured a sustained service rate
//! of 35 qph for Mix I (Jacobi + Stream) and 30 qph for Mix II (Jacobi,
//! Stream, KNN, BFS) — both well below the harmonic mean of the
//! components in isolation.

use crate::catalog::{Workload, WorkloadKind};
use simcore::rng::SimRng;
use simcore::time::Rate;

/// Strength of cross-workload cache/bandwidth interference, calibrated
/// so Mix I lands near the paper's measured 35 qph.
pub const INTERFERENCE_KAPPA: f64 = 1.724;

/// A weighted mix of query kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMix {
    components: Vec<(WorkloadKind, f64)>,
}

impl QueryMix {
    /// A single-workload "mix".
    pub fn single(kind: WorkloadKind) -> QueryMix {
        QueryMix {
            components: vec![(kind, 1.0)],
        }
    }

    /// Uniform mix over the given kinds.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty or contains duplicates.
    pub fn uniform(kinds: &[WorkloadKind]) -> QueryMix {
        let w = 1.0 / kinds.len() as f64;
        QueryMix::weighted(kinds.iter().map(|&k| (k, w)).collect())
    }

    /// Weighted mix; weights are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty, has duplicates, or has a
    /// non-positive total weight.
    pub fn weighted(components: Vec<(WorkloadKind, f64)>) -> QueryMix {
        assert!(!components.is_empty(), "mix needs at least one component");
        let mut seen = Vec::new();
        for &(k, w) in &components {
            assert!(!seen.contains(&k), "duplicate component {k:?}");
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            seen.push(k);
        }
        let total: f64 = components.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "mix weights sum to zero");
        QueryMix {
            components: components
                .into_iter()
                .map(|(k, w)| (k, w / total))
                .collect(),
        }
    }

    /// The paper's Mix I: 50% Jacobi, 50% SparkStream (§3.4).
    pub fn mix_i() -> QueryMix {
        QueryMix::uniform(&[WorkloadKind::Jacobi, WorkloadKind::SparkStream])
    }

    /// The paper's Mix II: even split of Jacobi, Stream, KNN and BFS.
    pub fn mix_ii() -> QueryMix {
        QueryMix::uniform(&[
            WorkloadKind::Jacobi,
            WorkloadKind::SparkStream,
            WorkloadKind::Knn,
            WorkloadKind::Bfs,
        ])
    }

    /// Components and their normalized weights.
    pub fn components(&self) -> &[(WorkloadKind, f64)] {
        &self.components
    }

    /// Returns `true` if the mix has a single kind.
    pub fn is_single(&self) -> bool {
        self.components.len() == 1
    }

    /// Draws a query kind according to the mix weights.
    pub fn sample_kind(&self, rng: &mut SimRng) -> WorkloadKind {
        let mut u = rng.next_f64();
        for &(k, w) in &self.components {
            if u < w {
                return k;
            }
            u -= w;
        }
        self.components.last().expect("non-empty").0
    }

    /// Interference inflation factor for service times of queries of
    /// `victim` kind when running inside this mix (≥ 1).
    ///
    /// A victim's slowdown is its cache sensitivity times the
    /// weight-averaged cache aggression of the *other* kinds in the mix,
    /// scaled by [`INTERFERENCE_KAPPA`]. Single-kind mixes see no
    /// interference, matching the isolated Table 1(C) rates.
    pub fn interference_inflation(&self, victim: WorkloadKind) -> f64 {
        if self.is_single() {
            return 1.0;
        }
        let v = Workload::get(victim);
        let mut aggr = 0.0;
        let mut wsum = 0.0;
        for &(k, w) in &self.components {
            if k != victim {
                aggr += w * Workload::get(k).cache_aggression;
                wsum += w;
            }
        }
        if wsum == 0.0 {
            return 1.0;
        }
        1.0 + INTERFERENCE_KAPPA * v.cache_sensitivity * (aggr / wsum)
    }

    /// Expected sustained service rate of the mix given per-kind
    /// isolated rates, accounting for interference.
    ///
    /// The mixed mean service time is the weight-averaged per-kind mean
    /// service time inflated by interference (an M/G/1-style mixture).
    pub fn sustained_rate(&self, isolated_rate: impl Fn(WorkloadKind) -> Rate) -> Rate {
        let mean_hours: f64 = self
            .components
            .iter()
            .map(|&(k, w)| w * self.interference_inflation(k) / isolated_rate(k).qph())
            .sum();
        Rate::per_hour(1.0 / mean_hours)
    }

    /// A short human-readable label, e.g. `"Jacobi+SparkStream"`.
    pub fn label(&self) -> String {
        self.components
            .iter()
            .map(|&(k, _)| k.name())
            .collect::<Vec<_>>()
            .join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_rate(k: WorkloadKind) -> Rate {
        Workload::get(k).dvfs_sustained
    }

    #[test]
    fn single_mix_has_no_interference() {
        let m = QueryMix::single(WorkloadKind::Jacobi);
        assert!(m.is_single());
        assert_eq!(m.interference_inflation(WorkloadKind::Jacobi), 1.0);
        let r = m.sustained_rate(table_rate);
        assert!((r.qph() - 51.0).abs() < 1e-9);
    }

    #[test]
    fn mix_i_rate_near_paper_measurement() {
        // §3.4: measured 35 qph for Mix I.
        let r = QueryMix::mix_i().sustained_rate(table_rate);
        assert!(
            (r.qph() - 35.0).abs() < 3.0,
            "Mix I rate {} far from 35 qph",
            r.qph()
        );
    }

    #[test]
    fn mix_ii_rate_near_paper_measurement() {
        // §3.4: measured 30 qph for Mix II.
        let r = QueryMix::mix_ii().sustained_rate(table_rate);
        assert!(
            (r.qph() - 30.0).abs() < 4.0,
            "Mix II rate {} far from 30 qph",
            r.qph()
        );
    }

    #[test]
    fn mix_rate_below_harmonic_mean() {
        // Interference means the mix is slower than the no-interference
        // mixture for both paper mixes.
        for m in [QueryMix::mix_i(), QueryMix::mix_ii()] {
            let with = m.sustained_rate(table_rate).qph();
            let without: f64 = 1.0
                / m.components()
                    .iter()
                    .map(|&(k, w)| w / table_rate(k).qph())
                    .sum::<f64>();
            assert!(with < without, "{}: {with} !< {without}", m.label());
        }
    }

    #[test]
    fn sample_kind_follows_weights() {
        let m = QueryMix::weighted(vec![(WorkloadKind::Jacobi, 0.8), (WorkloadKind::Bfs, 0.2)]);
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let jacobi = (0..n)
            .filter(|_| m.sample_kind(&mut rng) == WorkloadKind::Jacobi)
            .count();
        let frac = jacobi as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn weights_normalize() {
        let m = QueryMix::weighted(vec![(WorkloadKind::Jacobi, 2.0), (WorkloadKind::Mem, 6.0)]);
        let w: Vec<f64> = m.components().iter().map(|&(_, w)| w).collect();
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn label_concatenates_names() {
        assert_eq!(QueryMix::mix_i().label(), "Jacobi+SparkStream");
    }

    #[test]
    #[should_panic(expected = "duplicate component")]
    fn rejects_duplicates() {
        let _ = QueryMix::weighted(vec![
            (WorkloadKind::Jacobi, 0.5),
            (WorkloadKind::Jacobi, 0.5),
        ]);
    }

    #[test]
    fn sensitive_victims_suffer_more() {
        let m = QueryMix::mix_i();
        let jacobi = m.interference_inflation(WorkloadKind::Jacobi);
        let stream = m.interference_inflation(WorkloadKind::SparkStream);
        assert!(
            jacobi > stream,
            "cache-sensitive Jacobi ({jacobi}) should suffer more than streaming ({stream})"
        );
    }
}
