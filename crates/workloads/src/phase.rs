//! Execution phases.
//!
//! A query execution is modeled as a sequence of phases, each consuming
//! a fraction of the total work. Phases differ in how they respond to
//! sprinting mechanisms:
//!
//! - `mem_frac`: the share of the phase's time bound by memory bandwidth
//!   — it does not scale with core frequency (DVFS), only weakly with
//!   uncore boost.
//! - `parallel_frac`: the share that benefits from more cores (Amdahl's
//!   law under core scaling). The paper observes that late phases have
//!   fewer active software threads (§3.3), so tails typically carry a
//!   smaller `parallel_frac`.
//! - `sync_frac`: the share serialized on synchronization — it responds
//!   to no mechanism at all (Leuk is dominated by this, Table 1C).

/// One phase of a query execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Fraction of the query's total work done in this phase; the
    /// phases of a workload sum to 1.
    pub frac: f64,
    /// Fraction of this phase's time bound by memory bandwidth.
    pub mem_frac: f64,
    /// Fraction of this phase's work that parallelizes across cores.
    pub parallel_frac: f64,
    /// Fraction of this phase's time serialized on synchronization.
    pub sync_frac: f64,
}

impl Phase {
    /// Creates a phase, validating all fractions.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]` or if
    /// `mem_frac + sync_frac > 1`.
    pub fn new(frac: f64, mem_frac: f64, parallel_frac: f64, sync_frac: f64) -> Self {
        for (name, v) in [
            ("frac", frac),
            ("mem_frac", mem_frac),
            ("parallel_frac", parallel_frac),
            ("sync_frac", sync_frac),
        ] {
            assert!(
                (0.0..=1.0).contains(&v) && v.is_finite(),
                "phase {name} out of range: {v}"
            );
        }
        assert!(
            mem_frac + sync_frac <= 1.0 + 1e-9,
            "memory + sync fractions exceed 1: {mem_frac} + {sync_frac}"
        );
        Phase {
            frac,
            mem_frac,
            parallel_frac,
            sync_frac,
        }
    }

    /// The frequency-elastic share of this phase: time that scales with
    /// core frequency under DVFS-style mechanisms.
    pub fn compute_frac(&self) -> f64 {
        (1.0 - self.mem_frac - self.sync_frac).max(0.0)
    }

    /// Phase speedup when core frequency scales by `freq_ratio` and
    /// uncore/memory bandwidth scales by `uncore_ratio`.
    ///
    /// A roofline-style decomposition: the compute share contracts by
    /// the frequency ratio, the memory share by the uncore ratio, and
    /// the synchronization share not at all.
    pub fn freq_speedup(&self, freq_ratio: f64, uncore_ratio: f64) -> f64 {
        debug_assert!(freq_ratio >= 1.0 && uncore_ratio >= 1.0);
        let t = self.compute_frac() / freq_ratio + self.mem_frac / uncore_ratio + self.sync_frac;
        1.0 / t.max(f64::MIN_POSITIVE)
    }

    /// Phase speedup when the core count scales by `core_ratio`
    /// (Amdahl's law over `parallel_frac`, with the sync share also held
    /// serial).
    pub fn core_speedup(&self, core_ratio: f64) -> f64 {
        debug_assert!(core_ratio >= 1.0);
        let par = self.parallel_frac * (1.0 - self.sync_frac);
        let t = (1.0 - par) + par / core_ratio;
        1.0 / t.max(f64::MIN_POSITIVE)
    }
}

/// Validates that a phase sequence covers exactly all work.
///
/// # Panics
///
/// Panics if `phases` is empty or the work fractions do not sum to 1
/// (within 1e-6).
pub fn validate_phases(phases: &[Phase]) {
    assert!(!phases.is_empty(), "workload needs at least one phase");
    let total: f64 = phases.iter().map(|p| p.frac).sum();
    assert!(
        (total - 1.0).abs() < 1e-6,
        "phase fractions sum to {total}, expected 1"
    );
}

/// Work-weighted aggregate speedup across phases for a full execution.
pub fn aggregate_speedup(phases: &[Phase], phase_speedup: impl Fn(&Phase) -> f64) -> f64 {
    let sprinted_time: f64 = phases.iter().map(|p| p.frac / phase_speedup(p)).sum();
    1.0 / sprinted_time.max(f64::MIN_POSITIVE)
}

/// Aggregate speedup when only the trailing `tail_frac` of the work is
/// sprinted — the paper's partial-sprint scenario (§3.3: sprinting only
/// the last 22 s of a 202 s Jacobi run yields 1.5X instead of 1.87X).
pub fn tail_speedup(
    phases: &[Phase],
    tail_frac: f64,
    phase_speedup: impl Fn(&Phase) -> f64,
) -> f64 {
    let tail_frac = tail_frac.clamp(0.0, 1.0);
    let head = 1.0 - tail_frac;
    let mut done = 0.0;
    let mut time = 0.0;
    for p in phases {
        let phase_start = done;
        let phase_end = done + p.frac;
        // Portion of this phase executed at sustained speed.
        let normal = (head.min(phase_end) - phase_start).max(0.0);
        // Portion executed under sprint.
        let sprinted = (phase_end - phase_start.max(head)).max(0.0);
        time += normal + sprinted / phase_speedup(p);
        done = phase_end;
    }
    1.0 / time.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(frac: f64, mem: f64, par: f64, sync: f64) -> Phase {
        Phase::new(frac, mem, par, sync)
    }

    #[test]
    fn compute_frac_complements() {
        let ph = p(1.0, 0.3, 0.8, 0.1);
        assert!((ph.compute_frac() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn freq_speedup_pure_compute_equals_ratio() {
        let ph = p(1.0, 0.0, 1.0, 0.0);
        assert!((ph.freq_speedup(2.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn freq_speedup_pure_sync_is_one() {
        let ph = p(1.0, 0.0, 0.0, 1.0);
        assert!((ph.freq_speedup(2.5, 1.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn freq_speedup_memory_uses_uncore() {
        let ph = p(1.0, 1.0, 0.0, 0.0);
        assert!((ph.freq_speedup(2.0, 1.25) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn core_speedup_amdahl() {
        // 90% parallel, doubling cores: 1/(0.1 + 0.45) ≈ 1.818.
        let ph = p(1.0, 0.0, 0.9, 0.0);
        assert!((ph.core_speedup(2.0) - 1.0 / 0.55).abs() < 1e-12);
    }

    #[test]
    fn core_speedup_sync_reduces_parallel_share() {
        let ph = p(1.0, 0.0, 1.0, 0.5);
        // Parallel share is 1.0 * (1 - 0.5) = 0.5.
        assert!((ph.core_speedup(2.0) - 1.0 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn aggregate_is_harmonic_weighting() {
        let phases = [p(0.5, 0.0, 1.0, 0.0), p(0.5, 0.0, 0.0, 1.0)];
        // First phase doubles, second does not: time 0.25 + 0.5 = 0.75.
        let s = aggregate_speedup(&phases, |ph| ph.freq_speedup(2.0, 1.0));
        assert!((s - 1.0 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn tail_speedup_full_equals_aggregate() {
        let phases = [p(0.6, 0.1, 0.9, 0.0), p(0.4, 0.3, 0.5, 0.2)];
        let f = |ph: &Phase| ph.freq_speedup(2.0, 1.2);
        let full = tail_speedup(&phases, 1.0, f);
        let agg = aggregate_speedup(&phases, f);
        assert!((full - agg).abs() < 1e-12);
    }

    #[test]
    fn tail_speedup_zero_is_one() {
        let phases = [p(1.0, 0.0, 1.0, 0.0)];
        let s = tail_speedup(&phases, 0.0, |ph| ph.freq_speedup(2.0, 1.0));
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_speedup_monotone_in_tail_fraction() {
        let phases = [p(0.5, 0.0, 1.0, 0.0), p(0.5, 0.2, 0.6, 0.1)];
        let f = |ph: &Phase| ph.freq_speedup(2.0, 1.3);
        let mut prev = 0.99;
        for i in 0..=10 {
            let s = tail_speedup(&phases, i as f64 / 10.0, f);
            assert!(s >= prev - 1e-12, "speedup not monotone at {i}");
            prev = s;
        }
    }

    #[test]
    fn tail_hits_late_phases_first() {
        // Elastic head, inelastic tail: sprinting the tail only helps
        // less per unit of sprinted work than sprinting everything.
        let phases = [p(0.8, 0.0, 1.0, 0.0), p(0.2, 0.0, 0.0, 1.0)];
        let f = |ph: &Phase| ph.freq_speedup(2.0, 1.0);
        let tail_only = tail_speedup(&phases, 0.2, f);
        assert!((tail_only - 1.0).abs() < 1e-12, "tail is pure sync");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phase_rejects_bad_fraction() {
        let _ = Phase::new(1.2, 0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn phase_rejects_overcommitted_shares() {
        let _ = Phase::new(1.0, 0.7, 0.5, 0.6);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn validate_rejects_partial_coverage() {
        validate_phases(&[p(0.5, 0.0, 0.5, 0.0)]);
    }
}
