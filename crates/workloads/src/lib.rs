//! Workload catalog for model-driven computational sprinting.
//!
//! The paper evaluates 7 cloud-server workloads (Table 1C) — two Spark
//! services and five HPC kernels — plus mixes of them (§3.4). We do not
//! ship Spark or MPI binaries; instead each workload is characterized by
//! exactly the properties that determine its queueing and sprinting
//! behaviour:
//!
//! - a sustained service rate on the reference DVFS platform,
//! - a service-time distribution shape (coefficient of variation),
//! - a sequence of execution [`Phase`]s, each with a memory-bound
//!   fraction (frequency insensitivity), a parallel fraction (Amdahl
//!   behaviour under core scaling) and a synchronization fraction,
//! - a target DVFS burst throughput used to calibrate the power model
//!   in the `mechanisms` crate.
//!
//! The phase structure is what creates the runtime effects the paper's
//! machine-learned *effective sprint rate* must capture: sprints that
//! trigger late in an execution hit different phases than sprints that
//! cover a whole execution (the paper's Jacobi core-scaling example and
//! Leuk late-timeout discussion, §3.2–3.3).

pub mod catalog;
pub mod mix;
pub mod phase;

pub use catalog::{Workload, WorkloadKind};
pub use mix::QueryMix;
pub use phase::Phase;
