//! The seven cloud-server workloads of Table 1(C).
//!
//! Each entry pairs the paper's published sustained/burst throughput on
//! the DVFS platform (the calibration targets for the `mechanisms`
//! crate) with the intrinsic characteristics that drive queueing and
//! sprinting behaviour: phase structure, service-time variability and
//! power hunger.

use crate::phase::{validate_phases, Phase};
use simcore::dist::Dist;
use simcore::time::{Rate, SimDuration};

/// Identifier for one of the paper's workloads (Table 1C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadKind {
    /// Spark streaming: continuously process data from a source.
    SparkStream,
    /// Spark K-means: cluster analysis in data mining.
    SparkKmeans,
    /// Jacobi: solve the Helmholtz equation (MPI kernel).
    Jacobi,
    /// K-nearest neighbors (MPI kernel).
    Knn,
    /// Breadth-first search (MPI kernel).
    Bfs,
    /// Memory bandwidth stress (MPI kernel).
    Mem,
    /// Leukocyte tracking in medical images (MPI kernel).
    Leuk,
}

impl WorkloadKind {
    /// All workloads in Table 1(C) order.
    pub const ALL: [WorkloadKind; 7] = [
        WorkloadKind::SparkStream,
        WorkloadKind::SparkKmeans,
        WorkloadKind::Jacobi,
        WorkloadKind::Knn,
        WorkloadKind::Bfs,
        WorkloadKind::Mem,
        WorkloadKind::Leuk,
    ];

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::SparkStream => "SparkStream",
            WorkloadKind::SparkKmeans => "SparkKmeans",
            WorkloadKind::Jacobi => "Jacobi",
            WorkloadKind::Knn => "KNN",
            WorkloadKind::Bfs => "BFS",
            WorkloadKind::Mem => "Mem",
            WorkloadKind::Leuk => "Leuk",
        }
    }

    /// Parses a (case-insensitive) workload name.
    pub fn parse(s: &str) -> Option<WorkloadKind> {
        let s = s.to_ascii_lowercase();
        WorkloadKind::ALL
            .into_iter()
            .find(|k| k.name().to_ascii_lowercase() == s)
    }

    /// The static description of this workload.
    pub fn workload(self) -> &'static Workload {
        Workload::get(self)
    }
}

/// Shape family for a workload's service-time distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceShape {
    /// Lognormal with the workload's coefficient of variation.
    Lognormal,
    /// Hyperexponential (bursty) with the workload's coefficient of
    /// variation; used for irregular kernels such as BFS.
    Hyperexponential,
}

/// Static description of one workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which workload this is.
    pub kind: WorkloadKind,
    /// Execution phases in order; work fractions sum to 1.
    pub phases: Vec<Phase>,
    /// Published sustained throughput on the DVFS platform (Table 1C).
    pub dvfs_sustained: Rate,
    /// Published burst throughput on the DVFS platform (Table 1C).
    pub dvfs_burst: Rate,
    /// Coefficient of variation of service time at a fixed processing
    /// rate (§3.2 notes Jacobi and Leuk have low variance).
    pub service_cov: f64,
    /// Shape family for service-time sampling.
    pub service_shape: ServiceShape,
    /// Relative dynamic-power hunger (W/GHz³ scale hint); power-hungry
    /// workloads are throttled harder by a sustained power cap and thus
    /// see larger DVFS sprint ratios.
    pub power_hunger: f64,
    /// How much this workload suffers when co-located behind a
    /// cache/bandwidth-aggressive neighbour (`[0, 1]`).
    pub cache_sensitivity: f64,
    /// How aggressively this workload pollutes shared cache/bandwidth
    /// for its neighbours (`[0, 1]`).
    pub cache_aggression: f64,
}

impl Workload {
    /// Looks up the static catalog entry for `kind`.
    pub fn get(kind: WorkloadKind) -> &'static Workload {
        let idx = WorkloadKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind is in ALL");
        &catalog()[idx]
    }

    /// All catalog entries, Table 1(C) order.
    pub fn all() -> &'static [Workload] {
        catalog()
    }

    /// Published DVFS marginal sprint speedup (burst / sustained).
    pub fn dvfs_speedup(&self) -> f64 {
        self.dvfs_burst.qph() / self.dvfs_sustained.qph()
    }

    /// Mean service duration at the given processing rate.
    pub fn mean_service(&self, rate: Rate) -> SimDuration {
        rate.mean_interval()
    }

    /// Service-time distribution with the given mean.
    pub fn service_dist(&self, mean: SimDuration) -> Dist {
        match self.service_shape {
            ServiceShape::Lognormal => Dist::lognormal(mean, self.service_cov),
            ServiceShape::Hyperexponential => Dist::hyperexponential(mean, self.service_cov),
        }
    }

    /// Work-weighted average memory-bound fraction across phases.
    pub fn mem_frac_avg(&self) -> f64 {
        self.phases.iter().map(|p| p.frac * p.mem_frac).sum()
    }

    /// Work-weighted average parallel fraction across phases.
    pub fn parallel_frac_avg(&self) -> f64 {
        self.phases.iter().map(|p| p.frac * p.parallel_frac).sum()
    }

    /// Work-weighted average synchronization fraction across phases.
    pub fn sync_frac_avg(&self) -> f64 {
        self.phases.iter().map(|p| p.frac * p.sync_frac).sum()
    }

    /// The phase active at work progress `tau` in `[0, 1]`, and the
    /// fraction of that phase already completed.
    pub fn phase_at(&self, tau: f64) -> (&Phase, f64) {
        let tau = tau.clamp(0.0, 1.0);
        let mut done = 0.0;
        for p in &self.phases {
            if tau < done + p.frac || p.frac == 0.0 {
                let within = if p.frac > 0.0 {
                    (tau - done) / p.frac
                } else {
                    0.0
                };
                return (p, within.clamp(0.0, 1.0));
            }
            done += p.frac;
        }
        (self.phases.last().expect("phases non-empty"), 1.0)
    }
}

fn catalog() -> &'static [Workload; 7] {
    use std::sync::OnceLock;
    static CATALOG: OnceLock<[Workload; 7]> = OnceLock::new();
    CATALOG.get_or_init(build_catalog)
}

fn build_catalog() -> [Workload; 7] {
    let entries = [
        // SparkStream: compute-heavy streaming; the most power-hungry
        // workload, so a sustained power cap throttles it hardest and
        // its burst ratio is the largest in Table 1C (2.57X).
        Workload {
            kind: WorkloadKind::SparkStream,
            phases: vec![
                Phase::new(0.25, 0.03, 0.95, 0.01),
                Phase::new(0.25, 0.02, 0.95, 0.01),
                Phase::new(0.25, 0.03, 0.95, 0.01),
                Phase::new(0.25, 0.04, 0.90, 0.02),
            ],
            dvfs_sustained: Rate::per_hour(87.0),
            dvfs_burst: Rate::per_hour(224.0),
            service_cov: 0.45,
            service_shape: ServiceShape::Lognormal,
            power_hunger: 1.0,
            cache_sensitivity: 0.05,
            cache_aggression: 0.95,
        },
        // SparkKmeans: iterative ML; DVFS speedup 1.97X (the intro's
        // "97% faster" example).
        Workload {
            kind: WorkloadKind::SparkKmeans,
            phases: vec![
                Phase::new(0.10, 0.30, 0.70, 0.05),
                Phase::new(0.70, 0.05, 0.95, 0.02),
                Phase::new(0.20, 0.10, 0.60, 0.15),
            ],
            dvfs_sustained: Rate::per_hour(73.0),
            dvfs_burst: Rate::per_hour(144.0),
            service_cov: 0.50,
            service_shape: ServiceShape::Lognormal,
            power_hunger: 0.75,
            cache_sensitivity: 0.40,
            cache_aggression: 0.50,
        },
        // Jacobi: stencil kernel with good cache locality; the tail
        // phase carries a lower parallel fraction so that core-scaling
        // a full run yields ~1.87X but sprinting only the tail yields
        // ~1.5X (§3.3).
        Workload {
            kind: WorkloadKind::Jacobi,
            phases: vec![
                Phase::new(0.08, 0.15, 0.85, 0.02),
                Phase::new(0.81, 0.30, 0.98, 0.00),
                Phase::new(0.11, 0.25, 0.74, 0.10),
            ],
            dvfs_sustained: Rate::per_hour(51.0),
            dvfs_burst: Rate::per_hour(74.0),
            service_cov: 0.12,
            service_shape: ServiceShape::Lognormal,
            power_hunger: 0.45,
            cache_sensitivity: 0.80,
            cache_aggression: 0.35,
        },
        // KNN: compute-intensive with good locality; 1.78X DVFS burst.
        Workload {
            kind: WorkloadKind::Knn,
            phases: vec![
                Phase::new(0.15, 0.10, 0.80, 0.02),
                Phase::new(0.70, 0.12, 0.90, 0.02),
                Phase::new(0.15, 0.20, 0.70, 0.05),
            ],
            dvfs_sustained: Rate::per_hour(40.0),
            dvfs_burst: Rate::per_hour(71.0),
            service_cov: 0.30,
            service_shape: ServiceShape::Lognormal,
            power_hunger: 0.65,
            cache_sensitivity: 0.35,
            cache_aggression: 0.20,
        },
        // BFS: bandwidth-bound, irregular access; bursty service times.
        Workload {
            kind: WorkloadKind::Bfs,
            phases: vec![
                Phase::new(0.30, 0.55, 0.60, 0.05),
                Phase::new(0.70, 0.60, 0.65, 0.05),
            ],
            dvfs_sustained: Rate::per_hour(28.0),
            dvfs_burst: Rate::per_hour(41.0),
            service_cov: 0.60,
            service_shape: ServiceShape::Hyperexponential,
            power_hunger: 0.50,
            cache_sensitivity: 0.20,
            cache_aggression: 0.75,
        },
        // Mem: memory-bandwidth stress; DVFS barely helps (1.32X).
        Workload {
            kind: WorkloadKind::Mem,
            phases: vec![
                Phase::new(0.50, 0.75, 0.70, 0.03),
                Phase::new(0.50, 0.75, 0.70, 0.03),
            ],
            dvfs_sustained: Rate::per_hour(28.0),
            dvfs_burst: Rate::per_hour(37.0),
            service_cov: 0.20,
            service_shape: ServiceShape::Lognormal,
            power_hunger: 0.40,
            cache_sensitivity: 0.05,
            cache_aggression: 0.95,
        },
        // Leuk: synchronization-limited with strong execution phases;
        // the final sync-heavy phase is what makes late timeouts hard
        // to model (§3.2). DVFS speedup only 1.16X.
        Workload {
            kind: WorkloadKind::Leuk,
            phases: vec![
                Phase::new(0.35, 0.10, 0.75, 0.10),
                Phase::new(0.45, 0.10, 0.60, 0.35),
                Phase::new(0.20, 0.05, 0.30, 0.60),
            ],
            dvfs_sustained: Rate::per_hour(25.0),
            dvfs_burst: Rate::per_hour(29.0),
            service_cov: 0.10,
            service_shape: ServiceShape::Lognormal,
            power_hunger: 0.35,
            cache_sensitivity: 0.30,
            cache_aggression: 0.15,
        },
    ];
    for w in &entries {
        validate_phases(&w.phases);
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_seven_workloads_in_table_order() {
        let all = Workload::all();
        assert_eq!(all.len(), 7);
        assert_eq!(all[0].kind, WorkloadKind::SparkStream);
        assert_eq!(all[6].kind, WorkloadKind::Leuk);
    }

    #[test]
    fn table_1c_throughputs() {
        let j = Workload::get(WorkloadKind::Jacobi);
        assert_eq!(j.dvfs_sustained.qph(), 51.0);
        assert_eq!(j.dvfs_burst.qph(), 74.0);
        let l = Workload::get(WorkloadKind::Leuk);
        assert!((l.dvfs_speedup() - 1.16).abs() < 0.01);
    }

    #[test]
    fn spark_kmeans_matches_intro_example() {
        // §1: DVFS sprinting speeds up Spark K-means by 97%.
        let k = Workload::get(WorkloadKind::SparkKmeans);
        assert!((k.dvfs_speedup() - 1.97).abs() < 0.01);
    }

    #[test]
    fn all_phases_validate() {
        for w in Workload::all() {
            validate_phases(&w.phases);
            for p in &w.phases {
                assert!(p.mem_frac + p.sync_frac <= 1.0);
            }
        }
    }

    #[test]
    fn jacobi_and_leuk_have_low_service_variance() {
        // §3.2: low service-time variance for these two workloads.
        assert!(Workload::get(WorkloadKind::Jacobi).service_cov < 0.2);
        assert!(Workload::get(WorkloadKind::Leuk).service_cov < 0.2);
        assert!(Workload::get(WorkloadKind::Bfs).service_cov > 0.4);
    }

    #[test]
    fn jacobi_core_scaling_matches_paper_example() {
        // §3.3: full-run core-scaling speedup ~1.87X; sprinting only the
        // last ~11% of work gives a tail-phase speedup of ~1.5X.
        let j = Workload::get(WorkloadKind::Jacobi);
        let agg = crate::phase::aggregate_speedup(&j.phases, |p| p.core_speedup(2.0));
        assert!((agg - 1.87).abs() < 0.03, "aggregate {agg}");
        let (tail, _) = j.phase_at(0.95);
        let tail_speedup = tail.core_speedup(2.0);
        assert!((tail_speedup - 1.5).abs() < 0.05, "tail {tail_speedup}");
    }

    #[test]
    fn phase_at_walks_phases() {
        let j = Workload::get(WorkloadKind::Jacobi);
        let (p0, w0) = j.phase_at(0.0);
        assert_eq!(p0.frac, 0.08);
        assert_eq!(w0, 0.0);
        let (p1, _) = j.phase_at(0.5);
        assert_eq!(p1.frac, 0.81);
        let (p2, w2) = j.phase_at(1.0);
        assert_eq!(p2.frac, 0.11);
        assert_eq!(w2, 1.0);
    }

    #[test]
    fn parse_names_roundtrip() {
        for k in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::parse(k.name()), Some(k));
            assert_eq!(WorkloadKind::parse(&k.name().to_uppercase()), Some(k));
        }
        assert_eq!(WorkloadKind::parse("nope"), None);
    }

    #[test]
    fn service_dist_mean_matches() {
        let w = Workload::get(WorkloadKind::Knn);
        let mean = SimDuration::from_secs(90);
        let d = w.service_dist(mean);
        assert_eq!(d.mean(), mean);
    }

    #[test]
    fn speedups_ordered_as_in_table() {
        // Stream has the largest DVFS speedup, Leuk the smallest.
        let speedups: Vec<f64> = Workload::all().iter().map(|w| w.dvfs_speedup()).collect();
        let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
        let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
        assert_eq!(max, Workload::get(WorkloadKind::SparkStream).dvfs_speedup());
        assert_eq!(min, Workload::get(WorkloadKind::Leuk).dvfs_speedup());
    }
}
