//! House rules for causal tracing on the single-node testbed:
//!
//! 1. **Byte-invisible when disabled** — a plain supervised run, a
//!    recorded run, and a traced run of the same faulted scenario must
//!    agree bit-for-bit on every query record and counter. Tracing is
//!    an observer, never a participant.
//! 2. **Bit-identical across replay** — two traced runs from the same
//!    seed must produce identical telemetry, span for span, because
//!    span ids are derived from the run's own counters rather than any
//!    ambient state.

use faults::{FaultPlan, MessageFaults};
use mechanisms::Dvfs;
use obs::{FlightRecorder, SpanKind, TraceGraph};
use simcore::time::{Rate, SimDuration};
use testbed::{
    run_supervised, run_supervised_recorded, run_supervised_traced, ArrivalSpec, BudgetSpec,
    ServerConfig, SprintPolicy, SupervisorConfig,
};
use workloads::{QueryMix, WorkloadKind};

/// A faulted scenario busy enough to open sprint spans and link
/// message-fault causes: every sprint sticks on (watchdog recovery),
/// and the control channel both drops and delays messages.
fn setup(seed: u64) -> (ServerConfig, FaultPlan, SupervisorConfig) {
    let cfg = ServerConfig {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        arrivals: ArrivalSpec::poisson(Rate::per_hour(3.0)),
        policy: SprintPolicy::new(
            SimDuration::ZERO,
            BudgetSpec::Seconds(10.0),
            SimDuration::from_secs(1_000_000),
        ),
        slots: 1,
        num_queries: 60,
        warmup: 0,
        seed,
    };
    let plan = FaultPlan {
        seed: seed ^ 0x7AC3,
        stuck_sprint_prob: 1.0,
        messages: MessageFaults {
            drop_prob: 0.3,
            delay_prob: 0.3,
            delay_secs: 30.0,
            ..MessageFaults::default()
        },
        ..FaultPlan::default()
    };
    let sup = SupervisorConfig {
        watchdog_secs: 20.0,
        ..SupervisorConfig::default()
    };
    (cfg, plan, sup)
}

#[test]
fn disabled_tracing_is_byte_invisible() {
    for seed in [3u64, 17, 91] {
        let (cfg, plan, sup) = setup(seed);
        let plain = run_supervised(cfg.clone(), &Dvfs::new(), Some(plan.clone()), sup).unwrap();
        let recorded = run_supervised_recorded(
            cfg.clone(),
            &Dvfs::new(),
            Some(plan.clone()),
            sup,
            FlightRecorder::DEFAULT_CAPACITY,
        )
        .unwrap();
        let traced = run_supervised_traced(
            cfg,
            &Dvfs::new(),
            Some(plan),
            sup,
            FlightRecorder::DEFAULT_CAPACITY,
        )
        .unwrap();
        for (label, run) in [("recorded", &recorded), ("traced", &traced)] {
            assert_eq!(
                plain.records(),
                run.records(),
                "{label} records, seed {seed}"
            );
            assert_eq!(
                plain.fault_counters(),
                run.fault_counters(),
                "{label} fault counters, seed {seed}"
            );
            assert_eq!(
                plain.recovery_counters(),
                run.recovery_counters(),
                "{label} recovery counters, seed {seed}"
            );
            assert_eq!(
                plain.arrived(),
                run.arrived(),
                "{label} arrivals, seed {seed}"
            );
        }
    }
}

#[test]
fn traced_replay_is_bit_identical_and_carries_spans() {
    let (cfg, plan, sup) = setup(17);
    let mech = Dvfs::new();
    let run = run_supervised_traced(
        cfg.clone(),
        &mech,
        Some(plan.clone()),
        sup,
        FlightRecorder::DEFAULT_CAPACITY,
    )
    .unwrap();
    let replay = run_supervised_traced(
        cfg,
        &mech,
        Some(plan),
        sup,
        FlightRecorder::DEFAULT_CAPACITY,
    )
    .unwrap();
    assert_eq!(
        run.telemetry(),
        replay.telemetry(),
        "span ids derive from run counters, so replayed traces must match"
    );

    let telemetry = run.telemetry().expect("traced run carries telemetry");
    let graph = TraceGraph::from_telemetry(&[telemetry]);
    assert!(
        graph.spans().any(|s| s.kind == SpanKind::SprintEpisode),
        "stuck sprints must open sprint-episode spans"
    );
    assert!(
        !graph.links().is_empty(),
        "dropped/delayed control messages must record cause links"
    );
}
