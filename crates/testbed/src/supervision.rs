//! Supervision and self-healing for the testbed server.
//!
//! PR 1 taught the server to *suffer* faults; this module teaches it to
//! *recover* from them. A [`Supervisor`] closes the loop at three
//! points of the event loop:
//!
//! 1. **Sprint watchdog.** Every sprint engage arms a watchdog carrying
//!    a unique sprint token. If the same sprint is still engaged when
//!    the watchdog fires, the sprint is forcibly disengaged — bounding
//!    how much budget a stuck mechanism latch can overdraw.
//! 2. **Slot supervision.** A crashed execution slot is taken offline
//!    and restarted after a capped exponential backoff; a slot that
//!    keeps crashing is quarantined outright (never the last healthy
//!    slot — the server must retain capacity to drain). The in-flight
//!    query is requeued at the queue head, preserving FIFO order.
//! 3. **Admission control.** Arrivals pass a queue-depth ladder that
//!    degrades gracefully: past the shed watermark every other arrival
//!    is shed; past the reject watermark the server rejects everything
//!    and drains down to the drain watermark before recovering. The
//!    model-health breaker's [`HealthSignal`] folds into the same
//!    ladder: a degraded model tightens the watermarks, a failed model
//!    forbids sprinting entirely.
//!
//! Every intervention is counted in [`RecoveryCounters`], reported in
//! run metrics next to the fault counters, so the chaos harness can
//! check recovery efficacy machine-checkably. All decisions are pure
//! functions of observed state — the supervisor draws no randomness,
//! so supervised runs stay bit-identical across replays.

use simcore::{HealthSignal, SprintError};

/// Tunables for the testbed supervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// A sprint continuously engaged for longer than this is presumed
    /// stuck and forcibly disengaged.
    pub watchdog_secs: f64,
    /// Base restart delay after a slot crash; doubles per crash on the
    /// same slot (capped exponential backoff).
    pub restart_backoff_secs: f64,
    /// Upper bound on the restart backoff.
    pub restart_backoff_cap_secs: f64,
    /// Crashes on one slot before it is quarantined instead of
    /// restarted. The last non-quarantined slot is never quarantined.
    pub quarantine_after: u32,
    /// Queue depth at which the server starts shedding every other
    /// arrival.
    pub shed_watermark: usize,
    /// Queue depth at which the server rejects all arrivals and enters
    /// drain mode.
    pub reject_watermark: usize,
    /// Queue depth at which drain mode exits back to normal admission.
    pub drain_watermark: usize,
    /// Verdict from the model-health breaker, folded into the ladder:
    /// `Degraded` halves the shed/reject watermarks, `Failed`
    /// additionally forbids sprint engages.
    pub model_health: HealthSignal,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            watchdog_secs: 240.0,
            restart_backoff_secs: 1.0,
            restart_backoff_cap_secs: 60.0,
            quarantine_after: 3,
            shed_watermark: 8,
            reject_watermark: 16,
            drain_watermark: 4,
            model_health: HealthSignal::Healthy,
        }
    }
}

impl SupervisorConfig {
    /// Validates every field, returning the first violation.
    pub fn validate(&self) -> Result<(), SprintError> {
        SprintError::require_positive("SupervisorConfig::watchdog_secs", self.watchdog_secs)?;
        SprintError::require_positive(
            "SupervisorConfig::restart_backoff_secs",
            self.restart_backoff_secs,
        )?;
        SprintError::require_positive(
            "SupervisorConfig::restart_backoff_cap_secs",
            self.restart_backoff_cap_secs,
        )?;
        if self.restart_backoff_cap_secs < self.restart_backoff_secs {
            return Err(SprintError::invalid(
                "SupervisorConfig::restart_backoff_cap_secs",
                format!(
                    "cap {} must be >= base backoff {}",
                    self.restart_backoff_cap_secs, self.restart_backoff_secs
                ),
            ));
        }
        SprintError::require_nonzero(
            "SupervisorConfig::quarantine_after",
            self.quarantine_after as usize,
        )?;
        SprintError::require_nonzero("SupervisorConfig::shed_watermark", self.shed_watermark)?;
        if self.reject_watermark < self.shed_watermark {
            return Err(SprintError::invalid(
                "SupervisorConfig::reject_watermark",
                format!(
                    "reject watermark {} must be >= shed watermark {}",
                    self.reject_watermark, self.shed_watermark
                ),
            ));
        }
        if self.drain_watermark >= self.reject_watermark {
            return Err(SprintError::invalid(
                "SupervisorConfig::drain_watermark",
                format!(
                    "drain watermark {} must be < reject watermark {} for hysteresis",
                    self.drain_watermark, self.reject_watermark
                ),
            ));
        }
        Ok(())
    }
}

/// Per-run counts of every supervisor intervention, reported in
/// [`RunResult`](crate::metrics::RunResult) next to the fault counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryCounters {
    /// Crashed slots brought back after a backoff delay.
    pub slot_restarts: u64,
    /// Slots permanently taken out of rotation for repeated crashes.
    pub quarantines: u64,
    /// Sprints forcibly disengaged by the watchdog.
    pub forced_unsprints: u64,
    /// Arrivals shed by the admission ladder (shedding mode).
    pub shed_queries: u64,
    /// Arrivals rejected by the admission ladder (drain mode).
    pub rejected_queries: u64,
    /// In-flight queries requeued at the queue head after a crash.
    pub requeued_queries: u64,
    /// Simulated seconds spent in a degraded admission mode.
    pub degraded_secs: f64,
}

impl RecoveryCounters {
    /// Arrivals turned away (shed + rejected).
    pub fn turned_away(&self) -> u64 {
        self.shed_queries + self.rejected_queries
    }

    /// Component-wise sum with another counter set, for aggregating
    /// counters across runs.
    pub fn merged(&self, other: &RecoveryCounters) -> RecoveryCounters {
        RecoveryCounters {
            slot_restarts: self.slot_restarts + other.slot_restarts,
            quarantines: self.quarantines + other.quarantines,
            forced_unsprints: self.forced_unsprints + other.forced_unsprints,
            shed_queries: self.shed_queries + other.shed_queries,
            rejected_queries: self.rejected_queries + other.rejected_queries,
            requeued_queries: self.requeued_queries + other.requeued_queries,
            degraded_secs: self.degraded_secs + other.degraded_secs,
        }
    }

    /// Total discrete interventions of any kind.
    pub fn total(&self) -> u64 {
        self.slot_restarts
            + self.quarantines
            + self.forced_unsprints
            + self.shed_queries
            + self.rejected_queries
            + self.requeued_queries
    }
}

/// Verdict of the admission ladder for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Enqueue normally.
    Admit,
    /// Turn the arrival away to relieve pressure (shedding mode).
    Shed,
    /// Turn the arrival away unconditionally (drain mode).
    Reject,
}

/// What to do with a slot that just crashed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlotDirective {
    /// Bring the slot back after `delay_secs` of downtime.
    Restart {
        /// Backoff delay before the slot accepts work again.
        delay_secs: f64,
    },
    /// Take the slot out of rotation permanently.
    Quarantine,
}

/// Admission-ladder state, from least to most degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DegradedMode {
    Normal,
    Shedding,
    Draining,
}

#[derive(Debug, Clone, Copy, Default)]
struct SlotHealth {
    crashes: u32,
    down: bool,
    quarantined: bool,
}

/// Deterministic recovery engine consulted by the server event loop.
#[derive(Debug, Clone)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    slots: Vec<SlotHealth>,
    mode: DegradedMode,
    shed_parity: u64,
    degraded_since_secs: Option<f64>,
    next_token: u64,
    counters: RecoveryCounters,
}

impl Supervisor {
    /// Validates the configuration and builds a supervisor for a server
    /// with `num_slots` execution slots.
    pub fn new(cfg: SupervisorConfig, num_slots: usize) -> Result<Supervisor, SprintError> {
        cfg.validate()?;
        SprintError::require_nonzero("Supervisor::num_slots", num_slots)?;
        Ok(Supervisor {
            cfg,
            slots: vec![SlotHealth::default(); num_slots],
            mode: DegradedMode::Normal,
            shed_parity: 0,
            degraded_since_secs: None,
            next_token: 0,
            counters: RecoveryCounters::default(),
        })
    }

    /// The configuration this supervisor runs.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Counters accumulated so far (degraded time excludes any interval
    /// still open; see [`Supervisor::finalize`]).
    pub fn counters(&self) -> RecoveryCounters {
        self.counters
    }

    /// Watermark adjusted for model health: a degraded or failed model
    /// halves the threshold (floored at 1) so backpressure kicks in
    /// earlier when predictions are suspect.
    fn effective(&self, watermark: usize) -> usize {
        match self.cfg.model_health {
            HealthSignal::Healthy => watermark,
            HealthSignal::Degraded | HealthSignal::Failed => (watermark / 2).max(1),
        }
    }

    /// Whether sprint engages are allowed at all. A failed model health
    /// signal forbids sprinting — the breaker's `NoSprint` rung and the
    /// supervisor agree on one decision.
    pub fn sprint_allowed(&self) -> bool {
        !self.cfg.model_health.is_failed()
    }

    /// Seconds a sprint may stay continuously engaged before the
    /// watchdog forces it off.
    pub fn watchdog_secs(&self) -> f64 {
        self.cfg.watchdog_secs
    }

    /// Issues a fresh sprint token. Tokens start at 1 so a
    /// default-initialized slot can never match a live watchdog.
    pub fn next_sprint_token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Records a watchdog-forced unsprint.
    pub fn record_forced_unsprint(&mut self) {
        self.counters.forced_unsprints += 1;
    }

    /// The current admission-ladder mode as a flight-recorder value.
    /// The server samples this around [`Supervisor::admit`] to emit
    /// `admission-mode-changed` events without the supervisor holding a
    /// recorder itself.
    pub fn admission_mode(&self) -> obs::AdmissionMode {
        match self.mode {
            DegradedMode::Normal => obs::AdmissionMode::Normal,
            DegradedMode::Shedding => obs::AdmissionMode::Shedding,
            DegradedMode::Draining => obs::AdmissionMode::Draining,
        }
    }

    /// Runs one arrival through the admission ladder at queue depth
    /// `queue_len`, transitioning modes with hysteresis.
    pub fn admit(&mut self, queue_len: usize, now_secs: f64) -> AdmitOutcome {
        let shed_w = self.effective(self.cfg.shed_watermark);
        let reject_w = self.effective(self.cfg.reject_watermark);
        let out = match self.mode {
            DegradedMode::Normal => {
                if queue_len >= reject_w {
                    self.enter(DegradedMode::Draining, now_secs);
                    AdmitOutcome::Reject
                } else if queue_len >= shed_w {
                    self.enter(DegradedMode::Shedding, now_secs);
                    // Parity 1 sheds the entering arrival, admits the
                    // next — a deterministic every-other cadence with
                    // no randomness.
                    self.shed_parity = 1;
                    AdmitOutcome::Shed
                } else {
                    AdmitOutcome::Admit
                }
            }
            DegradedMode::Shedding => {
                if queue_len >= reject_w {
                    self.enter(DegradedMode::Draining, now_secs);
                    AdmitOutcome::Reject
                } else if queue_len < shed_w {
                    self.enter(DegradedMode::Normal, now_secs);
                    AdmitOutcome::Admit
                } else {
                    self.shed_parity += 1;
                    if self.shed_parity.is_multiple_of(2) {
                        AdmitOutcome::Admit
                    } else {
                        AdmitOutcome::Shed
                    }
                }
            }
            DegradedMode::Draining => {
                if queue_len <= self.cfg.drain_watermark {
                    self.enter(DegradedMode::Normal, now_secs);
                    AdmitOutcome::Admit
                } else {
                    AdmitOutcome::Reject
                }
            }
        };
        match out {
            AdmitOutcome::Admit => {}
            AdmitOutcome::Shed => self.counters.shed_queries += 1,
            AdmitOutcome::Reject => self.counters.rejected_queries += 1,
        }
        out
    }

    fn enter(&mut self, mode: DegradedMode, now_secs: f64) {
        if self.mode == mode {
            return;
        }
        let was_degraded = self.mode != DegradedMode::Normal;
        let is_degraded = mode != DegradedMode::Normal;
        if !was_degraded && is_degraded {
            self.degraded_since_secs = Some(now_secs);
        } else if was_degraded && !is_degraded {
            if let Some(t0) = self.degraded_since_secs.take() {
                self.counters.degraded_secs += now_secs - t0;
            }
        }
        self.mode = mode;
    }

    /// Handles a crash on `slot` whose in-flight query was requeued:
    /// quarantine it after repeated crashes (never the last healthy
    /// slot), otherwise schedule a restart after capped exponential
    /// backoff.
    pub fn on_crash(&mut self, slot: usize) -> SlotDirective {
        self.counters.requeued_queries += 1;
        let others_left = self
            .slots
            .iter()
            .enumerate()
            .any(|(i, h)| i != slot && !h.quarantined);
        let h = &mut self.slots[slot];
        h.crashes += 1;
        if h.crashes >= self.cfg.quarantine_after && others_left {
            h.quarantined = true;
            h.down = true;
            self.counters.quarantines += 1;
            return SlotDirective::Quarantine;
        }
        h.down = true;
        self.counters.slot_restarts += 1;
        let doublings = (h.crashes.saturating_sub(1)).min(20);
        let delay = (self.cfg.restart_backoff_secs * f64::powi(2.0, doublings as i32))
            .min(self.cfg.restart_backoff_cap_secs);
        SlotDirective::Restart { delay_secs: delay }
    }

    /// Marks a restarted slot as back in rotation.
    pub fn on_slot_up(&mut self, slot: usize) {
        let h = &mut self.slots[slot];
        if !h.quarantined {
            h.down = false;
        }
    }

    /// Whether `slot` may accept a dispatch right now.
    pub fn slot_available(&self, slot: usize) -> bool {
        let h = &self.slots[slot];
        !h.down && !h.quarantined
    }

    /// Whether `slot` has been quarantined.
    pub fn is_quarantined(&self, slot: usize) -> bool {
        self.slots[slot].quarantined
    }

    /// Closes any open degraded interval at `end_secs` and returns the
    /// final counters.
    pub fn finalize(&mut self, end_secs: f64) -> RecoveryCounters {
        if let Some(t0) = self.degraded_since_secs.take() {
            self.counters.degraded_secs += end_secs - t0;
        }
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup(cfg: SupervisorConfig, slots: usize) -> Supervisor {
        Supervisor::new(cfg, slots).unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_ladders() {
        let bad = |f: fn(&mut SupervisorConfig)| {
            let mut c = SupervisorConfig::default();
            f(&mut c);
            c.validate()
        };
        assert!(SupervisorConfig::default().validate().is_ok());
        assert!(bad(|c| c.watchdog_secs = 0.0).is_err());
        assert!(bad(|c| c.restart_backoff_secs = -1.0).is_err());
        assert!(bad(|c| c.restart_backoff_cap_secs = 0.1).is_err());
        assert!(bad(|c| c.quarantine_after = 0).is_err());
        assert!(bad(|c| c.shed_watermark = 0).is_err());
        assert!(bad(|c| c.reject_watermark = 2).is_err());
        assert!(bad(|c| c.drain_watermark = 100).is_err());
    }

    #[test]
    fn ladder_degrades_and_recovers_with_hysteresis() {
        let cfg = SupervisorConfig {
            shed_watermark: 4,
            reject_watermark: 8,
            drain_watermark: 2,
            ..SupervisorConfig::default()
        };
        let mut s = sup(cfg, 1);
        assert_eq!(s.admit(0, 0.0), AdmitOutcome::Admit);
        assert_eq!(s.admit(3, 1.0), AdmitOutcome::Admit);
        // Crossing the shed watermark sheds every other arrival.
        assert_eq!(s.admit(4, 2.0), AdmitOutcome::Shed);
        assert_eq!(s.admit(5, 3.0), AdmitOutcome::Admit);
        assert_eq!(s.admit(5, 4.0), AdmitOutcome::Shed);
        // Crossing the reject watermark rejects everything...
        assert_eq!(s.admit(8, 5.0), AdmitOutcome::Reject);
        assert_eq!(s.admit(7, 6.0), AdmitOutcome::Reject);
        assert_eq!(s.admit(3, 7.0), AdmitOutcome::Reject);
        // ...until the queue drains to the drain watermark.
        assert_eq!(s.admit(2, 8.0), AdmitOutcome::Admit);
        let c = s.finalize(8.0);
        assert_eq!(c.shed_queries, 2);
        assert_eq!(c.rejected_queries, 3);
        assert!((c.degraded_secs - 6.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_model_tightens_watermarks_and_failed_forbids_sprints() {
        let cfg = SupervisorConfig {
            shed_watermark: 8,
            reject_watermark: 16,
            drain_watermark: 2,
            model_health: HealthSignal::Degraded,
            ..SupervisorConfig::default()
        };
        let mut s = sup(cfg, 1);
        assert!(s.sprint_allowed());
        // Effective shed watermark is 4, not 8.
        assert_eq!(s.admit(4, 0.0), AdmitOutcome::Shed);

        let failed = SupervisorConfig {
            model_health: HealthSignal::Failed,
            ..SupervisorConfig::default()
        };
        assert!(!sup(failed, 1).sprint_allowed());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = SupervisorConfig {
            restart_backoff_secs: 2.0,
            restart_backoff_cap_secs: 7.0,
            quarantine_after: 10,
            ..SupervisorConfig::default()
        };
        let mut s = sup(cfg, 2);
        assert_eq!(s.on_crash(0), SlotDirective::Restart { delay_secs: 2.0 });
        assert!(!s.slot_available(0));
        s.on_slot_up(0);
        assert!(s.slot_available(0));
        assert_eq!(s.on_crash(0), SlotDirective::Restart { delay_secs: 4.0 });
        assert_eq!(s.on_crash(0), SlotDirective::Restart { delay_secs: 7.0 });
        assert_eq!(s.on_crash(0), SlotDirective::Restart { delay_secs: 7.0 });
        assert_eq!(s.counters().slot_restarts, 4);
    }

    #[test]
    fn quarantine_after_repeated_crashes_but_never_the_last_slot() {
        let cfg = SupervisorConfig {
            quarantine_after: 2,
            ..SupervisorConfig::default()
        };
        let mut s = sup(cfg, 2);
        assert!(matches!(s.on_crash(1), SlotDirective::Restart { .. }));
        assert_eq!(s.on_crash(1), SlotDirective::Quarantine);
        assert!(s.is_quarantined(1));
        assert!(!s.slot_available(1));
        // A quarantined slot stays down even if told to come up.
        s.on_slot_up(1);
        assert!(!s.slot_available(1));
        // Slot 0 is now the last healthy slot: it keeps restarting no
        // matter how often it crashes.
        for _ in 0..10 {
            assert!(matches!(s.on_crash(0), SlotDirective::Restart { .. }));
        }
        assert!(!s.is_quarantined(0));
        assert_eq!(s.counters().quarantines, 1);
    }

    #[test]
    fn finalize_closes_open_degraded_interval() {
        let cfg = SupervisorConfig {
            shed_watermark: 1,
            reject_watermark: 16,
            drain_watermark: 0,
            ..SupervisorConfig::default()
        };
        let mut s = sup(cfg, 1);
        assert_eq!(s.admit(5, 10.0), AdmitOutcome::Shed);
        let c = s.finalize(25.0);
        assert!((c.degraded_secs - 15.0).abs() < 1e-12);
        assert_eq!(c.turned_away(), 1);
        assert_eq!(c.total(), 1);
    }
}
