//! Shared sprinting budget with lazy accrual/drain accounting.
//!
//! The budget is a pool of sprint-seconds shared by all query
//! executions (§1). It drains one second per second for each currently
//! sprinting execution and refills toward capacity while nothing is
//! sprinting — matching the paper's "after refill time elapses without
//! sprinting, the budget ... reaches full capacity" (§3).

use simcore::time::SimTime;
use simcore::SprintError;

/// Sprint budget state, updated lazily at event times.
#[derive(Debug, Clone)]
pub struct Budget {
    capacity: f64,
    level: f64,
    refill_secs: f64,
    sprinting: usize,
    last: SimTime,
}

impl Budget {
    /// Creates a full budget.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] if `capacity` is negative
    /// or NaN (infinite capacity is legal — the unlimited budget), or if
    /// `refill_secs` is NaN, infinite, or not strictly positive.
    pub fn new(capacity: f64, refill_secs: f64) -> Result<Budget, SprintError> {
        SprintError::require_non_negative("Budget::capacity", capacity)?;
        if refill_secs.is_nan() {
            return Err(SprintError::invalid(
                "Budget::refill_secs",
                "must not be NaN",
            ));
        }
        SprintError::require_positive("Budget::refill_secs", refill_secs)?;
        Ok(Budget {
            capacity,
            level: capacity,
            refill_secs,
            sprinting: 0,
            last: SimTime::ZERO,
        })
    }

    /// Brings the level up to date at `now`.
    pub fn update(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "budget time went backwards");
        let dt = now.since(self.last).as_secs_f64();
        self.last = now;
        if self.capacity.is_infinite() {
            return;
        }
        if self.sprinting == 0 {
            self.level = (self.level + self.capacity / self.refill_secs * dt).min(self.capacity);
        } else {
            self.level = (self.level - self.sprinting as f64 * dt).max(0.0);
        }
    }

    /// Current level in sprint-seconds (after the last `update`).
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Budget capacity in sprint-seconds.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Whether a usable amount of sprint-seconds remains. Levels below
    /// one microsecond (the simulation resolution) count as empty so
    /// exhaustion events cannot round to zero-length.
    pub fn available(&self) -> bool {
        self.level > 1e-6 || self.capacity.is_infinite()
    }

    /// Number of executions currently draining the budget.
    pub fn sprinting(&self) -> usize {
        self.sprinting
    }

    /// Registers a sprint start. Call `update` first.
    pub fn start_sprint(&mut self) {
        self.sprinting += 1;
    }

    /// Registers a sprint end. Call `update` first.
    ///
    /// # Panics
    ///
    /// Panics if no sprint is active.
    pub fn end_sprint(&mut self) {
        assert!(self.sprinting > 0, "no active sprint to end");
        self.sprinting -= 1;
    }

    /// Seconds until the pool empties at the current drain rate, or
    /// `None` if it is not draining (nothing sprinting, or unlimited).
    pub fn seconds_to_exhaustion(&self) -> Option<f64> {
        if self.sprinting == 0 || self.capacity.is_infinite() {
            None
        } else {
            Some(self.level / self.sprinting as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn starts_full() {
        let b = Budget::new(100.0, 500.0).unwrap();
        assert_eq!(b.level(), 100.0);
        assert!(b.available());
    }

    #[test]
    fn drains_while_sprinting() {
        let mut b = Budget::new(100.0, 500.0).unwrap();
        b.update(t(0));
        b.start_sprint();
        b.update(t(30));
        assert!((b.level() - 70.0).abs() < 1e-9);
        assert_eq!(b.seconds_to_exhaustion(), Some(70.0));
    }

    #[test]
    fn two_sprints_drain_twice_as_fast() {
        let mut b = Budget::new(100.0, 500.0).unwrap();
        b.start_sprint();
        b.start_sprint();
        b.update(t(20));
        assert!((b.level() - 60.0).abs() < 1e-9);
        assert_eq!(b.seconds_to_exhaustion(), Some(30.0));
    }

    #[test]
    fn refills_when_idle() {
        let mut b = Budget::new(100.0, 500.0).unwrap();
        b.start_sprint();
        b.update(t(50)); // Level 50.
        b.end_sprint();
        b.update(t(50) + SimDuration::from_secs(125));
        // Refill rate = 100/500 = 0.2/s, so +25 over 125 s.
        assert!((b.level() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = Budget::new(100.0, 500.0).unwrap();
        b.start_sprint();
        b.update(t(10));
        b.end_sprint();
        b.update(t(10_000));
        assert_eq!(b.level(), 100.0);
    }

    #[test]
    fn drain_floors_at_zero() {
        let mut b = Budget::new(10.0, 100.0).unwrap();
        b.start_sprint();
        b.update(t(50));
        assert_eq!(b.level(), 0.0);
        assert!(!b.available());
    }

    #[test]
    fn no_refill_while_sprinting() {
        // Per the paper, refill requires time *without* sprinting.
        let mut b = Budget::new(100.0, 100.0).unwrap();
        b.start_sprint();
        b.update(t(30));
        assert!((b.level() - 70.0).abs() < 1e-9);
        // Still sprinting: continues to drain, never accrues.
        b.update(t(60));
        assert!((b.level() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut b = Budget::new(f64::INFINITY, 100.0).unwrap();
        b.start_sprint();
        b.update(t(1_000_000));
        assert!(b.available());
        assert_eq!(b.seconds_to_exhaustion(), None);
    }

    #[test]
    #[should_panic(expected = "no active sprint")]
    fn end_without_start_panics() {
        let mut b = Budget::new(10.0, 10.0).unwrap();
        b.end_sprint();
    }

    #[test]
    fn rejects_invalid_capacity() {
        assert!(Budget::new(-1.0, 10.0).is_err());
        assert!(Budget::new(f64::NAN, 10.0).is_err());
        // Zero capacity is a legal (always-empty) budget.
        assert!(Budget::new(0.0, 10.0).is_ok());
    }

    #[test]
    fn rejects_invalid_refill() {
        assert!(Budget::new(10.0, f64::NAN).is_err());
        assert!(Budget::new(10.0, f64::INFINITY).is_err());
        assert!(Budget::new(10.0, 0.0).is_err());
        assert!(Budget::new(10.0, -5.0).is_err());
    }
}
