//! The queue manager + execution engine event loop (Fig. 3).
//!
//! Queries arrive at the queue manager, which timestamps them, holds
//! them FIFO, schedules a timeout interrupt per query, dispatches to a
//! free execution-engine slot, and accounts sprint time against the
//! shared budget. All transitions happen at discrete events popped from
//! a single deterministic [`Reactor`] — one event queue, one virtual
//! clock, every RNG stream derived from one root seed — so the
//! simulation is exact and deterministic for a given seed, and a
//! journaled run replays bit-identically from `(seed, plan)`.
//!
//! Control traffic between the actors (sprint controller, budget
//! sensor, watchdog) travels through a simulated network the fault
//! plan's [`faults::MessageFaults`] can perturb: budget telemetry and
//! watchdog force-unsprint commands can be delayed, dropped, duplicated
//! or partitioned away. Without message faults every control message
//! delivers inline at the send site — bit-identical to the direct
//! method calls the server used before the reactor refactor.

use crate::budget::Budget;
use crate::engine::{ExecMode, ExecutionState};
use crate::metrics::RunResult;
use crate::policy::ServerConfig;
use crate::query::QueryRecord;
use crate::supervision::{AdmitOutcome, SlotDirective, Supervisor, SupervisorConfig};
use faults::{EngageOutcome, FaultInjector, FaultPlan, Peer};
use mechanisms::Mechanism;
use obs::{CauseReason, EventKind, FlightRecorder, SpanKind, SpanOutcome, UnsprintReason};
use reactor::entropy::ns;
use reactor::{Delivery, EntropyTower, Journal, Reactor};
use simcore::dist::Dist;
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use simcore::SprintError;
use std::collections::VecDeque;
use workloads::{Workload, WorkloadKind};

/// Fixed queue-manager dispatch overhead (HTTP hand-off, bookkeeping).
pub const DISPATCH_BASE_SECS: f64 = 0.05;

/// Additional dispatch overhead per query currently waiting — the
/// queue manager slows down as its queue grows. One of the
/// load-dependent runtime effects the first-principles simulator does
/// not model.
pub const DISPATCH_PER_QUEUED_SECS: f64 = 0.01;

/// Cost of servicing one timeout interrupt: the queue manager wakes,
/// checks the budget and round-trips to the execution engine over
/// HTTP. The work accumulates as "manager debt" paid at the next
/// dispatch — at high utilization nearly every query's timer fires, so
/// this is a load-dependent drag the first-principles simulator does
/// not model (the paper's runtime factor "queue length when sprinting
/// begins").
pub const INTERRUPT_COST_SECS: f64 = 1.0;

/// Fraction of the mechanism toggle paid when a sprint engages at
/// dispatch (the transition overlaps the dispatch hand-off); mid-run
/// sprints pay the full toggle.
pub const DISPATCH_SPRINT_TOGGLE_FRAC: f64 = 0.25;

/// Execution slowdown per queued query: each waiting query adds
/// manager polling, timer bookkeeping and HTTP chatter that steal CPU
/// from the execution engine. Long queues therefore drag processing —
/// the queueing/processing interdependence (§1) that the
/// first-principles simulator cannot see and the effective sprint rate
/// must absorb.
pub const QUEUE_DRAG_PER_QUERY: f64 = 0.006;

/// Queue length beyond which the drag saturates: the manager's own
/// time slice bounds how much CPU its chatter can steal, so the
/// slowdown cannot grow without limit (unbounded drag would also push
/// a 95%-utilized server into runaway instability that no finite
/// replay could characterize).
pub const QUEUE_DRAG_SATURATION: usize = 12;

/// Events driving the server.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A new query reaches the queue manager.
    Arrival,
    /// The timeout interrupt for query `id` fires.
    Timeout(u64),
    /// Something about slot `slot` needs resolving (stall end, budget
    /// exhaustion, or completion); stale generations are ignored.
    Slot { slot: usize, gen: u64 },
    /// Fault injection: the execution in `slot` crashes while running
    /// `query`. Matched by query id, so the event goes stale if the
    /// query completed first.
    Crash { slot: usize, query: u64 },
    /// Fault injection: a thermal emergency forces every sprinting
    /// execution back to the sustained rate.
    Thermal,
    /// Supervision: slot `slot` finishes its restart backoff and comes
    /// back into rotation.
    SlotUp { slot: usize },
    /// Supervision: the watchdog armed by the sprint engage that issued
    /// `token` on `slot` fires; if that same sprint is still engaged it
    /// is forcibly disengaged. Stale tokens are ignored.
    Watchdog { slot: usize, token: u64 },
    /// A control message reaches its destination after in-flight delay
    /// (scheduled only when the fault plan delays or duplicates it;
    /// inline deliveries never become events). The endpoints are read
    /// only through the journal's `Debug` rendering, where they label
    /// which link the delivery crossed.
    Msg {
        #[allow(dead_code)]
        from: Peer,
        #[allow(dead_code)]
        to: Peer,
        msg: CtrlMsg,
    },
}

/// Typed control-plane messages the actors exchange through the
/// simulated network.
#[derive(Debug, Clone, Copy)]
enum CtrlMsg {
    /// Watchdog -> controller: force the sprint armed with `token` off
    /// `slot`. Stale tokens are ignored on receipt, which also makes
    /// duplicated commands idempotent.
    ForceUnsprint { slot: usize, token: u64 },
    /// Budget sensor -> controller: the sensed reserve level, in
    /// integer microseconds of sprint time (integer so journal entries
    /// compare exactly).
    BudgetReport { level_us: u64 },
}

/// Where a query currently is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum QueryState {
    Queued,
    Running(usize),
    Done,
}

#[derive(Debug)]
struct QueryInfo {
    kind: WorkloadKind,
    arrival: SimTime,
    service_secs: f64,
    timed_out: bool,
    state: QueryState,
    dispatch: SimTime,
    /// Crash-requeue count (fault injection).
    retries: u32,
}

#[derive(Debug)]
struct Slot {
    query: u64,
    engine: ExecutionState,
    gen: u64,
    /// Fault injection: the sprint latch is stuck on — budget
    /// exhaustion no longer disengages it (only completion or a thermal
    /// emergency does).
    stuck: bool,
    /// Token of the sprint engage currently active on this slot; `0`
    /// when the slot has never engaged. Watchdog events carry the token
    /// they were armed with so they go stale once the sprint ends.
    sprint_token: u64,
}

/// The testbed server simulator.
pub struct Server<'m> {
    cfg: ServerConfig,
    mech: &'m dyn Mechanism,
    reactor: Reactor<Ev>,
    queue: VecDeque<u64>,
    slots: Vec<Option<Slot>>,
    budget: Budget,
    queries: Vec<QueryInfo>,
    records: Vec<QueryRecord>,
    arrivals_left: usize,
    next_arrival_gap: Dist,
    arrival_rng: SimRng,
    service_rng: SimRng,
    mix_rng: SimRng,
    next_gen: u64,
    /// Accumulated interrupt-servicing time the queue manager owes;
    /// paid as extra overhead at the next dispatch.
    manager_debt_secs: f64,
    /// The controller's last *delivered* budget reading, in seconds.
    /// Fresh readings travel as [`CtrlMsg::BudgetReport`] messages; when
    /// the fault plan delays or drops a report, the controller keeps
    /// acting on this stale cache — sprinting blind past exhaustion or
    /// starving while budget is actually available.
    budget_cache_secs: f64,
    /// Fault injector; `None` runs the pristine server. A no-op plan
    /// threads through the same code paths without consuming any
    /// randomness, so its output is bit-identical to `None`.
    faults: Option<FaultInjector>,
    /// Recovery engine; `None` runs the unsupervised server (the
    /// pre-supervision behaviour, bit for bit).
    supervisor: Option<Supervisor>,
    /// External sprint permit (fleet lease gate). `true` by default;
    /// when revoked, new sprint engages are forbidden exactly as if the
    /// model-health breaker had tripped. Already-running sprints are
    /// not disengaged by the flag alone — callers pair a revocation
    /// with [`Server::force_unsprint_all`] when fail-safe demands it.
    sprint_permit: bool,
    /// Whether [`Server::prime`] has scheduled the initial events.
    primed: bool,
    /// Events processed so far (the event-storm safety valve).
    iterations: u64,
    /// Virtual time of the most recently processed event.
    end: SimTime,
    /// Slots knocked offline by an *unsupervised* crash, awaiting the
    /// fault plan's out-of-band repair. Supervised runs track downness
    /// in the supervisor instead and never set these flags.
    down: Vec<bool>,
    /// Flight recorder; `None` (the default) records nothing. The
    /// recorder is a pure observer — it draws no randomness and
    /// schedules no events — so a recorded run is bit-identical to an
    /// unrecorded one.
    recorder: Option<FlightRecorder>,
    /// Causal tracer; `None` (the default) traces nothing. Like the
    /// recorder it only writes events, so a traced run is bit-identical
    /// to an untraced one.
    tracer: Option<NodeTracer>,
    /// Node id for per-node metrics scoping; `None` increments only the
    /// process-global registry.
    metrics_scope: Option<u32>,
}

/// Pending-cause list bound: fault links observed before any sprint
/// span is open are held for the next engage; the bound keeps a
/// never-engaging run from growing the list without limit.
const MAX_PENDING_CAUSES: usize = 16;

/// Causal-span emitter for one server (one fleet node, or a standalone
/// run as node 0). Span ids are `(node+1) << 32 | seq` with `seq`
/// assigned in engage order, so they are bit-identical across replays
/// and never collide across nodes sharing a trace. A pure observer:
/// writes [`EventKind::SpanOpened`]/[`EventKind::SpanClosed`]/
/// [`EventKind::CauseLinked`] into the attached recorder and draws no
/// randomness.
#[derive(Debug)]
struct NodeTracer {
    node: u32,
    next_seq: u64,
    /// Parent span for sprint episodes (the node's lease span in a
    /// fleet run; 0 standalone).
    parent: u64,
    /// Open sprint-episode span per slot (0 = none).
    open: Vec<u64>,
    /// Fault causes sensed before the affected sprint span opened
    /// (e.g. a dropped budget report while idle); attached to the next
    /// opened span.
    pending: Vec<CauseReason>,
}

impl NodeTracer {
    fn new(node: u32, slots: usize) -> NodeTracer {
        NodeTracer {
            node,
            next_seq: 0,
            parent: 0,
            open: vec![0; slots],
            pending: Vec::new(),
        }
    }

    /// Opens a sprint-episode span on `slot`, attaching any causes
    /// sensed while no span was open.
    fn open_sprint(&mut self, rec: &mut Option<FlightRecorder>, at: SimTime, slot: usize) {
        self.next_seq += 1;
        let span = ((self.node as u64 + 1) << 32) | self.next_seq;
        self.open[slot] = span;
        note(
            rec,
            at,
            EventKind::SpanOpened {
                span,
                parent: self.parent,
                kind: SpanKind::SprintEpisode,
                node: self.node,
            },
        );
        for reason in self.pending.drain(..) {
            note(
                rec,
                at,
                EventKind::CauseLinked {
                    effect: span,
                    cause: 0,
                    reason,
                },
            );
        }
    }

    /// Closes the sprint-episode span open on `slot`, if any. A lease
    /// lapse additionally links the episode back to the lease span that
    /// lapsed (the trace parent), so fleet traces connect the forced
    /// unsprint to its lease lifecycle.
    fn close_sprint(
        &mut self,
        rec: &mut Option<FlightRecorder>,
        at: SimTime,
        slot: usize,
        outcome: SpanOutcome,
    ) {
        let span = std::mem::take(&mut self.open[slot]);
        if span == 0 {
            return;
        }
        if outcome == SpanOutcome::LeaseLapsed && self.parent != 0 {
            note(
                rec,
                at,
                EventKind::CauseLinked {
                    effect: span,
                    cause: self.parent,
                    reason: CauseReason::LeaseLapse,
                },
            );
        }
        note(rec, at, EventKind::SpanClosed { span, outcome });
    }

    /// Records a control-plane fault as a cause of the sprint episode
    /// on `slot` (or of any open episode, else the next one opened,
    /// when the fault is not slot-addressed).
    fn fault(
        &mut self,
        rec: &mut Option<FlightRecorder>,
        at: SimTime,
        slot: Option<usize>,
        reason: CauseReason,
    ) {
        let effect = match slot {
            Some(s) => self.open[s],
            None => self.open.iter().copied().find(|&s| s != 0).unwrap_or(0),
        };
        if effect != 0 {
            note(
                rec,
                at,
                EventKind::CauseLinked {
                    effect,
                    cause: 0,
                    reason,
                },
            );
        } else if self.pending.len() < MAX_PENDING_CAUSES {
            self.pending.push(reason);
        }
    }
}

/// Records an event if a recorder is attached. A free function over
/// the field (rather than a `&mut self` method) so emission sites can
/// coexist with outstanding borrows of other server fields.
fn note(recorder: &mut Option<FlightRecorder>, at: SimTime, kind: EventKind) {
    if let Some(r) = recorder.as_mut() {
        r.record(at, kind);
    }
}

/// Looks up a slot the event logic requires to be occupied, turning a
/// broken invariant into a typed error instead of a panic.
fn occupied<'s>(
    slots: &'s mut [Option<Slot>],
    slot: usize,
    ctx: &'static str,
) -> Result<&'s mut Slot, SprintError> {
    slots
        .get_mut(slot)
        .and_then(Option::as_mut)
        .ok_or_else(|| SprintError::runtime(ctx, format!("slot {slot} unexpectedly empty")))
}

impl<'m> Server<'m> {
    /// Builds a server for the given configuration and mechanism.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] if the configuration has
    /// zero slots, zero queries, or a budget/refill the policy cannot
    /// realize.
    pub fn new(cfg: ServerConfig, mech: &'m dyn Mechanism) -> Result<Server<'m>, SprintError> {
        SprintError::require_nonzero("ServerConfig::slots", cfg.slots)?;
        SprintError::require_nonzero("ServerConfig::num_queries", cfg.num_queries)?;
        // All server entropy descends from one root seed through the
        // tower; the namespace order matches the historical split(1..=3)
        // sequence, so existing golden runs are unchanged.
        let mut tower = EntropyTower::new(cfg.seed);
        let arrival_rng = tower.stream(ns::ARRIVALS);
        let service_rng = tower.stream(ns::SERVICE);
        let mix_rng = tower.stream(ns::MIX);
        let budget = Budget::new(
            cfg.policy.budget_capacity(),
            cfg.policy.refill.as_secs_f64(),
        )?;
        let next_arrival_gap = Dist::Parametric {
            kind: cfg.arrivals.kind,
            mean: cfg.arrivals.rate.mean_interval(),
        };
        let slots = (0..cfg.slots).map(|_| None).collect();
        let down = vec![false; cfg.slots];
        Ok(Server {
            arrivals_left: cfg.num_queries,
            cfg,
            mech,
            reactor: Reactor::new(),
            queue: VecDeque::new(),
            slots,
            budget_cache_secs: budget.level(),
            budget,
            queries: Vec::new(),
            records: Vec::new(),
            next_arrival_gap,
            arrival_rng,
            service_rng,
            mix_rng,
            next_gen: 0,
            manager_debt_secs: 0.0,
            faults: None,
            supervisor: None,
            sprint_permit: true,
            primed: false,
            iterations: 0,
            end: SimTime::ZERO,
            down,
            recorder: None,
            tracer: None,
            metrics_scope: None,
        })
    }

    /// Attaches a flight recorder keeping the last `capacity` events.
    /// Recording is observation-only: the run's records, counters and
    /// RNG streams are bit-identical with or without it.
    pub fn attach_recorder(&mut self, capacity: usize) {
        self.recorder = Some(FlightRecorder::new(capacity));
    }

    /// Turns on causal tracing: sprint episodes become spans and
    /// control-plane faults become cause links, written as events into
    /// the attached recorder (attach one first — without a recorder the
    /// tracer emits nowhere). `node` labels the spans and picks the
    /// span-id namespace (`(node+1) << 32 | seq`); standalone runs use
    /// node 0. Observation-only: records, counters and RNG streams are
    /// bit-identical to an untraced run.
    pub fn enable_tracing(&mut self, node: u32) {
        if self.tracer.is_none() {
            self.tracer = Some(NodeTracer::new(node, self.cfg.slots));
        }
    }

    /// Sets the parent span for subsequently opened sprint-episode
    /// spans (a fleet driver passes the node's lease span here). No-op
    /// unless tracing is enabled.
    pub fn set_trace_parent(&mut self, span: u64) {
        if let Some(t) = self.tracer.as_mut() {
            t.parent = span;
        }
    }

    /// Scopes this server's metric increments to `node`: counters fire
    /// on both the process-global registry and the node's scoped
    /// registry (see `obs::scoped`).
    pub fn set_metrics_scope(&mut self, node: u32) {
        self.metrics_scope = Some(node);
    }

    /// Builds a server that injects the faults described by `plan`.
    ///
    /// The injector draws from its own RNG streams (derived from
    /// `plan.seed`, not `cfg.seed`), so the arrival/service processes
    /// are identical with and without faults, and a given
    /// `(cfg, plan)` pair is fully deterministic.
    ///
    /// # Errors
    ///
    /// Returns an error if the server configuration or the fault plan
    /// fails validation.
    pub fn with_faults(
        cfg: ServerConfig,
        mech: &'m dyn Mechanism,
        plan: FaultPlan,
    ) -> Result<Server<'m>, SprintError> {
        let mut server = Server::new(cfg, mech)?;
        server.faults = Some(FaultInjector::new(plan)?);
        Ok(server)
    }

    /// Builds a server that runs under a [`Supervisor`], optionally
    /// with a fault plan active. Supervision is deterministic (it draws
    /// no randomness), so a supervised run replays bit-identically for
    /// the same `(cfg, plan, sup)` triple.
    ///
    /// # Errors
    ///
    /// Returns an error if the server configuration, fault plan, or
    /// supervisor configuration fails validation.
    pub fn with_supervision(
        cfg: ServerConfig,
        mech: &'m dyn Mechanism,
        plan: Option<FaultPlan>,
        sup: SupervisorConfig,
    ) -> Result<Server<'m>, SprintError> {
        let mut server = Server::new(cfg, mech)?;
        if let Some(plan) = plan {
            server.faults = Some(FaultInjector::new(plan)?);
        }
        server.supervisor = Some(Supervisor::new(sup, server.cfg.slots)?);
        Ok(server)
    }

    /// Every arrival the run has fully accounted for: served to
    /// completion, or turned away by the admission ladder.
    fn accounted(&self) -> usize {
        let turned_away = self
            .supervisor
            .as_ref()
            .map(|s| s.counters().turned_away())
            .unwrap_or(0);
        self.records.len() + turned_away as usize
    }

    /// Runs the configured number of queries to completion and returns
    /// the per-query records.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::Runtime`] if a simulation invariant
    /// breaks mid-run (same-instant event livelock, drained calendar
    /// with queries outstanding, or inconsistent slot state).
    pub fn run(self) -> Result<RunResult, SprintError> {
        Ok(self.run_inner()?.0)
    }

    /// Runs with the reactor's decision journal enabled, returning the
    /// journal alongside the result. Journaling is observation-only:
    /// the records, counters and RNG streams are bit-identical to an
    /// unjournaled run, and two runs of the same `(cfg, plan, sup)`
    /// produce byte-identical journals.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Server::run`].
    pub fn run_journaled(mut self) -> Result<(RunResult, Journal), SprintError> {
        self.reactor.enable_journal();
        let (result, journal) = self.run_inner()?;
        Ok((result, journal.unwrap_or_default()))
    }

    fn run_inner(mut self) -> Result<(RunResult, Option<Journal>), SprintError> {
        self.prime();
        while !self.is_done() {
            if !self.step()? {
                break;
            }
        }
        self.finish()
    }

    /// Schedules the run's initial events (first arrival, first thermal
    /// emergency). Idempotent; called automatically by [`Server::run`],
    /// or explicitly by a fleet driver before step-wise execution.
    pub fn prime(&mut self) {
        if self.primed {
            return;
        }
        self.primed = true;
        // Seed the first arrival.
        let gap = self.sample_arrival_gap(SimTime::ZERO);
        self.reactor.schedule(SimTime::ZERO + gap, Ev::Arrival);
        if let Some(at) = self.faults.as_ref().and_then(|f| f.first_thermal_secs()) {
            self.reactor
                .schedule(SimTime::from_secs_f64(at), Ev::Thermal);
        }
    }

    /// The instant of the server's next pending event, if any. A fleet
    /// driver interleaves many servers by always stepping the one whose
    /// next event is earliest.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.reactor.peek_time()
    }

    /// Whether every arrival has been fully accounted for (served or
    /// turned away) — the run's termination condition.
    pub fn is_done(&self) -> bool {
        self.accounted() == self.cfg.num_queries
    }

    /// Pops and handles exactly one event, returning `false` when no
    /// event is pending. [`Server::prime`] must have run first.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::Runtime`] if a simulation invariant
    /// breaks (same-instant event livelock or inconsistent slot state).
    pub fn step(&mut self) -> Result<bool, SprintError> {
        let Some((now, ev)) = self.reactor.pop() else {
            return Ok(false);
        };
        self.iterations += 1;
        self.end = now;
        // Safety valve: a healthy run needs a small constant number
        // of events per query; hitting this bound means a
        // same-instant event livelock.
        if self.iterations >= 10_000 * (self.cfg.num_queries as u64 + 1) {
            return Err(SprintError::runtime(
                "Server::run",
                format!(
                    "event storm at {now}: ev {ev:?}, budget level {:.3e}, sprinting {}, \
                     records {}/{}",
                    self.budget.level(),
                    self.budget.sprinting(),
                    self.records.len(),
                    self.cfg.num_queries
                ),
            ));
        }
        match ev {
            Ev::Arrival => self.on_arrival(now)?,
            Ev::Timeout(id) => self.on_timeout(now, id)?,
            Ev::Slot { slot, gen } => self.on_slot_event(now, slot, gen)?,
            Ev::Crash { slot, query } => self.on_crash(now, slot, query)?,
            Ev::Thermal => self.on_thermal(now)?,
            Ev::SlotUp { slot } => self.on_slot_up(now, slot)?,
            Ev::Watchdog { slot, token } => self.on_watchdog(now, slot, token)?,
            Ev::Msg { msg, .. } => self.on_msg(now, msg)?,
        }
        Ok(true)
    }

    /// Seals the run: verifies every query was accounted for, sorts the
    /// records, and assembles the [`RunResult`] (and journal when
    /// enabled). In-flight control messages (e.g. a duplicate echo of
    /// the last force-unsprint) still pending when the final query
    /// completes are dropped with the reactor — receipt is idempotent,
    /// so delivering them could not change the outcome anyway.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::Runtime`] if the calendar drained with
    /// queries outstanding.
    pub fn finish(mut self) -> Result<(RunResult, Option<Journal>), SprintError> {
        let end = self.end;
        if self.accounted() != self.cfg.num_queries {
            return Err(SprintError::runtime(
                "Server::run",
                format!(
                    "calendar drained with queries outstanding: served {} + turned away {} \
                     != {} arrived",
                    self.records.len(),
                    self.accounted() - self.records.len(),
                    self.cfg.num_queries
                ),
            ));
        }
        self.records.sort_by_key(|r| r.id);
        let counters = self
            .faults
            .as_ref()
            .map(|f| f.counters())
            .unwrap_or_default();
        let mut builder = RunResult::builder(self.records, self.cfg.warmup).faults(counters);
        if let Some(sup) = self.supervisor.as_mut() {
            let recovery = sup.finalize(end.as_secs_f64());
            builder = builder.recovery(recovery, self.cfg.num_queries);
        }
        if let Some(recorder) = self.recorder.take() {
            builder = builder.telemetry(recorder.finish());
        }
        Ok((builder.build(), self.reactor.take_journal()))
    }

    fn on_arrival(&mut self, now: SimTime) -> Result<(), SprintError> {
        // Admission control runs before the query materializes: a shed
        // or rejected arrival consumes no service randomness and never
        // enters the queue (the client sees an immediate busy signal).
        let decision = self.supervisor.as_mut().map(|sup| {
            let before = sup.admission_mode();
            let outcome = sup.admit(self.queue.len(), now.as_secs_f64());
            (outcome, before, sup.admission_mode())
        });
        let admitted = match decision {
            None => true,
            Some((outcome, before, after)) => {
                if before != after {
                    note(
                        &mut self.recorder,
                        now,
                        EventKind::AdmissionModeChanged {
                            from: before,
                            to: after,
                        },
                    );
                }
                let arrival_idx = (self.cfg.num_queries - self.arrivals_left) as u64;
                let depth = self.queue.len() as u32;
                match outcome {
                    AdmitOutcome::Admit => true,
                    AdmitOutcome::Shed => {
                        note(
                            &mut self.recorder,
                            now,
                            EventKind::QueryShed {
                                query: arrival_idx,
                                queue_depth: depth,
                            },
                        );
                        false
                    }
                    AdmitOutcome::Reject => {
                        note(
                            &mut self.recorder,
                            now,
                            EventKind::QueryRejected {
                                query: arrival_idx,
                                queue_depth: depth,
                            },
                        );
                        false
                    }
                }
            }
        };
        if admitted {
            let id = self.queries.len() as u64;
            let kind = self.cfg.mix.sample_kind(&mut self.mix_rng);
            let workload = Workload::get(kind);
            let mean = self
                .mech
                .sustained_rate(kind)
                .mean_interval()
                .mul_f64(self.cfg.mix.interference_inflation(kind));
            let service_secs = workload
                .service_dist(mean)
                .sample(&mut self.service_rng)
                .as_secs_f64()
                .max(1e-6);
            self.queries.push(QueryInfo {
                kind,
                arrival: now,
                service_secs,
                timed_out: false,
                state: QueryState::Queued,
                dispatch: SimTime::ZERO,
                retries: 0,
            });

            if self.cfg.policy.sprint_enabled && self.cfg.policy.timeout < SimDuration::MAX {
                let at = now.saturating_add(self.cfg.policy.timeout);
                if at < SimTime::MAX {
                    self.reactor.schedule(at, Ev::Timeout(id));
                }
            }

            if let Some(slot) = self.free_slot() {
                self.dispatch(now, id, slot)?;
            } else {
                self.queue.push_back(id);
                self.update_drag(now)?;
            }
            note(
                &mut self.recorder,
                now,
                EventKind::QueueDepth {
                    depth: self.queue.len() as u32,
                },
            );
        }

        self.arrivals_left -= 1;
        if self.arrivals_left > 0 {
            let gap = self.sample_arrival_gap(now);
            self.reactor.schedule(now + gap, Ev::Arrival);
        }
        Ok(())
    }

    /// Samples the next inter-arrival gap, honouring any time-varying
    /// rate modulation: the segment active *now* sets the rate. An
    /// active fault-plan storm window compounds multiplicatively on top
    /// of the configured modulation.
    fn sample_arrival_gap(&mut self, now: SimTime) -> SimDuration {
        let gap = self.next_arrival_gap.sample(&mut self.arrival_rng);
        let mut multiplier = self.cfg.arrivals.multiplier_at(now.as_secs_f64());
        if let Some(f) = self.faults.as_mut() {
            let storm = f.storm_multiplier(now.as_secs_f64());
            if storm != 1.0 {
                f.record_storm_arrival();
                multiplier *= storm;
            }
        }
        if (multiplier - 1.0).abs() < 1e-12 {
            gap
        } else {
            gap.mul_f64(1.0 / multiplier)
        }
    }

    /// Whether sprint engages are permitted at all: the supervisor's
    /// model-health signal must allow them *and* the external sprint
    /// permit (the fleet lease gate) must be held.
    fn supervision_sprint_allowed(&self) -> bool {
        self.sprint_permit
            && self
                .supervisor
                .as_ref()
                .map(|s| s.sprint_allowed())
                .unwrap_or(true)
    }

    /// The budget level the sprint controller acts on, in seconds.
    ///
    /// The fresh (possibly drifted) sensor reading travels from the
    /// budget sensor to the controller as a [`CtrlMsg::BudgetReport`]
    /// over the simulated network. Without message faults the report
    /// delivers inline — a synchronous call at the send site, exactly
    /// the pre-reactor behaviour. Under message faults a delayed or
    /// dropped report leaves the controller acting on its last
    /// *delivered* reading instead.
    fn sensed_level_now(&mut self, now: SimTime) -> f64 {
        let Some(f) = self.faults.as_mut() else {
            return self.budget.level();
        };
        let fresh = f.sensed_level(self.budget.level());
        if !f.has_message_faults() {
            return fresh;
        }
        let delivery = f.route_message(now.as_secs_f64(), Peer::BudgetSensor, Peer::Controller);
        self.note_route(now, Peer::BudgetSensor, Peer::Controller, delivery);
        let report = Ev::Msg {
            from: Peer::BudgetSensor,
            to: Peer::Controller,
            msg: CtrlMsg::BudgetReport {
                level_us: (fresh * 1e6).round() as u64,
            },
        };
        match delivery {
            Delivery::Inline => {
                self.budget_cache_secs = fresh;
                fresh
            }
            Delivery::Delayed { delay } => {
                note(
                    &mut self.recorder,
                    now,
                    EventKind::MessageDelayed {
                        from: Peer::BudgetSensor.index(),
                        to: Peer::Controller.index(),
                        delay_micros: delay.0,
                    },
                );
                if let Some(t) = self.tracer.as_mut() {
                    t.fault(&mut self.recorder, now, None, CauseReason::MessageDelay);
                }
                self.reactor.schedule(now + delay, report);
                self.budget_cache_secs
            }
            Delivery::Dropped { partitioned } => {
                note(
                    &mut self.recorder,
                    now,
                    EventKind::MessageDropped {
                        from: Peer::BudgetSensor.index(),
                        to: Peer::Controller.index(),
                        partitioned,
                    },
                );
                if let Some(t) = self.tracer.as_mut() {
                    let reason = if partitioned {
                        CauseReason::Partition
                    } else {
                        CauseReason::MessageDrop
                    };
                    t.fault(&mut self.recorder, now, None, reason);
                }
                self.budget_cache_secs
            }
            Delivery::Duplicated { extra_delay } => {
                note(
                    &mut self.recorder,
                    now,
                    EventKind::MessageDuplicated {
                        from: Peer::BudgetSensor.index(),
                        to: Peer::Controller.index(),
                        delay_micros: extra_delay.0,
                    },
                );
                self.reactor.schedule(now + extra_delay, report);
                self.budget_cache_secs = fresh;
                fresh
            }
        }
    }

    /// Budget availability as the controller perceives it. Without an
    /// injector this is exactly [`Budget::available`].
    fn sensed_available(&mut self, now: SimTime) -> bool {
        if self.budget.capacity().is_infinite() {
            return true;
        }
        match &self.faults {
            Some(_) => self.sensed_level_now(now) > 1e-6,
            None => self.budget.available(),
        }
    }

    /// Seconds until the *perceived* budget level empties at the
    /// current drain rate. Drift (and stale message-fault caches) shift
    /// the horizon the same way they shift the level, so
    /// sprint-disengage events follow the controller's view.
    fn sensed_seconds_to_exhaustion(&mut self, now: SimTime) -> Option<f64> {
        let n = self.budget.sprinting();
        if n == 0 || self.budget.capacity().is_infinite() {
            return None;
        }
        match &self.faults {
            Some(_) => Some(self.sensed_level_now(now) / n as f64),
            None => self.budget.seconds_to_exhaustion(),
        }
    }

    /// Journals one routing verdict on the reactor's decision log.
    fn note_route(&mut self, now: SimTime, from: Peer, to: Peer, delivery: Delivery) {
        self.reactor.note(now, || {
            format!("route {}->{}: {delivery:?}", from.name(), to.name())
        });
    }

    /// Handles a control message reaching its destination.
    fn on_msg(&mut self, now: SimTime, msg: CtrlMsg) -> Result<(), SprintError> {
        match msg {
            CtrlMsg::ForceUnsprint { slot, token } => self.force_unsprint(now, slot, token),
            CtrlMsg::BudgetReport { level_us } => {
                // Overwrite on arrival: a report that was delayed past a
                // fresher one is the *reorder* fault — the controller
                // regresses to the older reading until the next report
                // lands.
                self.budget_cache_secs = level_us as f64 / 1e6;
                Ok(())
            }
        }
    }

    fn on_timeout(&mut self, now: SimTime, id: u64) -> Result<(), SprintError> {
        let state = self.queries[id as usize].state;
        // Every live interrupt costs the queue manager service time,
        // paid at the next dispatch.
        if state != QueryState::Done {
            self.manager_debt_secs += INTERRUPT_COST_SECS;
        }
        match state {
            QueryState::Done => {} // Completed before the timer fired.
            QueryState::Queued => {
                // Sprint will be initiated when the query is dispatched.
                self.queries[id as usize].timed_out = true;
            }
            QueryState::Running(slot) => {
                self.queries[id as usize].timed_out = true;
                self.budget.update(now);
                let can_sprint = self.sensed_available(now) && self.supervision_sprint_allowed();
                let toggle = self.mech.toggle_overhead();
                let slot_ref = occupied(&mut self.slots, slot, "Server::on_timeout")?;
                match slot_ref.engine.mode() {
                    // §2.1: "if the callback executes after the query is
                    // dispatched, the queue manager initiates sprinting
                    // right away — provided the budget is not empty."
                    ExecMode::Normal if can_sprint => {
                        slot_ref.engine.advance(now, self.mech);
                        slot_ref.engine.set_mode(ExecMode::Stalled {
                            until: now + toggle,
                            then_sprint: true,
                        });
                        self.reschedule_slot(now, slot)?;
                    }
                    // Still inside the dispatch stall: upgrade it to
                    // engage a sprint when it ends (the toggle may
                    // lengthen the stall).
                    ExecMode::Stalled {
                        until,
                        then_sprint: false,
                    } if can_sprint => {
                        let until = until.max(now + toggle);
                        slot_ref.engine.set_mode(ExecMode::Stalled {
                            until,
                            then_sprint: true,
                        });
                        self.reschedule_slot(now, slot)?;
                    }
                    // Already sprinting/engaging, or the budget is dry:
                    // the interrupt is a no-op.
                    _ => {}
                }
            }
        }
        Ok(())
    }

    fn on_slot_event(&mut self, now: SimTime, slot: usize, gen: u64) -> Result<(), SprintError> {
        let Some(s) = self.slots[slot].as_ref() else {
            return Ok(());
        };
        if s.gen != gen {
            return Ok(()); // Stale event.
        }
        self.budget.update(now);
        let mode = s.engine.mode();
        let stuck = s.stuck;
        match mode {
            ExecMode::Stalled { until, then_sprint } if now >= until => {
                let wants_sprint =
                    then_sprint && self.sensed_available(now) && self.supervision_sprint_allowed();
                // The injector only sees engages that would otherwise
                // succeed; it can fail them or latch them stuck on.
                let outcome = if !wants_sprint {
                    EngageOutcome::Failed
                } else {
                    match self.faults.as_mut() {
                        Some(f) => f.engage_outcome(now.as_secs_f64()),
                        None => EngageOutcome::Engaged,
                    }
                };
                let s = occupied(&mut self.slots, slot, "Server::on_slot_event")?;
                s.engine.advance(now, self.mech);
                match outcome {
                    EngageOutcome::Engaged | EngageOutcome::EngagedStuck => {
                        s.stuck = matches!(outcome, EngageOutcome::EngagedStuck);
                        s.engine.set_mode(ExecMode::Sprinting);
                        note(
                            &mut self.recorder,
                            now,
                            EventKind::SprintEngaged {
                                slot: slot as u32,
                                stuck: matches!(outcome, EngageOutcome::EngagedStuck),
                            },
                        );
                        if let Some(t) = self.tracer.as_mut() {
                            t.open_sprint(&mut self.recorder, now, slot);
                        }
                        if obs::is_enabled() {
                            obs::global().sprints_engaged.incr();
                            if let Some(n) = self.metrics_scope {
                                obs::scoped(n).sprints_engaged.incr();
                            }
                        }
                        self.budget.start_sprint();
                        // Arm the sprint watchdog: if this same engage
                        // is still sprinting when the deadline passes,
                        // it is presumed stuck and forced off.
                        if let Some(sup) = self.supervisor.as_mut() {
                            let token = sup.next_sprint_token();
                            let deadline = now + SimDuration::from_secs_f64(sup.watchdog_secs());
                            occupied(&mut self.slots, slot, "Server::on_slot_event")?
                                .sprint_token = token;
                            self.reactor
                                .schedule(deadline, Ev::Watchdog { slot, token });
                        }
                        self.reschedule_all_sprinting(now)?;
                    }
                    EngageOutcome::Failed => {
                        s.engine.set_mode(ExecMode::Normal);
                        // Only an engage the injector vetoed is a
                        // failure; a stall that never wanted to sprint
                        // (or lost its budget) is normal operation.
                        if wants_sprint {
                            note(
                                &mut self.recorder,
                                now,
                                EventKind::SprintEngageFailed { slot: slot as u32 },
                            );
                        }
                        self.reschedule_slot(now, slot)?;
                    }
                }
            }
            ExecMode::Sprinting | ExecMode::Normal => {
                let s = occupied(&mut self.slots, slot, "Server::on_slot_event")?;
                s.engine.advance(now, self.mech);
                if s.engine.is_complete() {
                    self.complete(now, slot)?;
                } else if matches!(mode, ExecMode::Sprinting)
                    && !stuck
                    && !self.sensed_available(now)
                {
                    // Budget ran dry mid-sprint: fall back to sustained.
                    // A stuck sprint ignores exhaustion — it keeps
                    // draining until completion or a thermal emergency.
                    let s = occupied(&mut self.slots, slot, "Server::on_slot_event")?;
                    s.engine.set_mode(ExecMode::Normal);
                    note(
                        &mut self.recorder,
                        now,
                        EventKind::SprintEnded {
                            slot: slot as u32,
                            reason: UnsprintReason::BudgetDry,
                        },
                    );
                    if let Some(t) = self.tracer.as_mut() {
                        t.close_sprint(&mut self.recorder, now, slot, SpanOutcome::BudgetDry);
                    }
                    self.budget.end_sprint();
                    self.reschedule_all_sprinting(now)?;
                    self.reschedule_slot(now, slot)?;
                } else {
                    // Spurious wake-up; recompute.
                    self.reschedule_slot(now, slot)?;
                }
            }
            ExecMode::Stalled { .. } => {
                // Stall not over yet (event raced a reschedule); the
                // newer event will resolve it.
            }
        }
        Ok(())
    }

    /// Whether the sprint armed with `token` is still engaged on `slot`
    /// (stale tokens mean the sprint already disengaged, the query
    /// completed, or the slot re-engaged).
    fn watchdog_live(&self, slot: usize, token: u64) -> bool {
        matches!(
            self.slots[slot].as_ref(),
            Some(s) if s.sprint_token == token && matches!(s.engine.mode(), ExecMode::Sprinting)
        )
    }

    /// Supervision: the sprint watchdog fires. If the engage that armed
    /// it is still sprinting (token matches), the watchdog sends the
    /// controller a [`CtrlMsg::ForceUnsprint`] command through the
    /// simulated network. Without message faults the command delivers
    /// inline (pre-reactor behaviour, bit for bit); under them the
    /// command can arrive late — the stuck sprint overruns until the
    /// delayed command lands — or be lost outright, leaving the budget
    /// sensor's exhaustion horizon as the only backstop.
    fn on_watchdog(&mut self, now: SimTime, slot: usize, token: u64) -> Result<(), SprintError> {
        if !self.watchdog_live(slot, token) {
            return Ok(());
        }
        let delivery = match self.faults.as_mut() {
            Some(f) if f.has_message_faults() => {
                let d = f.route_message(now.as_secs_f64(), Peer::Watchdog, Peer::Controller);
                self.note_route(now, Peer::Watchdog, Peer::Controller, d);
                d
            }
            _ => Delivery::Inline,
        };
        let command = Ev::Msg {
            from: Peer::Watchdog,
            to: Peer::Controller,
            msg: CtrlMsg::ForceUnsprint { slot, token },
        };
        match delivery {
            Delivery::Inline => self.force_unsprint(now, slot, token),
            Delivery::Delayed { delay } => {
                note(
                    &mut self.recorder,
                    now,
                    EventKind::MessageDelayed {
                        from: Peer::Watchdog.index(),
                        to: Peer::Controller.index(),
                        delay_micros: delay.0,
                    },
                );
                if let Some(t) = self.tracer.as_mut() {
                    t.fault(
                        &mut self.recorder,
                        now,
                        Some(slot),
                        CauseReason::MessageDelay,
                    );
                }
                self.reactor.schedule(now + delay, command);
                Ok(())
            }
            Delivery::Dropped { partitioned } => {
                // The unsprint command is lost: nobody retries it, so
                // the stuck sprint keeps draining until completion or
                // budget exhaustion.
                note(
                    &mut self.recorder,
                    now,
                    EventKind::MessageDropped {
                        from: Peer::Watchdog.index(),
                        to: Peer::Controller.index(),
                        partitioned,
                    },
                );
                if let Some(t) = self.tracer.as_mut() {
                    let reason = if partitioned {
                        CauseReason::Partition
                    } else {
                        CauseReason::MessageDrop
                    };
                    t.fault(&mut self.recorder, now, Some(slot), reason);
                }
                Ok(())
            }
            Delivery::Duplicated { extra_delay } => {
                note(
                    &mut self.recorder,
                    now,
                    EventKind::MessageDuplicated {
                        from: Peer::Watchdog.index(),
                        to: Peer::Controller.index(),
                        delay_micros: extra_delay.0,
                    },
                );
                self.reactor.schedule(now + extra_delay, command);
                // The echo goes stale on receipt (the token no longer
                // matches a live sprint), so double delivery is safe.
                self.force_unsprint(now, slot, token)
            }
        }
    }

    /// Controller receipt of a force-unsprint command: if the sprint
    /// armed with `token` is still engaged, it is forced off, budget
    /// drain stops, and the execution continues at the sustained rate.
    /// Stale tokens are ignored, making delayed and duplicated commands
    /// harmless.
    fn force_unsprint(&mut self, now: SimTime, slot: usize, token: u64) -> Result<(), SprintError> {
        if !self.watchdog_live(slot, token) {
            return Ok(());
        }
        self.budget.update(now);
        let s = occupied(&mut self.slots, slot, "Server::force_unsprint")?;
        s.engine.advance(now, self.mech);
        s.engine.set_mode(ExecMode::Normal);
        s.stuck = false;
        note(
            &mut self.recorder,
            now,
            EventKind::WatchdogFired { slot: slot as u32 },
        );
        note(
            &mut self.recorder,
            now,
            EventKind::SprintEnded {
                slot: slot as u32,
                reason: UnsprintReason::Watchdog,
            },
        );
        if let Some(t) = self.tracer.as_mut() {
            t.close_sprint(&mut self.recorder, now, slot, SpanOutcome::Watchdog);
        }
        self.budget.end_sprint();
        if let Some(sup) = self.supervisor.as_mut() {
            sup.record_forced_unsprint();
        }
        self.reschedule_all_sprinting(now)?;
        self.reschedule_slot(now, slot)?;
        Ok(())
    }

    /// Supervision: a restarted slot rejoins the pool and immediately
    /// pulls queued work if any is waiting.
    fn on_slot_up(&mut self, now: SimTime, slot: usize) -> Result<(), SprintError> {
        self.down[slot] = false;
        if let Some(sup) = self.supervisor.as_mut() {
            sup.on_slot_up(slot);
        }
        note(
            &mut self.recorder,
            now,
            EventKind::SlotUp { slot: slot as u32 },
        );
        let available = self
            .supervisor
            .as_ref()
            .map(|s| s.slot_available(slot))
            .unwrap_or(true);
        if available && self.slots[slot].is_none() {
            if let Some(next) = self.queue.pop_front() {
                self.dispatch(now, next, slot)?;
                self.update_drag(now)?;
            }
        }
        Ok(())
    }

    /// Fault injection: the execution in `slot` crashes. The query is
    /// pushed back to the head of the queue (preserving FIFO order) and
    /// redispatched with fresh dispatch overhead; its timestamps keep
    /// the original arrival but move `dispatch` to the retry hand-off.
    fn on_crash(&mut self, now: SimTime, slot: usize, query: u64) -> Result<(), SprintError> {
        let stale = match self.slots[slot].as_ref() {
            Some(s) => s.query != query,
            None => true,
        };
        if stale || self.queries[query as usize].state != QueryState::Running(slot) {
            return Ok(()); // The query completed before its crash point.
        }
        self.budget.update(now);
        let s = self.slots[slot].take().ok_or_else(|| {
            SprintError::runtime("Server::on_crash", format!("crashing slot {slot} empty"))
        })?;
        note(
            &mut self.recorder,
            now,
            EventKind::SlotCrashed {
                slot: slot as u32,
                query,
            },
        );
        if matches!(s.engine.mode(), ExecMode::Sprinting) {
            note(
                &mut self.recorder,
                now,
                EventKind::SprintEnded {
                    slot: slot as u32,
                    reason: UnsprintReason::Crash,
                },
            );
            if let Some(t) = self.tracer.as_mut() {
                t.close_sprint(&mut self.recorder, now, slot, SpanOutcome::Crash);
            }
            self.budget.end_sprint();
            self.reschedule_all_sprinting(now)?;
        }
        let info = &mut self.queries[query as usize];
        info.state = QueryState::Queued;
        info.retries += 1;
        let retries = info.retries;
        let f = self.faults.as_mut().ok_or_else(|| {
            SprintError::runtime(
                "Server::on_crash",
                "crash event without injector".to_string(),
            )
        })?;
        f.record_crash(retries >= f.max_retries());
        let repair_secs = f.crash_repair_secs();
        // All progress is lost; the crashed query re-enters at the head
        // of the queue.
        self.queue.push_front(query);
        match self.supervisor.as_mut().map(|sup| sup.on_crash(slot)) {
            // Supervised: the crashed slot goes offline for a backoff
            // (or for good); the requeued query redispatches on any
            // other available slot, or waits its turn at the head.
            Some(directive) => {
                match directive {
                    SlotDirective::Restart { delay_secs } => {
                        let delay = SimDuration::from_secs_f64(delay_secs);
                        note(
                            &mut self.recorder,
                            now,
                            EventKind::SlotRestartScheduled {
                                slot: slot as u32,
                                delay_micros: delay.0,
                            },
                        );
                        self.reactor.schedule(now + delay, Ev::SlotUp { slot });
                    }
                    SlotDirective::Quarantine => {
                        note(
                            &mut self.recorder,
                            now,
                            EventKind::SlotQuarantined { slot: slot as u32 },
                        );
                    }
                }
                if let Some(other) = self.free_slot() {
                    if let Some(next) = self.queue.pop_front() {
                        self.dispatch(now, next, other)?;
                    }
                }
                self.update_drag(now)?;
            }
            // Unsupervised: nobody restarts the slot. With a repair
            // time in the plan it stays down until out-of-band repair;
            // the legacy 0.0 default restarts it instantly and
            // redispatches the crashed query.
            None => {
                if repair_secs > 0.0 {
                    self.down[slot] = true;
                    let repair = SimDuration::from_secs_f64(repair_secs);
                    note(
                        &mut self.recorder,
                        now,
                        EventKind::SlotRestartScheduled {
                            slot: slot as u32,
                            delay_micros: repair.0,
                        },
                    );
                    self.reactor.schedule(now + repair, Ev::SlotUp { slot });
                    if let Some(other) = self.free_slot() {
                        if let Some(next) = self.queue.pop_front() {
                            self.dispatch(now, next, other)?;
                        }
                    }
                    self.update_drag(now)?;
                } else if let Some(next) = self.queue.pop_front() {
                    self.dispatch(now, next, slot)?;
                    self.update_drag(now)?;
                }
            }
        }
        Ok(())
    }

    /// Forces every sprinting execution (stuck ones included) back to
    /// the sustained rate, recording one `SprintEnded` per slot with the
    /// given reason. Shared by the thermal-emergency fault and the fleet
    /// lease-lapse fail-safe.
    fn unsprint_all(&mut self, now: SimTime, reason: UnsprintReason) -> Result<u64, SprintError> {
        let sprinting: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref()
                    .filter(|s| matches!(s.engine.mode(), ExecMode::Sprinting))
                    .map(|_| i)
            })
            .collect();
        let mut unsprinted = 0u64;
        for i in sprinting {
            let s = occupied(&mut self.slots, i, "Server::unsprint_all")?;
            s.engine.advance(now, self.mech);
            s.engine.set_mode(ExecMode::Normal);
            s.stuck = false;
            note(
                &mut self.recorder,
                now,
                EventKind::SprintEnded {
                    slot: i as u32,
                    reason,
                },
            );
            if let Some(t) = self.tracer.as_mut() {
                t.close_sprint(
                    &mut self.recorder,
                    now,
                    i,
                    SpanOutcome::from_unsprint(reason),
                );
            }
            self.budget.end_sprint();
            unsprinted += 1;
            self.reschedule_slot(now, i)?;
        }
        Ok(unsprinted)
    }

    /// Fleet fail-safe: revokes nothing by itself but forces every
    /// sprinting execution back to the sustained rate *now*, recording
    /// the disengages as lease lapses. Called by a fleet node agent the
    /// moment its sprint lease expires unrenewed; pair with
    /// [`Server::set_sprint_permit`]`(false)` so no new sprint engages
    /// until a fresh lease is granted.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::Runtime`] on inconsistent slot state.
    pub fn force_unsprint_all(&mut self, now: SimTime) -> Result<u64, SprintError> {
        self.budget.update(now);
        self.unsprint_all(now, UnsprintReason::LeaseLapsed)
    }

    /// Sets the external sprint permit (the fleet lease gate). While
    /// revoked, sprint engages are forbidden exactly as under a tripped
    /// model-health breaker; the admission/recovery ladder is untouched.
    pub fn set_sprint_permit(&mut self, allowed: bool) {
        self.sprint_permit = allowed;
    }

    /// Number of executions currently sprinting (draining the budget).
    pub fn sprinting(&self) -> usize {
        self.budget.sprinting()
    }

    /// Queries currently waiting in the manager's queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Queries served to completion so far.
    pub fn served(&self) -> usize {
        self.records.len()
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Turns on the reactor's decision journal (observation-only).
    pub fn enable_journal(&mut self) {
        self.reactor.enable_journal();
    }

    /// Fault injection: a thermal emergency forces every sprinting
    /// execution (stuck ones included) back to the sustained rate and
    /// starts the injector's engage lockout.
    fn on_thermal(&mut self, now: SimTime) -> Result<(), SprintError> {
        self.budget.update(now);
        let unsprinted = self.unsprint_all(now, UnsprintReason::Thermal)?;
        note(
            &mut self.recorder,
            now,
            EventKind::ThermalEmergency {
                unsprinted: unsprinted as u32,
            },
        );
        let f = self.faults.as_mut().ok_or_else(|| {
            SprintError::runtime(
                "Server::on_thermal",
                "thermal event without injector".to_string(),
            )
        })?;
        let next = f.on_thermal(now.as_secs_f64(), unsprinted);
        self.reactor
            .schedule(SimTime::from_secs_f64(next), Ev::Thermal);
        Ok(())
    }

    fn complete(&mut self, now: SimTime, slot: usize) -> Result<(), SprintError> {
        let s = self.slots[slot].take().ok_or_else(|| {
            SprintError::runtime("Server::complete", format!("completing empty slot {slot}"))
        })?;
        if matches!(s.engine.mode(), ExecMode::Sprinting) {
            note(
                &mut self.recorder,
                now,
                EventKind::SprintEnded {
                    slot: slot as u32,
                    reason: UnsprintReason::Completed,
                },
            );
            if let Some(t) = self.tracer.as_mut() {
                t.close_sprint(&mut self.recorder, now, slot, SpanOutcome::Completed);
            }
            self.budget.end_sprint();
            self.reschedule_all_sprinting(now)?;
        }
        let info = &mut self.queries[s.query as usize];
        info.state = QueryState::Done;
        self.records.push(QueryRecord {
            id: s.query,
            kind: info.kind,
            arrival: info.arrival,
            dispatch: info.dispatch,
            depart: now,
            timed_out: info.timed_out,
            sprinted: s.engine.ever_sprinted(),
            sprint_seconds: s.engine.sprint_seconds(),
            retries: info.retries,
        });
        if let Some(next) = self.queue.pop_front() {
            self.dispatch(now, next, slot)?;
            self.update_drag(now)?;
        }
        Ok(())
    }

    /// Re-applies the queue-length drag to every running execution
    /// after the queue changed.
    fn update_drag(&mut self, now: SimTime) -> Result<(), SprintError> {
        let effective_queue = self.queue.len().min(QUEUE_DRAG_SATURATION);
        let drag = 1.0 + QUEUE_DRAG_PER_QUERY * effective_queue as f64;
        for i in 0..self.slots.len() {
            if self.slots[i].is_some() {
                let s = occupied(&mut self.slots, i, "Server::update_drag")?;
                s.engine.advance(now, self.mech);
                s.engine.set_drag(drag);
                self.reschedule_slot(now, i)?;
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, now: SimTime, id: u64, slot: usize) -> Result<(), SprintError> {
        let overhead = DISPATCH_BASE_SECS
            + DISPATCH_PER_QUEUED_SECS * self.queue.len() as f64
            + std::mem::take(&mut self.manager_debt_secs);
        let sprint_allowed = self.supervision_sprint_allowed();
        let info = &mut self.queries[id as usize];
        info.state = QueryState::Running(slot);
        info.dispatch = now;
        // A timeout that fired while queued initiates sprinting at
        // dispatch (§2.1); the toggle partially overlaps the dispatch
        // hand-off.
        let sprint_now = info.timed_out && self.cfg.policy.sprint_enabled && sprint_allowed;
        let mut ready = now + SimDuration::from_secs_f64(overhead);
        if sprint_now {
            ready += self
                .mech
                .toggle_overhead()
                .mul_f64(DISPATCH_SPRINT_TOGGLE_FRAC);
        }
        let engine = ExecutionState::new(info.kind, info.service_secs, now, ready, sprint_now)?;
        self.slots[slot] = Some(Slot {
            query: id,
            engine,
            gen: 0,
            stuck: false,
            sprint_token: 0,
        });
        // Fault injection: decide at dispatch whether this execution
        // will crash, and when. The event is matched by query id, so it
        // goes stale harmlessly if the query completes first (e.g. a
        // sprint compresses the service time past the crash point).
        if let Some(f) = self.faults.as_mut() {
            let retries = self.queries[id as usize].retries;
            if let Some(frac) = f.crash_point_frac(slot, retries) {
                let at =
                    now + SimDuration::from_secs_f64(frac * self.queries[id as usize].service_secs);
                self.reactor.schedule(at, Ev::Crash { slot, query: id });
            }
        }
        self.reschedule_slot(now, slot)
    }

    /// First slot that is both empty and not down — whether downed by
    /// the supervisor's restart/quarantine ladder or by an unsupervised
    /// crash awaiting out-of-band repair.
    fn free_slot(&self) -> Option<usize> {
        (0..self.slots.len()).find(|&i| {
            self.slots[i].is_none()
                && !self.down[i]
                && self
                    .supervisor
                    .as_ref()
                    .map(|s| s.slot_available(i))
                    .unwrap_or(true)
        })
    }

    /// Schedules the next event for `slot`: stall end, completion, or
    /// budget exhaustion, whichever comes first.
    fn reschedule_slot(&mut self, now: SimTime, slot: usize) -> Result<(), SprintError> {
        self.next_gen += 1;
        let gen = self.next_gen;
        let exhaust = self.sensed_seconds_to_exhaustion(now);
        let s = occupied(&mut self.slots, slot, "Server::reschedule_slot")?;
        s.gen = gen;
        let at = match s.engine.mode() {
            ExecMode::Stalled { until, .. } => until,
            ExecMode::Normal => {
                now + SimDuration::from_secs_f64_ceil(s.engine.remaining_secs(self.mech))
            }
            ExecMode::Sprinting => {
                let complete = s.engine.remaining_secs(self.mech);
                // A stuck sprint never disengages on exhaustion, so
                // only the completion horizon matters for it.
                let horizon = match exhaust {
                    Some(exhaust) if !s.stuck => complete.min(exhaust),
                    _ => complete,
                };
                now + SimDuration::from_secs_f64_ceil(horizon)
            }
        };
        self.reactor.schedule(at.max(now), Ev::Slot { slot, gen });
        Ok(())
    }

    /// Refreshes exhaustion events for every sprinting slot after the
    /// shared drain rate changed.
    fn reschedule_all_sprinting(&mut self, now: SimTime) -> Result<(), SprintError> {
        let sprinting: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref()
                    .filter(|s| matches!(s.engine.mode(), ExecMode::Sprinting))
                    .map(|_| i)
            })
            .collect();
        for i in sprinting {
            let s = occupied(&mut self.slots, i, "Server::reschedule_all_sprinting")?;
            s.engine.advance(now, self.mech);
            self.reschedule_slot(now, i)?;
        }
        Ok(())
    }
}

/// Convenience: run one configuration to completion.
///
/// # Errors
///
/// Returns an error if the configuration fails validation or a
/// simulation invariant breaks mid-run.
pub fn run(cfg: ServerConfig, mech: &dyn Mechanism) -> Result<RunResult, SprintError> {
    Server::new(cfg, mech)?.run()
}

/// Convenience: run one configuration to completion with the given
/// fault plan active. A default (all-off) plan produces output
/// bit-identical to [`run`].
///
/// # Errors
///
/// Returns an error if the configuration or the fault plan fails
/// validation, or a simulation invariant breaks mid-run.
pub fn run_with_faults(
    cfg: ServerConfig,
    mech: &dyn Mechanism,
    plan: FaultPlan,
) -> Result<RunResult, SprintError> {
    Server::with_faults(cfg, mech, plan)?.run()
}

/// Convenience: run one configuration under supervision, optionally
/// with a fault plan active.
///
/// # Errors
///
/// Returns an error if any configuration fails validation, or a
/// simulation invariant breaks mid-run.
pub fn run_supervised(
    cfg: ServerConfig,
    mech: &dyn Mechanism,
    plan: Option<FaultPlan>,
    sup: SupervisorConfig,
) -> Result<RunResult, SprintError> {
    Server::with_supervision(cfg, mech, plan, sup)?.run()
}

/// Convenience: [`run_supervised`] with a flight recorder of the given
/// capacity attached, so the returned [`RunResult`] carries a
/// [`obs::RunTelemetry`]. The recorder is a pure observer — records and
/// counters are bit-identical to the unrecorded run.
///
/// # Errors
///
/// Returns an error if any configuration fails validation, or a
/// simulation invariant breaks mid-run.
pub fn run_supervised_recorded(
    cfg: ServerConfig,
    mech: &dyn Mechanism,
    plan: Option<FaultPlan>,
    sup: SupervisorConfig,
    recorder_capacity: usize,
) -> Result<RunResult, SprintError> {
    let mut server = Server::with_supervision(cfg, mech, plan, sup)?;
    server.attach_recorder(recorder_capacity);
    server.run()
}

/// Convenience: [`run_supervised_recorded`] with causal tracing
/// enabled (as node 0), so the returned telemetry carries sprint
/// spans and cause links alongside the plain event stream. Tracing is
/// observation-only — records and counters are bit-identical to the
/// recorded-but-untraced run.
///
/// # Errors
///
/// Returns an error if any configuration fails validation, or a
/// simulation invariant breaks mid-run.
pub fn run_supervised_traced(
    cfg: ServerConfig,
    mech: &dyn Mechanism,
    plan: Option<FaultPlan>,
    sup: SupervisorConfig,
    recorder_capacity: usize,
) -> Result<RunResult, SprintError> {
    let mut server = Server::with_supervision(cfg, mech, plan, sup)?;
    server.attach_recorder(recorder_capacity);
    server.enable_tracing(0);
    server.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ArrivalSpec, BudgetSpec, ServerConfig, SprintPolicy};
    use mechanisms::{CpuThrottle, Dvfs};
    use simcore::time::Rate;
    use workloads::QueryMix;

    fn base_cfg(policy: SprintPolicy, util: f64, n: usize, seed: u64) -> ServerConfig {
        ServerConfig {
            mix: QueryMix::single(WorkloadKind::Jacobi),
            arrivals: ArrivalSpec::poisson(Rate::per_hour(51.0 * util)),
            policy,
            slots: 1,
            num_queries: n,
            warmup: n / 10,
            seed,
        }
    }

    #[test]
    fn no_sprint_run_matches_service_rate() {
        let mech = Dvfs::new();
        let r = run(base_cfg(SprintPolicy::never(), 0.3, 300, 11), &mech).unwrap();
        // Mean processing time should be near 1/µ = 70.6 s (plus small
        // dispatch overhead).
        let proc = r.mean_processing_secs();
        assert!((proc - 70.6).abs() < 5.0, "processing {proc:.1}s");
        assert_eq!(r.records().len(), 300);
        assert!(r.records().iter().all(|q| !q.sprinted));
    }

    #[test]
    fn always_sprint_approaches_marginal_rate() {
        let mech = Dvfs::new();
        let r = run(base_cfg(SprintPolicy::always(), 0.3, 300, 12), &mech).unwrap();
        let speedup = mech.marginal_speedup(WorkloadKind::Jacobi);
        let expect = 70.6 / speedup;
        let proc = r.mean_processing_secs();
        assert!(
            (proc - expect).abs() < 5.0,
            "processing {proc:.1}s vs {expect:.1}s"
        );
        assert!(r.records().iter().all(|q| q.sprinted));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mech = Dvfs::new();
        let p = SprintPolicy::new(
            SimDuration::from_secs(60),
            BudgetSpec::FractionOfRefill(0.2),
            SimDuration::from_secs(200),
        );
        let a = run(base_cfg(p, 0.7, 200, 99), &mech).unwrap();
        let b = run(base_cfg(p, 0.7, 200, 99), &mech).unwrap();
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn different_seeds_differ() {
        let mech = Dvfs::new();
        let a = run(base_cfg(SprintPolicy::never(), 0.7, 100, 1), &mech).unwrap();
        let b = run(base_cfg(SprintPolicy::never(), 0.7, 100, 2), &mech).unwrap();
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn fifo_order_preserved() {
        let mech = Dvfs::new();
        let r = run(base_cfg(SprintPolicy::never(), 0.9, 200, 5), &mech).unwrap();
        let mut dispatches: Vec<(SimTime, SimTime)> = r
            .records()
            .iter()
            .map(|q| (q.arrival, q.dispatch))
            .collect();
        dispatches.sort_by_key(|&(a, _)| a);
        for w in dispatches.windows(2) {
            assert!(w[0].1 <= w[1].1, "dispatch order violates FIFO");
        }
    }

    #[test]
    fn tight_budget_limits_sprinting() {
        let mech = CpuThrottle::new(0.2);
        // Budget for ~1 fully-sprinted query, slow refill.
        let policy = SprintPolicy::new(
            SimDuration::ZERO,
            BudgetSpec::Seconds(60.0),
            SimDuration::from_secs(100_000),
        );
        let mut cfg = base_cfg(policy, 0.8, 150, 21);
        cfg.arrivals = ArrivalSpec::poisson(Rate::per_hour(14.8 * 0.8));
        let r = run(cfg, &mech).unwrap();
        // Count *meaningful* sprints: after the 60-second budget drains,
        // later queries can only grab the trickle the slow refill
        // provides, so few queries get substantial sprint time.
        let substantial = r
            .records()
            .iter()
            .filter(|q| q.sprint_seconds > 10.0)
            .count();
        assert!(substantial > 0, "at least one query should sprint");
        assert!(
            substantial < 20,
            "budget should cap sprints, got {substantial} of 150"
        );
        let total_sprint: f64 = r.records().iter().map(|q| q.sprint_seconds).sum();
        // Total sprint seconds bounded by capacity plus everything the
        // slow refill can trickle in over the run.
        assert!(
            total_sprint < 60.0 + 150.0 * 304.0 * (60.0 / 100_000.0) + 60.0,
            "total sprint {total_sprint}"
        );
    }

    #[test]
    fn budget_exhaustion_mid_query_falls_back() {
        let mech = CpuThrottle::new(0.2);
        // 10 seconds of budget: the first sprint must cut off mid-run.
        let policy = SprintPolicy::new(
            SimDuration::ZERO,
            BudgetSpec::Seconds(10.0),
            SimDuration::from_secs(1_000_000),
        );
        let mut cfg = base_cfg(policy, 0.2, 50, 31);
        cfg.arrivals = ArrivalSpec::poisson(Rate::per_hour(3.0));
        let r = run(cfg, &mech).unwrap();
        let first = r.records().iter().find(|q| q.sprinted).expect("a sprint");
        assert!(
            (first.sprint_seconds - 10.0).abs() < 0.5,
            "first sprint should drain ~10 s, got {}",
            first.sprint_seconds
        );
        // Its processing must take longer than a full sprint would.
        let full_sprint = 243.0 / 5.0; // 14.8 qph -> 243 s; 5X sprint.
        assert!(first.processing_time().as_secs_f64() > full_sprint);
    }

    #[test]
    fn timeouts_fire_only_for_slow_queries() {
        let mech = Dvfs::new();
        let policy = SprintPolicy::new(
            SimDuration::from_secs(120),
            BudgetSpec::Unlimited,
            SimDuration::from_secs(100),
        );
        let r = run(base_cfg(policy, 0.75, 300, 41), &mech).unwrap();
        for q in r.records() {
            if q.response_time().as_secs_f64() < 119.0 {
                assert!(!q.timed_out, "fast query {} marked timed out", q.id);
            }
            if q.timed_out {
                assert!(q.response_time().as_secs_f64() >= 119.0);
            }
        }
        let timed: usize = r.records().iter().filter(|q| q.timed_out).count();
        assert!(timed > 0, "some queries should time out at 75% load");
    }

    #[test]
    fn sprinting_improves_response_time_under_load() {
        let mech = CpuThrottle::new(0.2);
        let mut no_sprint = base_cfg(SprintPolicy::never(), 0.8, 300, 55);
        no_sprint.arrivals = ArrivalSpec::poisson(Rate::per_hour(14.8 * 0.8));
        let mut sprint = no_sprint.clone();
        sprint.policy = SprintPolicy::new(
            SimDuration::from_secs(60),
            BudgetSpec::FractionOfRefill(0.4),
            SimDuration::from_secs(200),
        );
        let mech2 = CpuThrottle::new(0.2);
        let base = run(no_sprint, &mech).unwrap().mean_response_secs();
        let fast = run(sprint, &mech2).unwrap().mean_response_secs();
        assert!(
            fast < base * 0.9,
            "sprinting should help: {fast:.0}s vs {base:.0}s"
        );
    }

    #[test]
    fn multi_slot_server_runs() {
        let mech = Dvfs::new();
        let mut cfg = base_cfg(SprintPolicy::always(), 0.5, 200, 61);
        cfg.slots = 4;
        cfg.arrivals = ArrivalSpec::poisson(Rate::per_hour(51.0 * 2.0));
        let r = run(cfg, &mech).unwrap();
        assert_eq!(r.records().len(), 200);
        // With 4 slots at 2X the single-server service rate, queueing
        // should be modest: mean response near processing time.
        assert!(r.mean_response_secs() < 4.0 * r.mean_processing_secs());
    }

    #[test]
    fn spike_modulation_compresses_arrivals() {
        // 3X spike in the second half of every 2000 s period: the
        // spike windows should hold roughly 3X the arrivals per second
        // of the calm windows.
        let mech = Dvfs::new();
        let mut cfg = base_cfg(SprintPolicy::never(), 0.3, 600, 77);
        cfg.arrivals = ArrivalSpec::poisson(Rate::per_hour(51.0 * 0.3))
            .with_modulation(vec![
                crate::policy::RateSegment {
                    duration_secs: 1_000.0,
                    rate_multiplier: 1.0,
                },
                crate::policy::RateSegment {
                    duration_secs: 1_000.0,
                    rate_multiplier: 3.0,
                },
            ])
            .unwrap();
        let r = run(cfg, &mech).unwrap();
        let (mut calm, mut spike) = (0usize, 0usize);
        for q in r.records() {
            let t = q.arrival.as_secs_f64() % 2_000.0;
            if t < 1_000.0 {
                calm += 1;
            } else {
                spike += 1;
            }
        }
        let ratio = spike as f64 / calm.max(1) as f64;
        assert!(
            (2.0..4.5).contains(&ratio),
            "spike/calm arrival ratio {ratio} should be near 3"
        );
    }

    #[test]
    fn pareto_arrivals_run_to_completion() {
        let mech = Dvfs::new();
        let mut cfg = base_cfg(SprintPolicy::never(), 0.5, 200, 71);
        cfg.arrivals = ArrivalSpec::pareto(Rate::per_hour(25.0), 0.5);
        let r = run(cfg, &mech).unwrap();
        assert_eq!(r.records().len(), 200);
    }

    #[test]
    fn rejects_invalid_config() {
        let mech = Dvfs::new();
        let mut cfg = base_cfg(SprintPolicy::never(), 0.5, 100, 1);
        cfg.slots = 0;
        assert!(Server::new(cfg, &mech).is_err());
        let mut cfg = base_cfg(SprintPolicy::never(), 0.5, 100, 1);
        cfg.num_queries = 0;
        assert!(Server::new(cfg, &mech).is_err());
        let mut cfg = base_cfg(SprintPolicy::never(), 0.5, 100, 1);
        cfg.policy = SprintPolicy::new(
            SimDuration::from_secs(60),
            BudgetSpec::Seconds(f64::NAN),
            SimDuration::from_secs(200),
        );
        assert!(Server::new(cfg, &mech).is_err());
    }

    fn sprint_cfg(n: usize, seed: u64) -> ServerConfig {
        let policy = SprintPolicy::new(
            SimDuration::from_secs(60),
            BudgetSpec::FractionOfRefill(0.2),
            SimDuration::from_secs(200),
        );
        base_cfg(policy, 0.7, n, seed)
    }

    #[test]
    fn noop_plan_is_bit_identical_to_no_plan() {
        let mech = Dvfs::new();
        let clean = run(sprint_cfg(200, 99), &mech).unwrap();
        let faulted = run_with_faults(sprint_cfg(200, 99), &mech, FaultPlan::default()).unwrap();
        assert_eq!(clean.records(), faulted.records());
        assert_eq!(faulted.fault_counters().total(), 0);
    }

    #[test]
    fn crashes_requeue_and_retry() {
        let mech = Dvfs::new();
        let plan = FaultPlan {
            crash_prob: 0.3,
            max_retries: 2,
            ..FaultPlan::default()
        };
        let r = run_with_faults(sprint_cfg(150, 7), &mech, plan).unwrap();
        assert_eq!(r.records().len(), 150, "every query still completes");
        let c = r.fault_counters();
        assert!(c.slot_crashes > 0, "crash_prob 0.3 must fire");
        let retried = r.records().iter().filter(|q| q.retries > 0).count();
        assert!(retried > 0, "some queries must record retries");
        assert!(
            r.records().iter().all(|q| q.retries <= 2),
            "retries bounded by max_retries"
        );
        // Retried queries lose progress, so their processing time spans
        // at least the crash fraction extra.
        assert!(r.records().iter().all(|q| q.depart > q.arrival));
    }

    #[test]
    fn engage_failures_suppress_sprints() {
        let mech = Dvfs::new();
        let plan = FaultPlan {
            engage_failure_prob: 1.0,
            ..FaultPlan::default()
        };
        let r = run_with_faults(sprint_cfg(200, 13), &mech, plan).unwrap();
        assert!(r.records().iter().all(|q| !q.sprinted));
        assert!(r.fault_counters().engage_failures > 0);
    }

    #[test]
    fn stuck_sprints_overrun_the_budget() {
        let mech = CpuThrottle::new(0.2);
        // Tiny budget, slow refill: a healthy server can only sprint
        // ~10 s total, so a stuck latch visibly overruns it.
        let policy = SprintPolicy::new(
            SimDuration::ZERO,
            BudgetSpec::Seconds(10.0),
            SimDuration::from_secs(1_000_000),
        );
        let mut cfg = base_cfg(policy, 0.2, 60, 31);
        cfg.arrivals = ArrivalSpec::poisson(Rate::per_hour(3.0));
        let plan = FaultPlan {
            stuck_sprint_prob: 1.0,
            ..FaultPlan::default()
        };
        let r = run_with_faults(cfg, &mech, plan).unwrap();
        assert!(r.fault_counters().stuck_sprints > 0);
        let max_sprint = r
            .records()
            .iter()
            .map(|q| q.sprint_seconds)
            .fold(0.0, f64::max);
        assert!(
            max_sprint > 15.0,
            "a stuck sprint should blow through the 10 s budget, got {max_sprint:.1}"
        );
    }

    #[test]
    fn thermal_emergencies_force_unsprint() {
        let mech = CpuThrottle::new(0.2);
        let mut cfg = base_cfg(SprintPolicy::always(), 0.8, 150, 43);
        cfg.arrivals = ArrivalSpec::poisson(Rate::per_hour(14.8 * 0.8));
        let plan = FaultPlan {
            thermal_period_secs: 500.0,
            thermal_lockout_secs: 100.0,
            ..FaultPlan::default()
        };
        let r = run_with_faults(cfg, &mech, plan).unwrap();
        let c = r.fault_counters();
        assert!(c.thermal_unsprints > 0, "thermal events must fire");
        assert!(c.lockout_refusals > 0, "lockout must refuse engages");
    }

    #[test]
    fn arrival_storms_compress_gaps() {
        let mech = Dvfs::new();
        let cfg = base_cfg(SprintPolicy::never(), 0.3, 300, 17);
        let plan = FaultPlan {
            storms: vec![faults::StormWindow {
                start_secs: 0.0,
                duration_secs: 1e9,
                multiplier: 4.0,
            }],
            ..FaultPlan::default()
        };
        let clean = run(base_cfg(SprintPolicy::never(), 0.3, 300, 17), &mech).unwrap();
        let stormy = run_with_faults(cfg, &mech, plan).unwrap();
        let clean_span = clean.records().last().unwrap().arrival.as_secs_f64();
        let stormy_span = stormy.records().last().unwrap().arrival.as_secs_f64();
        assert!(
            stormy_span < clean_span / 2.0,
            "4X storm should compress arrivals: {stormy_span:.0}s vs {clean_span:.0}s"
        );
        assert!(stormy.fault_counters().storm_arrivals > 0);
    }

    #[test]
    fn idle_supervision_is_bit_identical_to_none() {
        // A supervisor that never intervenes (no faults, watermarks
        // never reached, watchdog never exceeded) must not perturb the
        // run: its extra watchdog events are pure observers.
        let mech = Dvfs::new();
        let clean = run(sprint_cfg(200, 99), &mech).unwrap();
        let supervised = run_supervised(
            sprint_cfg(200, 99),
            &mech,
            None,
            crate::supervision::SupervisorConfig::default(),
        )
        .unwrap();
        assert_eq!(clean.records(), supervised.records());
        assert_eq!(supervised.recovery_counters().total(), 0);
        assert!(supervised.conserves_queries());
    }

    #[test]
    fn watchdog_bounds_stuck_sprint_overrun() {
        let mech = CpuThrottle::new(0.2);
        let policy = SprintPolicy::new(
            SimDuration::ZERO,
            BudgetSpec::Seconds(10.0),
            SimDuration::from_secs(1_000_000),
        );
        let mut cfg = base_cfg(policy, 0.2, 60, 31);
        cfg.arrivals = ArrivalSpec::poisson(Rate::per_hour(3.0));
        let plan = FaultPlan {
            stuck_sprint_prob: 1.0,
            ..FaultPlan::default()
        };
        let sup = crate::supervision::SupervisorConfig {
            watchdog_secs: 20.0,
            ..Default::default()
        };
        let r = run_supervised(cfg, &mech, Some(plan), sup).unwrap();
        assert!(r.recovery_counters().forced_unsprints > 0);
        let max_sprint = r
            .records()
            .iter()
            .map(|q| q.sprint_seconds)
            .fold(0.0, f64::max);
        // Without the watchdog the same plan overruns the 10 s budget
        // past 15 s (see stuck_sprints_overrun_the_budget); with it, no
        // sprint survives much past the 20 s deadline.
        assert!(
            max_sprint < 21.0,
            "watchdog must cap stuck sprints, got {max_sprint:.1}"
        );
    }

    #[test]
    fn bad_slot_is_quarantined_and_stops_crashing() {
        let mech = Dvfs::new();
        let mut cfg = sprint_cfg(200, 23);
        cfg.slots = 2;
        cfg.arrivals = ArrivalSpec::poisson(Rate::per_hour(51.0 * 1.4));
        let plan = FaultPlan {
            seed: 9,
            bad_slot: Some(0),
            bad_slot_crash_prob: 0.9,
            max_retries: 10,
            ..FaultPlan::default()
        };
        // Watermarks high enough that crash turbulence never trips
        // admission control — this test isolates slot supervision.
        let sup = crate::supervision::SupervisorConfig {
            quarantine_after: 3,
            shed_watermark: 200,
            reject_watermark: 400,
            drain_watermark: 100,
            ..Default::default()
        };
        let r = run_supervised(cfg, &mech, Some(plan), sup).unwrap();
        let rec = r.recovery_counters();
        assert_eq!(rec.quarantines, 1, "the bad slot must be quarantined");
        assert_eq!(
            r.fault_counters().slot_crashes,
            3,
            "crashes stop once the bad slot is out of rotation"
        );
        assert_eq!(rec.requeued_queries, 3);
        assert!(r.conserves_queries());
        assert_eq!(r.served(), 200, "nothing was shed, everything completes");
    }

    #[test]
    fn storm_overload_sheds_and_conserves_queries() {
        let mech = Dvfs::new();
        let cfg = sprint_cfg(300, 61);
        let plan = FaultPlan {
            storms: vec![faults::StormWindow {
                start_secs: 0.0,
                duration_secs: 1e9,
                multiplier: 8.0,
            }],
            ..FaultPlan::default()
        };
        let sup = crate::supervision::SupervisorConfig::default();
        let r = run_supervised(cfg, &mech, Some(plan), sup).unwrap();
        let rec = r.recovery_counters();
        assert!(
            rec.turned_away() > 0,
            "an 8X storm on a 70% utilized server must trip admission control"
        );
        assert!(rec.shed_queries > 0, "the ladder sheds before it rejects");
        assert!(rec.degraded_secs > 0.0);
        assert!(r.conserves_queries());
        assert_eq!(r.arrived(), 300);
        assert!(r.served() < 300);
    }

    #[test]
    fn supervised_runs_replay_bit_identically() {
        let mech = Dvfs::new();
        let plan = FaultPlan {
            seed: 5,
            stuck_sprint_prob: 0.3,
            bad_slot: Some(0),
            bad_slot_crash_prob: 0.4,
            max_retries: 4,
            storms: vec![faults::StormWindow {
                start_secs: 1_000.0,
                duration_secs: 5_000.0,
                multiplier: 5.0,
            }],
            ..FaultPlan::default()
        };
        let mut cfg = sprint_cfg(250, 3);
        cfg.slots = 2;
        let sup = crate::supervision::SupervisorConfig {
            watchdog_secs: 60.0,
            ..Default::default()
        };
        let a = run_supervised(cfg.clone(), &mech, Some(plan.clone()), sup).unwrap();
        let b = run_supervised(cfg, &mech, Some(plan), sup).unwrap();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.recovery_counters(), b.recovery_counters());
        assert_eq!(a.fault_counters(), b.fault_counters());
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let mech = Dvfs::new();
        let plan = FaultPlan {
            seed: 5,
            engage_failure_prob: 0.2,
            stuck_sprint_prob: 0.1,
            crash_prob: 0.15,
            max_retries: 2,
            budget_drift_secs: -5.0,
            thermal_period_secs: 800.0,
            thermal_lockout_secs: 60.0,
            ..FaultPlan::default()
        };
        let a = run_with_faults(sprint_cfg(200, 3), &mech, plan.clone()).unwrap();
        let b = run_with_faults(sprint_cfg(200, 3), &mech, plan).unwrap();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.fault_counters().total(), b.fault_counters().total());
    }
}
