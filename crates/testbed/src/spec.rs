//! Serializable run specifications for record/replay tooling.
//!
//! A [`RunSpec`] captures everything that determines a testbed run:
//! the [`ServerConfig`], the mechanism, and the optional fault plan and
//! supervisor. Because every run is a pure function of its spec (one
//! root seed, one event queue, one virtual clock), persisting the spec
//! alongside a reactor journal is enough to re-execute the run
//! bit-identically later — `reactor_replay` does exactly that.
//!
//! Serialization uses the workspace's own JSON model. Seeds and
//! durations are `u64` micros/values that can exceed the 2^53 range
//! where `f64` stays exact, so they are encoded as decimal *strings*
//! and parsed back losslessly.

use crate::policy::{ArrivalSpec, BudgetSpec, RateSegment, ServerConfig, SprintPolicy};
use crate::server::Server;
use crate::RunResult;
use faults::{FaultPlan, LinkPartition, MessageFaults, Peer, StormWindow};
use mechanisms::MechanismKind;
use reactor::Journal;
use simcore::dist::DistKind;
use simcore::health::HealthSignal;
use simcore::json::Json;
use simcore::time::{Rate, SimDuration};
use simcore::SprintError;
use workloads::{QueryMix, WorkloadKind};

use crate::supervision::SupervisorConfig;

/// Format version stamped into serialized specs; bumped on breaking
/// schema changes so stale journals fail loudly instead of replaying
/// the wrong run.
pub const SPEC_VERSION: u64 = 1;

/// A complete, serializable description of one testbed run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Server configuration (workload mix, arrivals, policy, seed).
    pub cfg: ServerConfig,
    /// Sprinting mechanism under test (default-configured).
    pub mechanism: MechanismKind,
    /// Optional fault plan, including message-level faults.
    pub plan: Option<FaultPlan>,
    /// Optional supervisor configuration.
    pub supervisor: Option<SupervisorConfig>,
}

impl RunSpec {
    /// A plain run: no faults, no supervision.
    pub fn new(cfg: ServerConfig, mechanism: MechanismKind) -> RunSpec {
        RunSpec {
            cfg,
            mechanism,
            plan: None,
            supervisor: None,
        }
    }

    /// Serializes the spec to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version".into(), Json::Num(SPEC_VERSION as f64)),
            ("cfg".into(), cfg_to_json(&self.cfg)),
            ("mechanism".into(), Json::Str(self.mechanism.name().into())),
        ];
        if let Some(plan) = &self.plan {
            fields.push(("plan".into(), plan_to_json(plan)));
        }
        if let Some(sup) = &self.supervisor {
            fields.push(("supervisor".into(), sup_to_json(sup)));
        }
        Json::Obj(fields)
    }

    /// Parses a spec back from [`RunSpec::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::Parse`] on a missing/ill-typed field or
    /// an unsupported spec version.
    pub fn from_json(v: &Json) -> Result<RunSpec, SprintError> {
        let version = v.field("version")?.as_f64()? as u64;
        if version != SPEC_VERSION {
            return Err(SprintError::Parse(format!(
                "unsupported spec version {version} (expected {SPEC_VERSION})"
            )));
        }
        let mech_name = v.field("mechanism")?.as_str()?;
        let mechanism = MechanismKind::parse(mech_name)
            .ok_or_else(|| SprintError::Parse(format!("unknown mechanism `{mech_name}`")))?;
        Ok(RunSpec {
            cfg: cfg_from_json(v.field("cfg")?)?,
            mechanism,
            plan: v.get("plan").map(plan_from_json).transpose()?,
            supervisor: v.get("supervisor").map(sup_from_json).transpose()?,
        })
    }
}

/// Runs a spec to completion with the reactor journal enabled.
///
/// This is the record/replay entry point: the same spec always
/// produces the same `(RunResult, Journal)` pair, byte for byte.
///
/// # Errors
///
/// Returns an error if any configuration fails validation or a
/// simulation invariant breaks mid-run.
pub fn run_journaled(spec: &RunSpec) -> Result<(RunResult, Journal), SprintError> {
    let mech = spec.mechanism.build();
    let server = match (&spec.plan, &spec.supervisor) {
        (None, None) => Server::new(spec.cfg.clone(), &*mech)?,
        (Some(plan), None) => Server::with_faults(spec.cfg.clone(), &*mech, plan.clone())?,
        (plan, Some(sup)) => {
            Server::with_supervision(spec.cfg.clone(), &*mech, plan.clone(), *sup)?
        }
    };
    server.run_journaled()
}

// ---------------------------------------------------------------------
// Encoding helpers. u64 values (seeds, duration micros) are strings so
// they survive the f64-only JSON number model exactly.

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn u64_str(x: u64) -> Json {
    Json::Str(x.to_string())
}

fn u64_of(v: &Json, what: &str) -> Result<u64, SprintError> {
    v.as_str()?
        .parse::<u64>()
        .map_err(|e| SprintError::Parse(format!("{what}: {e}")))
}

fn usize_of(v: &Json) -> Result<usize, SprintError> {
    let x = v.as_f64()?;
    if x < 0.0 || x.fract() != 0.0 || x >= 2f64.powi(53) {
        return Err(SprintError::Parse(format!("expected a count, got {x}")));
    }
    Ok(x as usize)
}

fn bool_of(v: &Json) -> Result<bool, SprintError> {
    match v {
        Json::Bool(b) => Ok(*b),
        other => Err(SprintError::Parse(format!(
            "expected boolean, got {other:?}"
        ))),
    }
}

fn duration_to_json(d: SimDuration) -> Json {
    u64_str(d.0)
}

fn duration_of(v: &Json) -> Result<SimDuration, SprintError> {
    Ok(SimDuration(u64_of(v, "duration micros")?))
}

// ---------------------------------------------------------------------
// ServerConfig

fn cfg_to_json(cfg: &ServerConfig) -> Json {
    obj(vec![
        ("mix", mix_to_json(&cfg.mix)),
        ("arrivals", arrivals_to_json(&cfg.arrivals)),
        ("policy", policy_to_json(&cfg.policy)),
        ("slots", Json::Num(cfg.slots as f64)),
        ("num_queries", Json::Num(cfg.num_queries as f64)),
        ("warmup", Json::Num(cfg.warmup as f64)),
        ("seed", u64_str(cfg.seed)),
    ])
}

fn cfg_from_json(v: &Json) -> Result<ServerConfig, SprintError> {
    Ok(ServerConfig {
        mix: mix_from_json(v.field("mix")?)?,
        arrivals: arrivals_from_json(v.field("arrivals")?)?,
        policy: policy_from_json(v.field("policy")?)?,
        slots: usize_of(v.field("slots")?)?,
        num_queries: usize_of(v.field("num_queries")?)?,
        warmup: usize_of(v.field("warmup")?)?,
        seed: u64_of(v.field("seed")?, "cfg seed")?,
    })
}

fn mix_to_json(mix: &QueryMix) -> Json {
    Json::Arr(
        mix.components()
            .iter()
            .map(|&(k, w)| {
                obj(vec![
                    ("workload", Json::Str(k.name().into())),
                    ("weight", Json::Num(w)),
                ])
            })
            .collect(),
    )
}

fn mix_from_json(v: &Json) -> Result<QueryMix, SprintError> {
    let mut components: Vec<(WorkloadKind, f64)> = Vec::new();
    for item in v.as_arr()? {
        let name = item.field("workload")?.as_str()?;
        let kind = WorkloadKind::parse(name)
            .ok_or_else(|| SprintError::Parse(format!("unknown workload `{name}`")))?;
        let weight = item.field("weight")?.as_f64()?;
        // Pre-validate what `QueryMix::weighted` would panic on.
        if components.iter().any(|&(k, _)| k == kind) {
            return Err(SprintError::Parse(format!(
                "duplicate mix component `{name}`"
            )));
        }
        if !(weight.is_finite() && weight >= 0.0) {
            return Err(SprintError::Parse(format!("invalid mix weight {weight}")));
        }
        components.push((kind, weight));
    }
    if components.is_empty() || components.iter().map(|&(_, w)| w).sum::<f64>() <= 0.0 {
        return Err(SprintError::Parse(
            "mix needs at least one positively weighted component".into(),
        ));
    }
    Ok(QueryMix::weighted(components))
}

fn dist_kind_to_json(kind: DistKind) -> Json {
    match kind {
        DistKind::Deterministic => obj(vec![("kind", Json::Str("deterministic".into()))]),
        DistKind::Exponential => obj(vec![("kind", Json::Str("exponential".into()))]),
        DistKind::Pareto { alpha } => obj(vec![
            ("kind", Json::Str("pareto".into())),
            ("alpha", Json::Num(alpha)),
        ]),
        DistKind::Lognormal { cov } => obj(vec![
            ("kind", Json::Str("lognormal".into())),
            ("cov", Json::Num(cov)),
        ]),
        DistKind::Hyperexponential { cov } => obj(vec![
            ("kind", Json::Str("hyperexponential".into())),
            ("cov", Json::Num(cov)),
        ]),
    }
}

fn dist_kind_from_json(v: &Json) -> Result<DistKind, SprintError> {
    match v.field("kind")?.as_str()? {
        "deterministic" => Ok(DistKind::Deterministic),
        "exponential" => Ok(DistKind::Exponential),
        "pareto" => Ok(DistKind::Pareto {
            alpha: v.field("alpha")?.as_f64()?,
        }),
        "lognormal" => Ok(DistKind::Lognormal {
            cov: v.field("cov")?.as_f64()?,
        }),
        "hyperexponential" => Ok(DistKind::Hyperexponential {
            cov: v.field("cov")?.as_f64()?,
        }),
        other => Err(SprintError::Parse(format!(
            "unknown distribution kind `{other}`"
        ))),
    }
}

fn arrivals_to_json(a: &ArrivalSpec) -> Json {
    let mut fields = vec![
        ("rate_qph", Json::Num(a.rate.qph())),
        ("dist", dist_kind_to_json(a.kind)),
    ];
    if let Some(segments) = &a.modulation {
        fields.push((
            "modulation",
            Json::Arr(
                segments
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("duration_secs", Json::Num(s.duration_secs)),
                            ("rate_multiplier", Json::Num(s.rate_multiplier)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    obj(fields)
}

fn arrivals_from_json(v: &Json) -> Result<ArrivalSpec, SprintError> {
    let qph = v.field("rate_qph")?.as_f64()?;
    if !(qph.is_finite() && qph >= 0.0) {
        return Err(SprintError::Parse(format!("invalid arrival rate {qph}")));
    }
    let modulation = match v.get("modulation") {
        None => None,
        Some(m) => {
            let mut segments = Vec::new();
            for item in m.as_arr()? {
                segments.push(RateSegment {
                    duration_secs: item.field("duration_secs")?.as_f64()?,
                    rate_multiplier: item.field("rate_multiplier")?.as_f64()?,
                });
            }
            Some(segments)
        }
    };
    Ok(ArrivalSpec {
        rate: Rate::per_hour(qph),
        kind: dist_kind_from_json(v.field("dist")?)?,
        modulation,
    })
}

fn budget_to_json(b: BudgetSpec) -> Json {
    match b {
        BudgetSpec::Seconds(s) => obj(vec![
            ("kind", Json::Str("seconds".into())),
            ("seconds", Json::Num(s)),
        ]),
        BudgetSpec::FractionOfRefill(f) => obj(vec![
            ("kind", Json::Str("fraction-of-refill".into())),
            ("fraction", Json::Num(f)),
        ]),
        BudgetSpec::Unlimited => obj(vec![("kind", Json::Str("unlimited".into()))]),
    }
}

fn budget_from_json(v: &Json) -> Result<BudgetSpec, SprintError> {
    match v.field("kind")?.as_str()? {
        "seconds" => Ok(BudgetSpec::Seconds(v.field("seconds")?.as_f64()?)),
        "fraction-of-refill" => Ok(BudgetSpec::FractionOfRefill(v.field("fraction")?.as_f64()?)),
        "unlimited" => Ok(BudgetSpec::Unlimited),
        other => Err(SprintError::Parse(format!("unknown budget kind `{other}`"))),
    }
}

fn policy_to_json(p: &SprintPolicy) -> Json {
    obj(vec![
        ("timeout_micros", duration_to_json(p.timeout)),
        ("budget", budget_to_json(p.budget)),
        ("refill_micros", duration_to_json(p.refill)),
        ("sprint_enabled", Json::Bool(p.sprint_enabled)),
    ])
}

fn policy_from_json(v: &Json) -> Result<SprintPolicy, SprintError> {
    Ok(SprintPolicy {
        timeout: duration_of(v.field("timeout_micros")?)?,
        budget: budget_from_json(v.field("budget")?)?,
        refill: duration_of(v.field("refill_micros")?)?,
        sprint_enabled: bool_of(v.field("sprint_enabled")?)?,
    })
}

// ---------------------------------------------------------------------
// FaultPlan

fn plan_to_json(p: &FaultPlan) -> Json {
    obj(vec![
        ("seed", u64_str(p.seed)),
        ("engage_failure_prob", Json::Num(p.engage_failure_prob)),
        ("stuck_sprint_prob", Json::Num(p.stuck_sprint_prob)),
        ("budget_drift_secs", Json::Num(p.budget_drift_secs)),
        ("crash_prob", Json::Num(p.crash_prob)),
        (
            "bad_slot",
            match p.bad_slot {
                Some(s) => Json::Num(s as f64),
                None => Json::Null,
            },
        ),
        ("bad_slot_crash_prob", Json::Num(p.bad_slot_crash_prob)),
        ("max_retries", Json::Num(f64::from(p.max_retries))),
        ("crash_repair_secs", Json::Num(p.crash_repair_secs)),
        (
            "storms",
            Json::Arr(
                p.storms
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("start_secs", Json::Num(s.start_secs)),
                            ("duration_secs", Json::Num(s.duration_secs)),
                            ("multiplier", Json::Num(s.multiplier)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("thermal_period_secs", Json::Num(p.thermal_period_secs)),
        ("thermal_lockout_secs", Json::Num(p.thermal_lockout_secs)),
        ("messages", messages_to_json(&p.messages)),
    ])
}

fn plan_from_json(v: &Json) -> Result<FaultPlan, SprintError> {
    let mut storms = Vec::new();
    for item in v.field("storms")?.as_arr()? {
        storms.push(StormWindow {
            start_secs: item.field("start_secs")?.as_f64()?,
            duration_secs: item.field("duration_secs")?.as_f64()?,
            multiplier: item.field("multiplier")?.as_f64()?,
        });
    }
    let bad_slot = match v.field("bad_slot")? {
        Json::Null => None,
        other => Some(usize_of(other)?),
    };
    Ok(FaultPlan {
        seed: u64_of(v.field("seed")?, "plan seed")?,
        engage_failure_prob: v.field("engage_failure_prob")?.as_f64()?,
        stuck_sprint_prob: v.field("stuck_sprint_prob")?.as_f64()?,
        budget_drift_secs: v.field("budget_drift_secs")?.as_f64()?,
        crash_prob: v.field("crash_prob")?.as_f64()?,
        bad_slot,
        bad_slot_crash_prob: v.field("bad_slot_crash_prob")?.as_f64()?,
        max_retries: usize_of(v.field("max_retries")?)? as u32,
        crash_repair_secs: v.field("crash_repair_secs")?.as_f64()?,
        storms,
        thermal_period_secs: v.field("thermal_period_secs")?.as_f64()?,
        thermal_lockout_secs: v.field("thermal_lockout_secs")?.as_f64()?,
        messages: messages_from_json(v.field("messages")?)?,
    })
}

fn messages_to_json(m: &MessageFaults) -> Json {
    obj(vec![
        ("delay_prob", Json::Num(m.delay_prob)),
        ("delay_secs", Json::Num(m.delay_secs)),
        ("drop_prob", Json::Num(m.drop_prob)),
        ("dup_prob", Json::Num(m.dup_prob)),
        (
            "partitions",
            Json::Arr(
                m.partitions
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("a", Json::Str(p.a.name().into())),
                            ("b", Json::Str(p.b.name().into())),
                            ("start_secs", Json::Num(p.start_secs)),
                            ("duration_secs", Json::Num(p.duration_secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn peer_of(v: &Json) -> Result<Peer, SprintError> {
    let name = v.as_str()?;
    Peer::parse(name).ok_or_else(|| SprintError::Parse(format!("unknown peer `{name}`")))
}

fn messages_from_json(v: &Json) -> Result<MessageFaults, SprintError> {
    let mut partitions = Vec::new();
    for item in v.field("partitions")?.as_arr()? {
        partitions.push(LinkPartition {
            a: peer_of(item.field("a")?)?,
            b: peer_of(item.field("b")?)?,
            start_secs: item.field("start_secs")?.as_f64()?,
            duration_secs: item.field("duration_secs")?.as_f64()?,
        });
    }
    Ok(MessageFaults {
        delay_prob: v.field("delay_prob")?.as_f64()?,
        delay_secs: v.field("delay_secs")?.as_f64()?,
        drop_prob: v.field("drop_prob")?.as_f64()?,
        dup_prob: v.field("dup_prob")?.as_f64()?,
        partitions,
    })
}

// ---------------------------------------------------------------------
// SupervisorConfig

fn health_to_json(h: HealthSignal) -> Json {
    Json::Str(
        match h {
            HealthSignal::Healthy => "healthy",
            HealthSignal::Degraded => "degraded",
            HealthSignal::Failed => "failed",
        }
        .into(),
    )
}

fn health_from_json(v: &Json) -> Result<HealthSignal, SprintError> {
    match v.as_str()? {
        "healthy" => Ok(HealthSignal::Healthy),
        "degraded" => Ok(HealthSignal::Degraded),
        "failed" => Ok(HealthSignal::Failed),
        other => Err(SprintError::Parse(format!(
            "unknown health signal `{other}`"
        ))),
    }
}

fn sup_to_json(s: &SupervisorConfig) -> Json {
    obj(vec![
        ("watchdog_secs", Json::Num(s.watchdog_secs)),
        ("restart_backoff_secs", Json::Num(s.restart_backoff_secs)),
        (
            "restart_backoff_cap_secs",
            Json::Num(s.restart_backoff_cap_secs),
        ),
        ("quarantine_after", Json::Num(f64::from(s.quarantine_after))),
        ("shed_watermark", Json::Num(s.shed_watermark as f64)),
        ("reject_watermark", Json::Num(s.reject_watermark as f64)),
        ("drain_watermark", Json::Num(s.drain_watermark as f64)),
        ("model_health", health_to_json(s.model_health)),
    ])
}

fn sup_from_json(v: &Json) -> Result<SupervisorConfig, SprintError> {
    Ok(SupervisorConfig {
        watchdog_secs: v.field("watchdog_secs")?.as_f64()?,
        restart_backoff_secs: v.field("restart_backoff_secs")?.as_f64()?,
        restart_backoff_cap_secs: v.field("restart_backoff_cap_secs")?.as_f64()?,
        quarantine_after: usize_of(v.field("quarantine_after")?)? as u32,
        shed_watermark: usize_of(v.field("shed_watermark")?)?,
        reject_watermark: usize_of(v.field("reject_watermark")?)?,
        drain_watermark: usize_of(v.field("drain_watermark")?)?,
        model_health: health_from_json(v.field("model_health")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    fn sample_spec() -> RunSpec {
        let cfg = ServerConfig {
            mix: QueryMix::mix_i(),
            arrivals: ArrivalSpec::poisson_with_spike(Rate::per_hour(28.0), 3.0, 600.0, 3600.0)
                .expect("valid spike"),
            policy: SprintPolicy::new(
                SimDuration::from_secs(60),
                BudgetSpec::FractionOfRefill(0.2),
                SimDuration::from_secs(3600),
            ),
            slots: 2,
            num_queries: 120,
            warmup: 10,
            seed: u64::MAX - 3,
        };
        RunSpec {
            cfg,
            mechanism: MechanismKind::CpuThrottle,
            plan: Some(FaultPlan {
                seed: 0xDEAD_BEEF_DEAD_BEEF,
                engage_failure_prob: 0.1,
                stuck_sprint_prob: 0.05,
                bad_slot: Some(1),
                storms: vec![StormWindow {
                    start_secs: 100.0,
                    duration_secs: 50.0,
                    multiplier: 3.0,
                }],
                messages: MessageFaults {
                    delay_prob: 0.3,
                    delay_secs: 20.0,
                    drop_prob: 0.1,
                    dup_prob: 0.1,
                    partitions: vec![LinkPartition {
                        a: Peer::Watchdog,
                        b: Peer::Controller,
                        start_secs: 0.0,
                        duration_secs: 500.0,
                    }],
                },
                ..FaultPlan::default()
            }),
            supervisor: Some(SupervisorConfig {
                watchdog_secs: 45.0,
                ..SupervisorConfig::default()
            }),
        }
    }

    #[test]
    fn spec_round_trips_through_json_text() {
        let spec = sample_spec();
        let text = spec.to_json().to_string_pretty();
        let back = RunSpec::from_json(&Json::parse(&text).expect("valid json")).expect("parses");
        // Field-level equality: the structs don't derive PartialEq
        // across crates, so compare the canonical serialized forms.
        assert_eq!(text, back.to_json().to_string_pretty());
        // And the bits that matter most survive exactly.
        assert_eq!(back.cfg.seed, u64::MAX - 3);
        assert_eq!(
            back.plan.as_ref().expect("plan").seed,
            0xDEAD_BEEF_DEAD_BEEF
        );
        assert_eq!(back.mechanism, MechanismKind::CpuThrottle);
        assert_eq!(
            back.plan.expect("plan").messages.partitions[0].a,
            Peer::Watchdog
        );
    }

    #[test]
    fn minimal_spec_round_trips_without_optionals() {
        let spec = RunSpec::new(
            ServerConfig::single(
                WorkloadKind::Jacobi,
                Rate::per_hour(49.0),
                0.6,
                SprintPolicy::never(),
                7,
            ),
            MechanismKind::Dvfs,
        );
        let text = spec.to_json().to_string_pretty();
        let back = RunSpec::from_json(&Json::parse(&text).expect("valid json")).expect("parses");
        assert!(back.plan.is_none());
        assert!(back.supervisor.is_none());
        // SimDuration::MAX (the `never()` timeout) survives the string
        // encoding even though it exceeds f64's exact-integer range.
        assert_eq!(back.cfg.policy.timeout, SimDuration::MAX);
        assert_eq!(text, back.to_json().to_string_pretty());
    }

    #[test]
    fn same_spec_same_journal() {
        let spec = RunSpec::new(
            ServerConfig::single(
                WorkloadKind::Jacobi,
                Rate::per_hour(49.0),
                0.6,
                SprintPolicy::new(
                    SimDuration::from_secs(60),
                    BudgetSpec::Seconds(30.0),
                    SimDuration::from_secs(3600),
                ),
                11,
            ),
            MechanismKind::Dvfs,
        );
        let (r1, j1) = run_journaled(&spec).expect("runs");
        let (r2, j2) = run_journaled(&spec).expect("runs");
        assert_eq!(r1.records(), r2.records());
        assert!(!j1.is_empty());
        assert_eq!(j1.to_jsonl(), j2.to_jsonl());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let spec = sample_spec();
        let mut v = spec.to_json();
        if let Json::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "mechanism");
        }
        assert!(RunSpec::from_json(&v).is_err());
        assert!(RunSpec::from_json(&Json::Num(3.0)).is_err());
        let bad_version = Json::Obj(vec![("version".into(), Json::Num(999.0))]);
        assert!(RunSpec::from_json(&bad_version).is_err());
    }
}
