//! Steady-state summaries of a testbed run.
//!
//! Profiling (§2.1) captures response time, service time and queueing
//! delay for each query execution; `RunResult` wraps the per-query
//! records and exposes the aggregates the modeling pipeline and the
//! evaluation harness consume.

use crate::query::QueryRecord;
use crate::supervision::RecoveryCounters;
use faults::FaultCounters;
use obs::RunTelemetry;
use simcore::stats::Percentiles;
use simcore::time::Rate;
use simcore::SprintError;

/// All records from one run plus the warmup cutoff.
#[derive(Debug, Clone)]
pub struct RunResult {
    records: Vec<QueryRecord>,
    warmup: usize,
    faults: FaultCounters,
    recovery: RecoveryCounters,
    arrived: usize,
    telemetry: Option<RunTelemetry>,
}

/// Assembles a [`RunResult`]. The single construction path for every
/// run flavour (pristine, faulted, supervised, recorded), so a newly
/// added field cannot be silently defaulted away by one of several
/// parallel constructors.
#[derive(Debug)]
pub struct RunResultBuilder {
    records: Vec<QueryRecord>,
    warmup: usize,
    faults: FaultCounters,
    recovery: RecoveryCounters,
    arrived: Option<usize>,
    telemetry: Option<RunTelemetry>,
}

impl RunResultBuilder {
    /// Attaches fault-injection counters observed during the run.
    pub fn faults(mut self, faults: FaultCounters) -> RunResultBuilder {
        self.faults = faults;
        self
    }

    /// Attaches supervisor intervention counters and the true arrival
    /// count (served + shed + rejected) of a supervised run.
    pub fn recovery(mut self, recovery: RecoveryCounters, arrived: usize) -> RunResultBuilder {
        self.recovery = recovery;
        self.arrived = Some(arrived);
        self
    }

    /// Attaches the flight-recorder snapshot of a recorded run.
    pub fn telemetry(mut self, telemetry: RunTelemetry) -> RunResultBuilder {
        self.telemetry = Some(telemetry);
        self
    }

    /// Finalizes the result. Without an explicit [`recovery`] call the
    /// arrival count equals the record count (every arrival served).
    ///
    /// [`recovery`]: RunResultBuilder::recovery
    pub fn build(self) -> RunResult {
        let arrived = self.arrived.unwrap_or(self.records.len());
        RunResult {
            records: self.records,
            warmup: self.warmup,
            faults: self.faults,
            recovery: self.recovery,
            arrived,
            telemetry: self.telemetry,
        }
    }
}

impl RunResult {
    /// Starts building a result from per-query records; the first
    /// `warmup` queries (by id) are excluded from steady-state
    /// statistics.
    pub fn builder(records: Vec<QueryRecord>, warmup: usize) -> RunResultBuilder {
        RunResultBuilder {
            records,
            warmup,
            faults: FaultCounters::default(),
            recovery: RecoveryCounters::default(),
            arrived: None,
            telemetry: None,
        }
    }

    /// Wraps per-query records; the first `warmup` queries (by id) are
    /// excluded from steady-state statistics.
    pub fn new(records: Vec<QueryRecord>, warmup: usize) -> RunResult {
        RunResult::builder(records, warmup).build()
    }

    /// Like [`RunResult::new`], but carries the fault-injection
    /// counters observed during the run.
    pub fn with_faults(
        records: Vec<QueryRecord>,
        warmup: usize,
        faults: FaultCounters,
    ) -> RunResult {
        RunResult::builder(records, warmup).faults(faults).build()
    }

    /// Like [`RunResult::with_faults`], but for a supervised run where
    /// not every arrival produced a record: `arrived` counts all
    /// arrivals (served + shed + rejected) and `recovery` carries the
    /// supervisor's intervention counters.
    pub fn with_recovery(
        records: Vec<QueryRecord>,
        warmup: usize,
        faults: FaultCounters,
        recovery: RecoveryCounters,
        arrived: usize,
    ) -> RunResult {
        RunResult::builder(records, warmup)
            .faults(faults)
            .recovery(recovery, arrived)
            .build()
    }

    /// Flight-recorder snapshot, if the run was recorded (`None` for
    /// the default, unrecorded server).
    pub fn telemetry(&self) -> Option<&RunTelemetry> {
        self.telemetry.as_ref()
    }

    /// Per-fault-class event counts for the run (all zero when no fault
    /// plan was active).
    pub fn fault_counters(&self) -> &FaultCounters {
        &self.faults
    }

    /// Per-intervention counts from the supervisor (all zero when the
    /// run was unsupervised).
    pub fn recovery_counters(&self) -> &RecoveryCounters {
        &self.recovery
    }

    /// Total arrivals, whether served, shed or rejected.
    pub fn arrived(&self) -> usize {
        self.arrived
    }

    /// Queries served to completion (one per record).
    pub fn served(&self) -> usize {
        self.records.len()
    }

    /// Whether the query-conservation invariant holds: every arrival is
    /// accounted for as served, shed, or rejected.
    pub fn conserves_queries(&self) -> bool {
        self.served() as u64 + self.recovery.turned_away() == self.arrived as u64
    }

    /// Fraction of *arrived* queries served within `slo_secs`. Shed and
    /// rejected arrivals count as SLO misses, so turning work away is
    /// never free — it only pays off when the queries it protects would
    /// otherwise miss the SLO too.
    pub fn slo_attainment(&self, slo_secs: f64) -> f64 {
        if self.arrived == 0 {
            return 1.0;
        }
        let within = self
            .records
            .iter()
            .filter(|q| q.response_time().as_secs_f64() <= slo_secs)
            .count();
        within as f64 / self.arrived as f64
    }

    /// All records, including warmup.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Steady-state records (warmup excluded).
    pub fn steady(&self) -> &[QueryRecord] {
        &self.records[self.warmup.min(self.records.len())..]
    }

    /// Mean end-to-end response time in seconds.
    pub fn mean_response_secs(&self) -> f64 {
        mean(self.steady(), |q| q.response_time().as_secs_f64())
    }

    /// Mean queueing delay in seconds.
    pub fn mean_queue_delay_secs(&self) -> f64 {
        mean(self.steady(), |q| q.queue_delay().as_secs_f64())
    }

    /// Mean processing time in seconds.
    pub fn mean_processing_secs(&self) -> f64 {
        mean(self.steady(), |q| q.processing_time().as_secs_f64())
    }

    /// Response-time quantile (`q` in `[0, 1]`) in seconds. An empty
    /// steady-state set (all warmup, or nothing served) reports `0.0`,
    /// matching the other summary statistics.
    pub fn response_quantile_secs(&self, q: f64) -> f64 {
        self.try_response_quantile_secs(q).unwrap_or(0.0)
    }

    /// Strict variant of [`RunResult::response_quantile_secs`] for
    /// callers that must distinguish "tail is 0 s" from "there was
    /// nothing to measure".
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] if `q` is outside
    /// `[0, 1]` or the steady-state record set is empty.
    pub fn try_response_quantile_secs(&self, q: f64) -> Result<f64, SprintError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SprintError::invalid(
                "RunResult::response_quantile",
                format!("quantile {q} outside [0, 1]"),
            ));
        }
        let steady = self.steady();
        if steady.is_empty() {
            return Err(SprintError::invalid(
                "RunResult::response_quantile",
                "no steady-state records to take a quantile of",
            ));
        }
        Ok(Percentiles::from_samples(
            steady
                .iter()
                .map(|r| r.response_time().as_secs_f64())
                .collect(),
        )
        .quantile(q))
    }

    /// Fraction of steady-state queries whose response time exceeds
    /// `secs` (tail mass, §4.4).
    pub fn tail_fraction(&self, secs: f64) -> f64 {
        let s = self.steady();
        if s.is_empty() {
            return 0.0;
        }
        s.iter()
            .filter(|q| q.response_time().as_secs_f64() > secs)
            .count() as f64
            / s.len() as f64
    }

    /// Fraction of steady-state queries that sprinted.
    pub fn sprint_fraction(&self) -> f64 {
        let s = self.steady();
        if s.is_empty() {
            return 0.0;
        }
        s.iter().filter(|q| q.sprinted).count() as f64 / s.len() as f64
    }

    /// Measured service rate µ from queries that never sprinted
    /// (inverse mean processing time) — the profiler's µ output.
    ///
    /// Returns `None` if no steady-state query ran without sprinting.
    pub fn measured_service_rate(&self) -> Option<Rate> {
        let times: Vec<f64> = self
            .steady()
            .iter()
            .filter(|q| !q.sprinted)
            .map(|q| q.processing_time().as_secs_f64())
            .collect();
        if times.is_empty() {
            return None;
        }
        let mean_secs = times.iter().sum::<f64>() / times.len() as f64;
        Some(Rate::per_hour(3_600.0 / mean_secs))
    }

    /// Measured processing rate of queries that sprinted from dispatch
    /// (timed out while queued) — the profiler's marginal-rate µm
    /// output when the run uses [`SprintPolicy::always`].
    ///
    /// [`SprintPolicy::always`]: crate::policy::SprintPolicy::always
    pub fn measured_sprinted_rate(&self) -> Option<Rate> {
        let times: Vec<f64> = self
            .steady()
            .iter()
            .filter(|q| q.sprinted)
            .map(|q| q.processing_time().as_secs_f64())
            .collect();
        if times.is_empty() {
            return None;
        }
        let mean_secs = times.iter().sum::<f64>() / times.len() as f64;
        Some(Rate::per_hour(3_600.0 / mean_secs))
    }

    /// Steady-state response times in seconds (for distribution fits).
    pub fn response_times_secs(&self) -> Vec<f64> {
        self.steady()
            .iter()
            .map(|q| q.response_time().as_secs_f64())
            .collect()
    }

    /// Steady-state processing times in seconds.
    pub fn processing_times_secs(&self) -> Vec<f64> {
        self.steady()
            .iter()
            .map(|q| q.processing_time().as_secs_f64())
            .collect()
    }
}

fn mean(records: &[QueryRecord], f: impl Fn(&QueryRecord) -> f64) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(f).sum::<f64>() / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use workloads::WorkloadKind;

    fn rec(id: u64, arrival: u64, dispatch: u64, depart: u64, sprinted: bool) -> QueryRecord {
        QueryRecord {
            id,
            kind: WorkloadKind::Jacobi,
            arrival: SimTime::from_secs(arrival),
            dispatch: SimTime::from_secs(dispatch),
            depart: SimTime::from_secs(depart),
            timed_out: sprinted,
            sprinted,
            sprint_seconds: 0.0,
            retries: 0,
        }
    }

    #[test]
    fn quantiles_are_typed_on_empty_or_invalid_input() {
        // All records inside warmup: nothing steady to measure.
        let r = RunResult::new(vec![rec(0, 0, 0, 10, false)], 1);
        assert_eq!(r.response_quantile_secs(0.99), 0.0);
        assert!(r.try_response_quantile_secs(0.99).is_err());
        let r = RunResult::new(vec![rec(0, 0, 0, 10, false)], 0);
        assert!(r.try_response_quantile_secs(1.5).is_err());
        assert!(r.try_response_quantile_secs(-0.1).is_err());
        assert!((r.try_response_quantile_secs(0.5).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fault_counters_default_to_zero() {
        let r = RunResult::new(vec![rec(0, 0, 0, 10, false)], 0);
        assert_eq!(r.fault_counters().total(), 0);
        assert_eq!(r.recovery_counters().total(), 0);
        assert!(r.conserves_queries());
    }

    #[test]
    fn recovery_accounting_and_slo_attainment() {
        let recovery = RecoveryCounters {
            shed_queries: 1,
            rejected_queries: 1,
            ..RecoveryCounters::default()
        };
        let r = RunResult::with_recovery(
            vec![rec(0, 0, 0, 100, false), rec(1, 0, 0, 400, false)],
            0,
            FaultCounters::default(),
            recovery,
            4,
        );
        assert_eq!(r.arrived(), 4);
        assert_eq!(r.served(), 2);
        assert!(r.conserves_queries());
        // One of four arrivals made a 200 s SLO; shed/rejected miss.
        assert!((r.slo_attainment(200.0) - 0.25).abs() < 1e-12);
        assert!((r.slo_attainment(1000.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warmup_excluded_from_means() {
        let r = RunResult::new(
            vec![
                rec(0, 0, 0, 1000, false), // Warmup outlier.
                rec(1, 0, 0, 100, false),
                rec(2, 0, 0, 200, false),
            ],
            1,
        );
        assert_eq!(r.steady().len(), 2);
        assert_eq!(r.mean_response_secs(), 150.0);
    }

    #[test]
    fn service_rate_uses_non_sprinted_only() {
        let r = RunResult::new(
            vec![
                rec(0, 0, 10, 110, false), // 100 s processing.
                rec(1, 0, 10, 60, true),   // 50 s, sprinted.
            ],
            0,
        );
        let mu = r.measured_service_rate().unwrap();
        assert!((mu.qph() - 36.0).abs() < 1e-9);
        let mu_m = r.measured_sprinted_rate().unwrap();
        assert!((mu_m.qph() - 72.0).abs() < 1e-9);
    }

    #[test]
    fn tail_fraction_counts_exceedances() {
        let r = RunResult::new(
            vec![
                rec(0, 0, 0, 100, false),
                rec(1, 0, 0, 300, false),
                rec(2, 0, 0, 400, false),
                rec(3, 0, 0, 50, false),
            ],
            0,
        );
        assert_eq!(r.tail_fraction(250.0), 0.5);
        assert_eq!(r.tail_fraction(1000.0), 0.0);
    }

    #[test]
    fn quantiles_and_sprint_fraction() {
        let r = RunResult::new(
            vec![
                rec(0, 0, 0, 100, true),
                rec(1, 0, 0, 200, false),
                rec(2, 0, 0, 300, false),
            ],
            0,
        );
        assert_eq!(r.response_quantile_secs(0.5), 200.0);
        assert!((r.sprint_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sprinted_set_is_none() {
        let r = RunResult::new(vec![rec(0, 0, 0, 10, false)], 0);
        assert!(r.measured_sprinted_rate().is_none());
        assert!(r.measured_service_rate().is_some());
    }
}
