//! Per-query state and the timestamp records profiling consumes.

use simcore::time::{SimDuration, SimTime};
use workloads::WorkloadKind;

/// Everything the queue manager logs about one completed query — the
/// same observables the paper's profiler records via timestamps (§2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Sequential query id in arrival order.
    pub id: u64,
    /// Workload kind executed.
    pub kind: WorkloadKind,
    /// Arrival at the queue manager.
    pub arrival: SimTime,
    /// Dispatch to the execution engine.
    pub dispatch: SimTime,
    /// Completion.
    pub depart: SimTime,
    /// Whether the timeout interrupt fired for this query.
    pub timed_out: bool,
    /// Whether the query actually sprinted (timeout fired *and* budget
    /// was available when the sprint engaged).
    pub sprinted: bool,
    /// Wall-clock seconds this query spent sprinting.
    pub sprint_seconds: f64,
    /// Times this query was crash-requeued by fault injection before
    /// completing (always 0 without an active fault plan).
    pub retries: u32,
}

impl QueryRecord {
    /// End-to-end response time (queueing + processing).
    pub fn response_time(&self) -> SimDuration {
        self.depart.since(self.arrival)
    }

    /// Time spent waiting in the queue manager.
    pub fn queue_delay(&self) -> SimDuration {
        self.dispatch.since(self.arrival)
    }

    /// Time spent in the execution engine.
    pub fn processing_time(&self) -> SimDuration {
        self.depart.since(self.dispatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_times_add_up() {
        let r = QueryRecord {
            id: 0,
            kind: WorkloadKind::Jacobi,
            arrival: SimTime::from_secs(10),
            dispatch: SimTime::from_secs(25),
            depart: SimTime::from_secs(100),
            timed_out: true,
            sprinted: false,
            sprint_seconds: 0.0,
            retries: 0,
        };
        assert_eq!(r.queue_delay(), SimDuration::from_secs(15));
        assert_eq!(r.processing_time(), SimDuration::from_secs(75));
        assert_eq!(r.response_time(), SimDuration::from_secs(90));
        assert_eq!(r.response_time(), r.queue_delay() + r.processing_time());
    }
}
