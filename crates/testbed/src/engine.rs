//! Phase-aware query execution.
//!
//! The execution engine advances a query through its workload's phases
//! at a piecewise-constant speed: the sustained rate normally, or the
//! mechanism's per-phase sprint speedup while sprinting. Progress is
//! measured as a work fraction in `[0, 1]`; speeds only change at
//! events (sprint engage/disengage, stall end), so departure times are
//! exact piecewise integrals.

use mechanisms::Mechanism;
use simcore::time::SimTime;
use simcore::SprintError;
use workloads::{Workload, WorkloadKind};

/// Execution mode of a running query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Paused (dispatch overhead or mechanism toggle); no progress.
    Stalled {
        /// When the stall ends.
        until: SimTime,
        /// Whether a sprint should engage when the stall ends (budget
        /// permitting, which the server checks at that instant).
        then_sprint: bool,
    },
    /// Processing at the sustained rate.
    Normal,
    /// Processing at the mechanism's per-phase sprint speedup.
    Sprinting,
}

/// Wall-clock slack (seconds) treated as completion: events are
/// scheduled at microsecond resolution, so anything within two
/// microseconds of done counts as done — otherwise a rounded-down
/// completion event could leave sub-microsecond work that can never be
/// scheduled.
const COMPLETE_SLACK_SECS: f64 = 2e-6;

/// State of one query inside the execution engine.
#[derive(Debug, Clone)]
pub struct ExecutionState {
    kind: WorkloadKind,
    /// Total processing seconds this query needs at the sustained rate.
    service_secs: f64,
    progress: f64,
    last_update: SimTime,
    mode: ExecMode,
    sprint_seconds: f64,
    ever_sprinted: bool,
    /// Execution slowdown factor (≥ 1) imposed by the environment —
    /// the queue manager's per-query polling and HTTP chatter steal
    /// CPU from the engine, so a long queue drags processing. This
    /// couples queueing and processing time, the interdependence at
    /// the heart of the paper's modeling problem.
    drag: f64,
}

impl ExecutionState {
    /// Creates a query execution stalled until `ready` (dispatch
    /// overhead), then running normally or engaging a sprint.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] if `service_secs` is not
    /// positive and finite.
    pub fn new(
        kind: WorkloadKind,
        service_secs: f64,
        now: SimTime,
        ready: SimTime,
        then_sprint: bool,
    ) -> Result<ExecutionState, SprintError> {
        SprintError::require_positive("ExecutionState::service_secs", service_secs)?;
        Ok(ExecutionState {
            kind,
            service_secs,
            progress: 0.0,
            last_update: now,
            mode: ExecMode::Stalled {
                until: ready,
                then_sprint,
            },
            sprint_seconds: 0.0,
            ever_sprinted: false,
            drag: 1.0,
        })
    }

    /// Sets the environment slowdown factor. Callers must `advance` to
    /// the current instant first so past progress is integrated at the
    /// old drag.
    ///
    /// # Panics
    ///
    /// Panics if `drag < 1`.
    pub fn set_drag(&mut self, drag: f64) {
        assert!(drag >= 1.0 && drag.is_finite(), "invalid drag: {drag}");
        self.drag = drag;
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Sets the execution mode. The caller (the server) owns budget
    /// bookkeeping around sprint transitions.
    pub fn set_mode(&mut self, mode: ExecMode) {
        if matches!(mode, ExecMode::Sprinting) {
            self.ever_sprinted = true;
        }
        self.mode = mode;
    }

    /// Work fraction completed.
    pub fn progress(&self) -> f64 {
        self.progress
    }

    /// Whether all work is done.
    pub fn is_complete(&self) -> bool {
        self.progress >= 1.0 - self.progress_slack()
    }

    /// Completion slack in progress units (work fraction equivalent to
    /// [`COMPLETE_SLACK_SECS`] at the sustained rate).
    fn progress_slack(&self) -> f64 {
        (COMPLETE_SLACK_SECS / self.service_secs).min(0.5)
    }

    /// Wall-clock seconds spent sprinting so far.
    pub fn sprint_seconds(&self) -> f64 {
        self.sprint_seconds
    }

    /// Whether a sprint ever engaged for this query.
    pub fn ever_sprinted(&self) -> bool {
        self.ever_sprinted
    }

    /// Workload kind being executed.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Instantaneous work speed (fraction/sec) in the current mode.
    fn speed(&self, mech: &dyn Mechanism) -> f64 {
        let base = 1.0 / (self.service_secs * self.drag);
        match self.mode {
            ExecMode::Stalled { .. } => 0.0,
            ExecMode::Normal => base,
            ExecMode::Sprinting => {
                let (phase, _) = Workload::get(self.kind).phase_at(self.progress);
                base * mech.phase_speedup(self.kind, phase)
            }
        }
    }

    /// Integrates progress up to `now`.
    ///
    /// Must not be called past the end of a stall: the server always
    /// has an event scheduled at the stall boundary and resolves the
    /// transition there.
    pub fn advance(&mut self, now: SimTime, mech: &dyn Mechanism) {
        debug_assert!(now >= self.last_update, "engine time went backwards");
        if let ExecMode::Stalled { until, .. } = self.mode {
            debug_assert!(now <= until, "advanced past stall end");
            self.last_update = now;
            return;
        }
        let mut remaining = now.since(self.last_update).as_secs_f64();
        self.last_update = now;
        let workload = Workload::get(self.kind);
        let sprinting = matches!(self.mode, ExecMode::Sprinting);
        while remaining > 1e-12 && !self.is_complete() {
            let speed = self.speed(mech);
            debug_assert!(speed > 0.0);
            let phase_end = phase_end_at(workload, self.progress).min(1.0);
            let work_left = (phase_end - self.progress).max(0.0);
            let to_boundary = work_left / speed;
            if to_boundary <= remaining {
                // Snap exactly onto the boundary — incrementing by
                // `step * speed` can be absorbed by floating point when
                // the residue is tiny, which would loop forever.
                self.progress = phase_end;
                remaining -= to_boundary;
                if sprinting {
                    self.sprint_seconds += to_boundary;
                }
            } else {
                self.progress = (self.progress + remaining * speed).min(1.0);
                if sprinting {
                    self.sprint_seconds += remaining;
                }
                remaining = 0.0;
            }
        }
    }

    /// Seconds from `last_update` until completion if the current mode
    /// persists. For a stalled query this includes the stall remainder
    /// followed by execution in the post-stall mode.
    pub fn remaining_secs(&self, mech: &dyn Mechanism) -> f64 {
        let workload = Workload::get(self.kind);
        let (stall, sprint_after) = match self.mode {
            ExecMode::Stalled { until, then_sprint } => {
                (until.since(self.last_update).as_secs_f64(), then_sprint)
            }
            ExecMode::Normal => (0.0, false),
            ExecMode::Sprinting => (0.0, true),
        };
        let base = 1.0 / (self.service_secs * self.drag);
        let mut p = self.progress;
        let mut time = stall;
        while p < 1.0 - self.progress_slack() {
            let speed = if sprint_after {
                let (phase, _) = workload.phase_at(p);
                base * mech.phase_speedup(self.kind, phase)
            } else {
                base
            };
            let phase_end = phase_end_at(workload, p);
            let work = (phase_end.min(1.0) - p).max(0.0);
            if work == 0.0 {
                p = phase_end.min(1.0);
                continue;
            }
            time += work / speed;
            p = phase_end.min(1.0);
        }
        time
    }
}

/// Cumulative work fraction at which the phase containing `progress`
/// ends.
fn phase_end_at(workload: &Workload, progress: f64) -> f64 {
    let mut done = 0.0;
    for p in &workload.phases {
        done += p.frac;
        if progress < done {
            return done;
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mechanisms::{CpuThrottle, Dvfs, Mechanism};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn normal_exec(kind: WorkloadKind, service: f64) -> ExecutionState {
        let mut e = ExecutionState::new(kind, service, t(0.0), t(0.0), false).unwrap();
        e.set_mode(ExecMode::Normal);
        e
    }

    #[test]
    fn normal_execution_takes_service_time() {
        let mech = Dvfs::new();
        let e = normal_exec(WorkloadKind::Jacobi, 100.0);
        assert!((e.remaining_secs(&mech) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn advance_tracks_progress_linearly_in_normal_mode() {
        let mech = Dvfs::new();
        let mut e = normal_exec(WorkloadKind::Jacobi, 100.0);
        e.advance(t(25.0), &mech);
        assert!((e.progress() - 0.25).abs() < 1e-9);
        e.advance(t(100.0), &mech);
        assert!(e.is_complete());
    }

    #[test]
    fn uniform_sprint_divides_time_by_multiplier() {
        // CPU throttling speeds every phase by exactly 5X.
        let mech = CpuThrottle::new(0.2);
        let mut e = ExecutionState::new(WorkloadKind::Jacobi, 100.0, t(0.0), t(0.0), true).unwrap();
        e.set_mode(ExecMode::Sprinting);
        assert!((e.remaining_secs(&mech) - 20.0).abs() < 1e-6);
        e.advance(t(20.0), &mech);
        assert!(e.is_complete());
        assert!((e.sprint_seconds() - 20.0).abs() < 1e-9);
        assert!(e.ever_sprinted());
    }

    #[test]
    fn full_dvfs_sprint_matches_marginal_speedup() {
        let mech = Dvfs::new();
        let mut e = ExecutionState::new(WorkloadKind::Leuk, 144.0, t(0.0), t(0.0), true).unwrap();
        e.set_mode(ExecMode::Sprinting);
        let expect = 144.0 / mech.marginal_speedup(WorkloadKind::Leuk);
        assert!(
            (e.remaining_secs(&mech) - expect).abs() < 1e-6,
            "remaining {} vs {}",
            e.remaining_secs(&mech),
            expect
        );
        e.advance(t(expect), &mech);
        assert!(e.is_complete());
    }

    #[test]
    fn late_sprint_is_less_effective_than_early() {
        // Sprinting after 80% completion speeds up only late phases,
        // which for Leuk are sync-bound.
        let mech = Dvfs::new();
        let service = 100.0;
        let mut late = normal_exec(WorkloadKind::Leuk, service);
        late.advance(t(80.0), &mech);
        late.set_mode(ExecMode::Sprinting);
        let late_total = 80.0 + late.remaining_secs(&mech);

        let mut early =
            ExecutionState::new(WorkloadKind::Leuk, service, t(0.0), t(0.0), true).unwrap();
        early.set_mode(ExecMode::Sprinting);
        let early_total = early.remaining_secs(&mech);

        assert!(early_total < late_total);
        // The late sprint's remaining 20% must speed up less than the
        // workload-wide marginal speedup.
        let late_tail_speedup = 20.0 / late.remaining_secs(&mech);
        assert!(late_tail_speedup < mech.marginal_speedup(WorkloadKind::Leuk));
    }

    #[test]
    fn stall_pauses_progress() {
        let mech = Dvfs::new();
        let mut e =
            ExecutionState::new(WorkloadKind::Jacobi, 100.0, t(0.0), t(5.0), false).unwrap();
        e.advance(t(3.0), &mech);
        assert_eq!(e.progress(), 0.0);
        assert!(matches!(e.mode(), ExecMode::Stalled { .. }));
        // Remaining time includes the stall tail.
        assert!((e.remaining_secs(&mech) - (2.0 + 100.0)).abs() < 1e-6);
    }

    #[test]
    fn advance_integrates_across_phase_boundaries() {
        // Sprint from the start; progress through Jacobi's three phases
        // must accumulate exactly the per-phase speedups.
        let mech = Dvfs::new();
        let mut e = ExecutionState::new(WorkloadKind::Jacobi, 100.0, t(0.0), t(0.0), true).unwrap();
        e.set_mode(ExecMode::Sprinting);
        let total = e.remaining_secs(&mech);
        // Advance in many small steps; final completion must match the
        // single-shot integral.
        let steps = 1000;
        for i in 1..=steps {
            e.advance(t(total * i as f64 / steps as f64), &mech);
        }
        assert!(e.is_complete());
        assert!((e.sprint_seconds() - total).abs() < 1e-6);
    }

    #[test]
    fn mixed_mode_execution_sums_segments() {
        // Run Jacobi normally to 50%, then sprint the rest with a
        // uniform 2X throttle sprint: total = 50 + 25.
        let mech = CpuThrottle::with_sprint_multiplier(0.5, 2.0);
        let mut e = normal_exec(WorkloadKind::Jacobi, 100.0);
        e.advance(t(50.0), &mech);
        e.set_mode(ExecMode::Sprinting);
        assert!((e.remaining_secs(&mech) - 25.0).abs() < 1e-6);
        e.advance(t(75.0), &mech);
        assert!(e.is_complete());
        assert!((e.sprint_seconds() - 25.0).abs() < 1e-6);
    }

    #[test]
    fn drag_slows_execution_proportionally() {
        let mech = Dvfs::new();
        let mut e = normal_exec(WorkloadKind::Jacobi, 100.0);
        e.set_drag(1.25);
        assert!((e.remaining_secs(&mech) - 125.0).abs() < 1e-6);
        e.advance(t(62.5), &mech);
        assert!((e.progress() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn drag_changes_apply_from_now_on() {
        // Half the work at drag 1, half at drag 2: total 50 + 100.
        let mech = Dvfs::new();
        let mut e = normal_exec(WorkloadKind::Jacobi, 100.0);
        e.advance(t(50.0), &mech);
        e.set_drag(2.0);
        assert!((e.remaining_secs(&mech) - 100.0).abs() < 1e-6);
        e.advance(t(150.0), &mech);
        assert!(e.is_complete());
    }

    #[test]
    fn drag_also_slows_sprinting() {
        let mech = CpuThrottle::new(0.2); // Uniform 5X sprint.
        let mut e = ExecutionState::new(WorkloadKind::Jacobi, 100.0, t(0.0), t(0.0), true).unwrap();
        e.set_mode(ExecMode::Sprinting);
        e.set_drag(2.0);
        // 100 s / 5 speedup * 2 drag = 40 s.
        assert!((e.remaining_secs(&mech) - 40.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid drag")]
    fn rejects_sub_unit_drag() {
        let mut e = normal_exec(WorkloadKind::Jacobi, 10.0);
        e.set_drag(0.9);
    }

    #[test]
    fn rejects_bad_service_time() {
        assert!(ExecutionState::new(WorkloadKind::Jacobi, 0.0, t(0.0), t(0.0), false).is_err());
        assert!(
            ExecutionState::new(WorkloadKind::Jacobi, f64::NAN, t(0.0), t(0.0), false).is_err()
        );
        assert!(
            ExecutionState::new(WorkloadKind::Jacobi, f64::INFINITY, t(0.0), t(0.0), true).is_err()
        );
    }
}
