//! Sprinting policy and server run configuration.
//!
//! A sprinting policy sets (1) the timeout that triggers sprinting for
//! a query execution, (2) the sprinting budget, and (3) the budget
//! refill time (§1–2). The sprint *rate* itself comes from the
//! mechanism (and, for CPU throttling, its configured multiplier).

use simcore::dist::DistKind;
use simcore::time::{Rate, SimDuration};
use simcore::SprintError;
use workloads::QueryMix;

/// How the sprinting budget is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetSpec {
    /// Absolute budget capacity in sprint-seconds.
    Seconds(f64),
    /// Budget as a fraction of the refill time — the paper's cluster
    /// sampling expresses budgets as "percentage of maximum query
    /// throughput during the refill time", which reduces to
    /// `fraction × refill_time` sprint-seconds (AWS's 720 s/hour is
    /// 20% in this encoding).
    FractionOfRefill(f64),
    /// Effectively unlimited budget (used when profiling marginal
    /// sprint rates).
    Unlimited,
}

impl BudgetSpec {
    /// Resolves to a capacity in sprint-seconds given the refill time.
    pub fn capacity_seconds(self, refill: SimDuration) -> f64 {
        match self {
            BudgetSpec::Seconds(s) => s,
            BudgetSpec::FractionOfRefill(f) => f * refill.as_secs_f64(),
            BudgetSpec::Unlimited => f64::INFINITY,
        }
    }
}

/// A complete sprinting policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprintPolicy {
    /// Time after a query's *arrival* at which sprinting is triggered
    /// for it (timer interrupt, §2.1). A zero timeout sprints every
    /// query from the start; use [`SprintPolicy::never`] to disable.
    pub timeout: SimDuration,
    /// Budget capacity specification.
    pub budget: BudgetSpec,
    /// Time for an empty budget to refill completely while no query is
    /// sprinting.
    pub refill: SimDuration,
    /// Master enable; when false the server never sprints.
    pub sprint_enabled: bool,
}

impl SprintPolicy {
    /// Policy that sprints nothing (profiling the sustained rate).
    pub fn never() -> SprintPolicy {
        SprintPolicy {
            timeout: SimDuration::MAX,
            budget: BudgetSpec::Seconds(0.0),
            refill: SimDuration::from_secs(1),
            sprint_enabled: false,
        }
    }

    /// Policy that sprints every query fully (profiling the marginal
    /// sprint rate: timeout zero, unlimited budget).
    pub fn always() -> SprintPolicy {
        SprintPolicy {
            timeout: SimDuration::ZERO,
            budget: BudgetSpec::Unlimited,
            refill: SimDuration::from_secs(1),
            sprint_enabled: true,
        }
    }

    /// Standard policy with the given timeout, budget fraction and
    /// refill time.
    pub fn new(timeout: SimDuration, budget: BudgetSpec, refill: SimDuration) -> SprintPolicy {
        SprintPolicy {
            timeout,
            budget,
            refill,
            sprint_enabled: true,
        }
    }

    /// Budget capacity in sprint-seconds.
    pub fn budget_capacity(&self) -> f64 {
        if self.sprint_enabled {
            self.budget.capacity_seconds(self.refill)
        } else {
            0.0
        }
    }
}

/// One segment of a time-varying arrival pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// Segment length in seconds.
    pub duration_secs: f64,
    /// Multiplier applied to the base arrival rate during the segment.
    pub rate_multiplier: f64,
}

/// Arrival process specification, optionally time-varying.
///
/// A modulation is a repeating sequence of [`RateSegment`]s — e.g. a
/// diurnal pattern or "last week's spike" (§1's what-if questions).
/// While a segment is active, inter-arrival gaps are drawn at
/// `base rate × multiplier`; the segment active when a gap is
/// *scheduled* determines its rate (a standard piecewise
/// approximation, exact when gaps are short relative to segments).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSpec {
    /// Mean base arrival rate λ.
    pub rate: Rate,
    /// Inter-arrival distribution shape.
    pub kind: DistKind,
    /// Optional repeating rate modulation; `None` is stationary.
    pub modulation: Option<Vec<RateSegment>>,
}

impl ArrivalSpec {
    /// Poisson arrivals at the given rate.
    pub fn poisson(rate: Rate) -> ArrivalSpec {
        ArrivalSpec {
            rate,
            kind: DistKind::Exponential,
            modulation: None,
        }
    }

    /// Heavy-tailed Pareto arrivals (§3.4 uses α = 0.5).
    pub fn pareto(rate: Rate, alpha: f64) -> ArrivalSpec {
        ArrivalSpec {
            rate,
            kind: DistKind::Pareto { alpha },
            modulation: None,
        }
    }

    /// Adds a repeating rate modulation.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] if `segments` is empty or
    /// contains non-positive/non-finite durations or multipliers.
    pub fn with_modulation(
        mut self,
        segments: Vec<RateSegment>,
    ) -> Result<ArrivalSpec, SprintError> {
        if segments.is_empty() {
            return Err(SprintError::invalid(
                "ArrivalSpec::modulation",
                "modulation needs at least one segment",
            ));
        }
        for s in &segments {
            SprintError::require_positive("RateSegment::duration_secs", s.duration_secs)?;
            SprintError::require_positive("RateSegment::rate_multiplier", s.rate_multiplier)?;
        }
        self.modulation = Some(segments);
        Ok(self)
    }

    /// Poisson arrivals with a load spike: `base` rate, multiplied by
    /// `spike_multiplier` for `spike_secs` out of every `period_secs`.
    ///
    /// # Errors
    ///
    /// Returns [`SprintError::InvalidConfig`] unless
    /// `0 < spike_secs < period_secs` and `spike_multiplier` is a
    /// positive finite number.
    pub fn poisson_with_spike(
        base: Rate,
        spike_multiplier: f64,
        spike_secs: f64,
        period_secs: f64,
    ) -> Result<ArrivalSpec, SprintError> {
        SprintError::require_positive("ArrivalSpec::spike_secs", spike_secs)?;
        SprintError::require_positive("ArrivalSpec::period_secs", period_secs)?;
        if spike_secs >= period_secs {
            return Err(SprintError::invalid(
                "ArrivalSpec::spike_secs",
                format!("spike ({spike_secs}s) must fit inside the period ({period_secs}s)"),
            ));
        }
        ArrivalSpec::poisson(base).with_modulation(vec![
            RateSegment {
                duration_secs: period_secs - spike_secs,
                rate_multiplier: 1.0,
            },
            RateSegment {
                duration_secs: spike_secs,
                rate_multiplier: spike_multiplier,
            },
        ])
    }

    /// The rate multiplier active at simulated second `at_secs`.
    pub fn multiplier_at(&self, at_secs: f64) -> f64 {
        let Some(segments) = &self.modulation else {
            return 1.0;
        };
        let period: f64 = segments.iter().map(|s| s.duration_secs).sum();
        let mut t = at_secs % period;
        for s in segments {
            if t < s.duration_secs {
                return s.rate_multiplier;
            }
            t -= s.duration_secs;
        }
        segments.last().expect("non-empty").rate_multiplier
    }
}

/// Complete configuration for one testbed run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Query mix replayed by the generator.
    pub mix: QueryMix,
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Sprinting policy under test.
    pub policy: SprintPolicy,
    /// Concurrent execution slots in the engine (the paper's main
    /// setup is 1).
    pub slots: usize,
    /// Total queries to replay.
    pub num_queries: usize,
    /// Leading queries excluded from steady-state statistics.
    pub warmup: usize,
    /// RNG seed; everything about the run derives from it.
    pub seed: u64,
}

impl ServerConfig {
    /// A single-workload configuration with Poisson arrivals at
    /// `utilization × sustained service rate`, the common §3 setup.
    pub fn single(
        kind: workloads::WorkloadKind,
        sustained: Rate,
        utilization: f64,
        policy: SprintPolicy,
        seed: u64,
    ) -> ServerConfig {
        ServerConfig {
            mix: QueryMix::single(kind),
            arrivals: ArrivalSpec::poisson(sustained.scale(utilization)),
            policy,
            slots: 1,
            num_queries: 400,
            warmup: 40,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_fraction_resolves_against_refill() {
        let b = BudgetSpec::FractionOfRefill(0.2);
        assert_eq!(b.capacity_seconds(SimDuration::from_secs(3600)), 720.0);
    }

    #[test]
    fn budget_seconds_ignores_refill() {
        let b = BudgetSpec::Seconds(42.0);
        assert_eq!(b.capacity_seconds(SimDuration::from_secs(999)), 42.0);
    }

    #[test]
    fn unlimited_budget_is_infinite() {
        assert!(BudgetSpec::Unlimited
            .capacity_seconds(SimDuration::from_secs(1))
            .is_infinite());
    }

    #[test]
    fn never_policy_has_zero_capacity() {
        assert_eq!(SprintPolicy::never().budget_capacity(), 0.0);
        assert!(!SprintPolicy::never().sprint_enabled);
    }

    #[test]
    fn always_policy_sprints_from_arrival() {
        let p = SprintPolicy::always();
        assert_eq!(p.timeout, SimDuration::ZERO);
        assert!(p.budget_capacity().is_infinite());
    }

    #[test]
    fn modulation_cycles_through_segments() {
        let spec = ArrivalSpec::poisson(Rate::per_hour(30.0))
            .with_modulation(vec![
                RateSegment {
                    duration_secs: 100.0,
                    rate_multiplier: 1.0,
                },
                RateSegment {
                    duration_secs: 50.0,
                    rate_multiplier: 4.0,
                },
            ])
            .unwrap();
        assert_eq!(spec.multiplier_at(0.0), 1.0);
        assert_eq!(spec.multiplier_at(99.0), 1.0);
        assert_eq!(spec.multiplier_at(100.0), 4.0);
        assert_eq!(spec.multiplier_at(149.0), 4.0);
        // Wraps around the 150-second period.
        assert_eq!(spec.multiplier_at(150.0), 1.0);
        assert_eq!(spec.multiplier_at(400.0), 4.0);
    }

    #[test]
    fn stationary_spec_is_identity() {
        let spec = ArrivalSpec::poisson(Rate::per_hour(10.0));
        assert_eq!(spec.multiplier_at(0.0), 1.0);
        assert_eq!(spec.multiplier_at(1e9), 1.0);
    }

    #[test]
    fn spike_helper_builds_two_segments() {
        let spec =
            ArrivalSpec::poisson_with_spike(Rate::per_hour(20.0), 3.0, 600.0, 3_600.0).unwrap();
        assert_eq!(spec.multiplier_at(0.0), 1.0);
        assert_eq!(spec.multiplier_at(3_100.0), 3.0);
        assert_eq!(spec.multiplier_at(3_700.0), 1.0);
    }

    #[test]
    fn spike_longer_than_period_rejected() {
        assert!(
            ArrivalSpec::poisson_with_spike(Rate::per_hour(20.0), 3.0, 4_000.0, 3_600.0).is_err()
        );
    }

    #[test]
    fn modulation_rejects_bad_segments() {
        let base = ArrivalSpec::poisson(Rate::per_hour(30.0));
        assert!(base.clone().with_modulation(vec![]).is_err());
        assert!(base
            .clone()
            .with_modulation(vec![RateSegment {
                duration_secs: f64::NAN,
                rate_multiplier: 1.0,
            }])
            .is_err());
        assert!(base
            .with_modulation(vec![RateSegment {
                duration_secs: 10.0,
                rate_multiplier: 0.0,
            }])
            .is_err());
    }

    #[test]
    fn single_config_sets_arrival_rate() {
        let cfg = ServerConfig::single(
            workloads::WorkloadKind::Jacobi,
            Rate::per_hour(51.0),
            0.5,
            SprintPolicy::never(),
            7,
        );
        assert!((cfg.arrivals.rate.qph() - 25.5).abs() < 1e-9);
        assert_eq!(cfg.slots, 1);
    }
}
