//! Per-query trace export: CSV for offline analysis and an ASCII
//! timeline renderer in the style of the paper's Fig. 1.

use crate::query::QueryRecord;
use simcore::SprintError;
use std::fmt::Write as _;
use std::path::Path;

/// Renders records as CSV with a header row (times in seconds).
pub fn to_csv(records: &[QueryRecord]) -> String {
    let mut out = String::from(
        "id,kind,arrival_s,dispatch_s,depart_s,queue_delay_s,processing_s,\
         timed_out,sprinted,sprint_s,retries\n",
    );
    for q in records {
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{:.6},{}",
            q.id,
            q.kind.name(),
            q.arrival.as_secs_f64(),
            q.dispatch.as_secs_f64(),
            q.depart.as_secs_f64(),
            q.queue_delay().as_secs_f64(),
            q.processing_time().as_secs_f64(),
            q.timed_out,
            q.sprinted,
            q.sprint_seconds,
            q.retries,
        );
    }
    out
}

/// Writes the CSV trace to `path`.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_csv(records: &[QueryRecord], path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_csv(records))
}

/// Renders an ASCII timeline of the first `max_queries` records, one
/// row per query (Fig. 1 style):
///
/// - `.` waiting in the queue manager,
/// - `=` normal processing,
/// - `#` processing while the query sprinted at some point,
/// - a row spans arrival to departure.
///
/// # Errors
///
/// Returns [`SprintError::InvalidConfig`] if `width < 10` or `records`
/// is empty.
pub fn ascii_timeline(
    records: &[QueryRecord],
    max_queries: usize,
    width: usize,
) -> Result<String, SprintError> {
    if width < 10 {
        return Err(SprintError::invalid(
            "ascii_timeline::width",
            format!("timeline too narrow: width {width} < 10"),
        ));
    }
    if records.is_empty() {
        return Err(SprintError::invalid(
            "ascii_timeline::records",
            "no records to render",
        ));
    }
    let shown = &records[..max_queries.min(records.len())];
    // `max_queries == 0` leaves nothing to render; surface it as the
    // same typed error as an empty record set instead of panicking.
    let empty = || SprintError::invalid("ascii_timeline::records", "no records to render");
    let t0 = shown
        .iter()
        .map(|q| q.arrival)
        .min()
        .ok_or_else(empty)?
        .as_secs_f64();
    let t1 = shown
        .iter()
        .map(|q| q.depart)
        .max()
        .ok_or_else(empty)?
        .as_secs_f64();
    let span = (t1 - t0).max(1e-9);
    let col = |t: f64| -> usize { (((t - t0) / span) * (width - 1) as f64).round() as usize };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "time: {t0:.0}s .. {t1:.0}s   ('.' queued, '=' normal, '#' sprinted)"
    );
    for q in shown {
        let mut row = vec![b' '; width];
        let a = col(q.arrival.as_secs_f64());
        let d = col(q.dispatch.as_secs_f64());
        let e = col(q.depart.as_secs_f64());
        for c in row.iter_mut().take(d.max(a)).skip(a) {
            *c = b'.';
        }
        let glyph = if q.sprinted { b'#' } else { b'=' };
        for c in row.iter_mut().take(e.max(d) + 1).skip(d) {
            *c = glyph;
        }
        let row = String::from_utf8(row).map_err(|e| {
            SprintError::invalid("ascii_timeline::row", format!("non-ascii glyph: {e}"))
        })?;
        let _ = writeln!(out, "q{:<3} |{}|", q.id + 1, row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use workloads::WorkloadKind;

    fn rec(id: u64, arrival: u64, dispatch: u64, depart: u64, sprinted: bool) -> QueryRecord {
        QueryRecord {
            id,
            kind: WorkloadKind::Jacobi,
            arrival: SimTime::from_secs(arrival),
            dispatch: SimTime::from_secs(dispatch),
            depart: SimTime::from_secs(depart),
            timed_out: sprinted,
            sprinted,
            sprint_seconds: if sprinted { 10.0 } else { 0.0 },
            retries: 0,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&[rec(0, 0, 5, 50, true), rec(1, 10, 50, 120, false)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("id,kind,arrival_s"));
        assert!(lines[1].starts_with("0,Jacobi,0.000000,5.000000,50.000000"));
        assert!(lines[1].ends_with("true,true,10.000000,0"));
        assert!(lines[2].contains("false,false,0.000000,0"));
    }

    #[test]
    fn csv_round_trips_through_file() {
        let dir = std::env::temp_dir().join("model_sprint_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        write_csv(&[rec(0, 0, 1, 10, false)], &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, to_csv(&[rec(0, 0, 1, 10, false)]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timeline_marks_queueing_and_sprinting() {
        let t = ascii_timeline(
            &[rec(0, 0, 40, 100, true), rec(1, 20, 100, 180, false)],
            10,
            60,
        )
        .unwrap();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains('#'), "sprinted row uses #: {}", lines[1]);
        assert!(lines[2].contains('.'), "queued row shows .: {}", lines[2]);
        assert!(lines[2].contains('='), "normal row uses =: {}", lines[2]);
        assert!(!lines[1].contains('='));
    }

    #[test]
    fn timeline_truncates_to_max_queries() {
        let records: Vec<QueryRecord> = (0..20)
            .map(|i| rec(i, i * 10, i * 10 + 1, i * 10 + 5, false))
            .collect();
        let t = ascii_timeline(&records, 5, 40).unwrap();
        assert_eq!(t.lines().count(), 6); // Header + 5 rows.
    }

    #[test]
    fn rejects_narrow_timeline_and_empty_records() {
        assert!(ascii_timeline(&[rec(0, 0, 1, 2, false)], 5, 4).is_err());
        assert!(ascii_timeline(&[], 5, 40).is_err());
        // max_queries == 0 leaves nothing to render: typed, not a panic.
        assert!(ascii_timeline(&[rec(0, 0, 1, 2, false)], 0, 40).is_err());
    }
}
