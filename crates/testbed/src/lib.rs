//! Ground-truth server simulator (the paper's profiling testbed, §2.1).
//!
//! This crate plays the role of the physical cluster in the paper: a
//! query generator feeding a FIFO queue manager that detects timeouts,
//! triggers sprinting against a shared budget, and dispatches queries to
//! an execution engine (Fig. 3). Unlike the first-principles `qsim`
//! simulator, the testbed models the *runtime* effects that make
//! sprinting hard to predict:
//!
//! - per-phase sprint speedups (a sprint that starts late in an
//!   execution hits different phases than one covering the whole run),
//! - mechanism toggle overhead,
//! - queue-manager dispatch overhead that grows with queue length,
//! - cache/bandwidth interference between kinds in a query mix,
//! - stochastic service times per workload.
//!
//! The gap between this behaviour and `qsim`'s clean model is exactly
//! what the paper's machine-learned *effective sprint rate* captures.
//! Model code never reads testbed internals — only the per-query
//! timestamps a real profiler would log.
//!
//! The server optionally runs under a [`faults::FaultPlan`] (via
//! [`Server::with_faults`] or [`server::run_with_faults`]): seeded,
//! deterministic injection of sprint-engage failures, stuck sprints,
//! budget-sensor drift, execution crashes with bounded retry, arrival
//! storms and thermal emergencies. An all-off plan is bit-identical to
//! running without one.
//!
//! A [`supervision::Supervisor`] (via [`Server::with_supervision`] or
//! [`server::run_supervised`]) closes the loop from detecting those
//! faults to recovering from them: a sprint watchdog force-disengages
//! stuck sprints, crashed slots restart with capped exponential backoff
//! and are quarantined after repeated crashes, and a queue-depth
//! admission ladder sheds or rejects arrivals under overload. Every
//! intervention is counted in [`supervision::RecoveryCounters`].

pub mod budget;
pub mod engine;
pub mod metrics;
pub mod policy;
pub mod query;
pub mod server;
pub mod spec;
pub mod supervision;
pub mod trace;

pub use budget::Budget;
pub use faults::{FaultCounters, FaultPlan, StormWindow};
pub use metrics::{RunResult, RunResultBuilder};
pub use policy::{ArrivalSpec, BudgetSpec, RateSegment, ServerConfig, SprintPolicy};
pub use query::QueryRecord;
pub use server::{
    run_supervised, run_supervised_recorded, run_supervised_traced, run_with_faults, Server,
};
pub use spec::{run_journaled, RunSpec};
pub use supervision::{RecoveryCounters, Supervisor, SupervisorConfig};
