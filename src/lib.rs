//! # model-sprint
//!
//! A from-scratch Rust reproduction of *Model-Driven Computational
//! Sprinting* (Morris et al., EuroSys 2018).
//!
//! Computational sprinting speeds up query execution by briefly
//! spending power/CPU reserves; a *sprinting policy* decides when and
//! how long to sprint. This library builds the paper's full system:
//!
//! - a ground-truth **testbed** server simulator with phase-aware
//!   sprinting mechanisms (DVFS, core scaling, CPU throttling, EC2
//!   P-states) standing in for the paper's physical cluster,
//! - the **timeout-aware G/G/k queue simulator** of Algorithm 1,
//! - the **hybrid performance model**: offline profiling → effective
//!   sprint rate calibration → random decision forest → first-
//!   principles simulation, plus ANN and No-ML baselines,
//! - **policy exploration** (simulated annealing, Few-to-Many and
//!   Adrenaline baselines), and
//! - the **cloud burstable-instance** use case: SLO-aware colocation,
//!   revenue per node and profiling break-even.
//!
//! ## Quickstart
//!
//! ```no_run
//! use model_sprint::prelude::*;
//!
//! // Profile Jacobi on the DVFS platform over a few conditions.
//! let mech = Dvfs::new();
//! let mix = QueryMix::single(WorkloadKind::Jacobi);
//! let conditions = SamplingGrid::paper().sample_conditions(20, 7);
//! let data = Profiler::default().profile(&mix, &mech, &conditions);
//!
//! // Train the hybrid model and predict response time.
//! let model = train_hybrid(&data, &TrainOptions::default())?;
//! let rt = model.predict_response_secs(&conditions[0]);
//! println!("expected response time: {rt:.1}s");
//! # Ok::<(), model_sprint::simcore::SprintError>(())
//! ```
//!
//! Public constructors and entry points validate their configuration
//! and return [`simcore::SprintError`] instead of panicking; the
//! [`testbed`] can additionally inject runtime faults (see
//! [`faults`]) and [`sprint_core::ModelHealthMonitor`] degrades
//! sprinting safely when observed response times diverge from the
//! model's predictions.
//!
//! See `examples/` for runnable end-to-end scenarios and the `bench`
//! crate for the binaries that regenerate every table and figure in
//! the paper.

pub use ann;
pub use chaos;
pub use cloud;
pub use faults;
pub use fleet;
pub use forest;
pub use mechanisms;
pub use mlcore;
pub use obs;
pub use policy;
pub use profiler;
pub use qsim;
pub use reactor;
pub use simcore;
pub use sprint_core;
pub use testbed;
pub use workloads;

/// Commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use ann::{AnnConfig, Mlp};
    pub use chaos::{random_plan, SweepConfig, SweepReport};
    pub use cloud::{
        colocate, meets_slo, BurstablePolicy, Strategy, WorkloadDemand, PRICE_PER_WORKLOAD_HOUR,
    };
    pub use faults::{FaultCounters, FaultPlan, StormWindow};
    pub use fleet::{run_fleet, run_fleet_journaled, FleetResult, FleetSpec};
    pub use forest::{ForestConfig, RandomForest};
    pub use mechanisms::{CoreScale, CpuThrottle, Dvfs, Ec2Dvfs, Mechanism, MechanismKind};
    pub use obs::{Event, EventKind, FlightRecorder, MetricsRegistry, RunTelemetry};
    pub use policy::{explore_timeout, AnnealingConfig};
    pub use profiler::{Condition, ProfileData, Profiler, SamplingGrid, WorkloadProfile};
    pub use qsim::{ClassSpec, MultiClassConfig, MultiClassQsim, Qsim, QsimConfig};
    pub use simcore::{Rate, SimDuration, SimTime, SprintError};
    pub use sprint_core::{
        train_ann, train_hybrid, ArrivalRateEstimator, BreakerConfig, DegradationLevel,
        HybridModel, ModelHealthMonitor, OnlineModel, ResponseTimeModel, SimOptions, TrainOptions,
    };
    pub use testbed::{
        Budget, RateSegment, RecoveryCounters, ServerConfig, SprintPolicy, SupervisorConfig,
    };
    pub use workloads::{QueryMix, Workload, WorkloadKind};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compile_and_link() {
        let mech = Dvfs::new();
        assert_eq!(mech.sustained_rate(WorkloadKind::Jacobi).qph(), 51.0);
        let grid = SamplingGrid::paper();
        assert!(grid.num_combinations() > 100);
    }
}
