//! End-to-end modeling pipeline: profile → calibrate → train →
//! predict, checking the hybrid model's headline properties on a
//! down-sized campaign.

use model_sprint::prelude::*;
use model_sprint::sprint_core::train::no_ml;

fn small_campaign(kind: WorkloadKind, seed: u64, replays: usize) -> ProfileData {
    let mech = Dvfs::new();
    let profiler = Profiler {
        queries_per_run: 250,
        warmup: 25,
        replays,
        threads: 4,
        seed,
    };
    let conditions = SamplingGrid::paper().sample_conditions(28, seed ^ 0xC0);
    profiler.profile(&QueryMix::single(kind), &mech, &conditions)
}

fn small_train_options() -> TrainOptions {
    let mut opts = TrainOptions {
        threads: 4,
        ..TrainOptions::default()
    };
    opts.calibration.max_steps = 30;
    // Match simulation windows to the 250-query profiling replays:
    // near saturation, mean response depends on window length.
    opts.calibration.sim.sim_queries = 250;
    opts.calibration.sim.warmup = 25;
    opts.calibration.sim.replications = 3;
    opts.sim.sim_queries = 250;
    opts.sim.warmup = 25;
    opts.sim.replications = 4;
    opts.ann.epochs = 150;
    opts
}

/// Split helper mirroring the bench crate's.
fn split(data: &ProfileData, frac: f64, seed: u64) -> (ProfileData, ProfileData) {
    let mut idx: Vec<usize> = (0..data.runs.len()).collect();
    let mut rng = model_sprint::simcore::SimRng::new(seed);
    rng.shuffle(&mut idx);
    let n = ((data.runs.len() as f64 * frac).round() as usize).min(data.runs.len());
    let pick = |ids: &[usize]| ProfileData {
        profile: data.profile.clone(),
        runs: ids.iter().map(|&i| data.runs[i]).collect(),
    };
    (pick(&idx[..n]), pick(&idx[n..]))
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

#[test]
fn hybrid_model_predicts_held_out_conditions() {
    // Two replays per condition: with a single 250-query replay the
    // held-out observations are noisy enough near saturation that the
    // median error is dominated by observation noise, not the model.
    let data = small_campaign(WorkloadKind::Jacobi, 31, 2);
    let (train, test) = split(&data, 0.8, 5);
    let model = train_hybrid(&train, &small_train_options()).expect("campaign has runs");
    let errs: Vec<f64> = test
        .runs
        .iter()
        .map(|r| {
            let p = model.predict_response_secs(&r.condition);
            (p - r.observed_response_secs).abs() / r.observed_response_secs
        })
        .collect();
    let med = median(errs);
    assert!(
        med < 0.15,
        "hybrid median error {med} too high on held-out conditions"
    );
}

#[test]
fn effective_rates_stay_in_physical_band() {
    let data = small_campaign(WorkloadKind::Knn, 37, 1);
    let model = train_hybrid(&data, &small_train_options()).expect("campaign has runs");
    for run in &data.runs {
        let mu_e = model.effective_rate_qph(&run.condition);
        assert!(mu_e >= 0.6 * data.profile.mu.qph() - 1e-9);
        assert!(mu_e <= 1.5 * data.profile.mu_m.qph() + 1e-9);
    }
}

#[test]
fn no_ml_underpredicts_under_heavy_load() {
    // The marginal rate overestimates in-situ sprinting, so the No-ML
    // simulator should predict *lower* response times than observed —
    // the systematic bias µe corrects. The effect only binds where
    // sprinting is actually budget-constrained, and single conditions
    // are noisy near saturation, so pool heavy-load, tight-budget
    // conditions across several independent campaigns.
    let opts = small_train_options();
    let mut under = 0;
    let mut total = 0;
    for seed in [31u64, 41, 123] {
        let data = small_campaign(WorkloadKind::SparkKmeans, seed, 1);
        let model = no_ml(&data, &opts);
        for r in data
            .runs
            .iter()
            .filter(|r| r.condition.utilization > 0.9 && r.condition.budget_frac <= 0.2)
        {
            total += 1;
            if model.predict_response_secs(&r.condition) < r.observed_response_secs {
                under += 1;
            }
        }
    }
    assert!(total > 0, "no heavy-load tight-budget conditions sampled");
    assert!(
        under * 2 >= total,
        "No-ML should usually underpredict at 95% load: {under}/{total}"
    );
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let a = small_campaign(WorkloadKind::Bfs, 51, 1);
    let b = small_campaign(WorkloadKind::Bfs, 51, 1);
    assert_eq!(a.profile.mu, b.profile.mu);
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.observed_response_secs, y.observed_response_secs);
    }
    let ma = train_hybrid(&a, &small_train_options()).expect("campaign has runs");
    let mb = train_hybrid(&b, &small_train_options()).expect("campaign has runs");
    let c = &a.runs[0].condition;
    assert_eq!(ma.effective_rate_qph(c), mb.effective_rate_qph(c));
}
