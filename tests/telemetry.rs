//! End-to-end contracts for the telemetry layer: attaching the flight
//! recorder (and enabling the metrics registry) must be invisible in
//! results, the recorder must stay bounded under load, histogram
//! buckets must be well-ordered, and a recorded run must replay its
//! event log bit-for-bit from the seed.

use model_sprint::faults::{FaultPlan, StormWindow};
use model_sprint::mechanisms::{Dvfs, Mechanism};
use model_sprint::obs::{Histogram, HISTOGRAM_BUCKETS};
use model_sprint::simcore::time::SimDuration;
use model_sprint::testbed::{
    run_supervised, run_supervised_recorded, ArrivalSpec, BudgetSpec, ServerConfig, SprintPolicy,
    SupervisorConfig,
};
use model_sprint::workloads::{QueryMix, WorkloadKind};

/// A supervised, faulted scenario busy enough to exercise sprints,
/// crashes, and queue-depth sampling.
fn scenario(seed: u64, num_queries: usize) -> (ServerConfig, FaultPlan) {
    let mech = Dvfs::new();
    let sustained = mech.sustained_rate(WorkloadKind::Jacobi);
    let mean_secs = sustained.mean_interval().as_secs_f64();
    let cfg = ServerConfig {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        arrivals: ArrivalSpec::poisson(sustained.scale(0.7)),
        policy: SprintPolicy::new(
            SimDuration::from_secs_f64(mean_secs * 0.5),
            BudgetSpec::FractionOfRefill(0.3),
            SimDuration::from_secs_f64(mean_secs * 10.0),
        ),
        slots: 2,
        num_queries,
        warmup: 0,
        seed,
    };
    let plan = FaultPlan {
        seed: seed ^ 0x0b5,
        crash_prob: 0.05,
        engage_failure_prob: 0.1,
        storms: vec![StormWindow {
            start_secs: mean_secs * 5.0,
            duration_secs: mean_secs * 30.0,
            multiplier: 3.0,
        }],
        ..FaultPlan::default()
    };
    (cfg, plan)
}

/// Attaching the recorder — with the metrics registry enabled on top —
/// must not perturb a single bit of the run's results: telemetry is a
/// pure observer.
#[test]
fn recorded_run_is_byte_identical_to_pristine() {
    for seed in [3u64, 17, 91] {
        let mech = Dvfs::new();
        let (cfg, plan) = scenario(seed, 120);
        let pristine = run_supervised(
            cfg.clone(),
            &mech,
            Some(plan.clone()),
            SupervisorConfig::default(),
        )
        .expect("pristine run");
        model_sprint::obs::set_enabled(true);
        let recorded =
            run_supervised_recorded(cfg, &mech, Some(plan), SupervisorConfig::default(), 1024)
                .expect("recorded run");
        model_sprint::obs::set_enabled(false);

        assert_eq!(pristine.records(), recorded.records(), "seed {seed}");
        assert_eq!(pristine.arrived(), recorded.arrived());
        assert_eq!(pristine.served(), recorded.served());
        assert_eq!(
            pristine.mean_response_secs().to_bits(),
            recorded.mean_response_secs().to_bits(),
            "summary statistics must agree bit-for-bit (seed {seed})"
        );
        assert!(pristine.telemetry().is_none());
        let t = recorded.telemetry().expect("recorded run has telemetry");
        assert!(!t.events().is_empty(), "busy run must log events");
    }
}

/// Under an arrival storm the recorder ring must cap its memory:
/// retained events never exceed capacity, overflow is counted, and
/// nothing is silently lost (recorded == retained + dropped).
#[test]
fn recorder_stays_bounded_under_arrival_storm() {
    let mech = Dvfs::new();
    let (cfg, plan) = scenario(7, 260);
    let capacity = 32;
    let run = run_supervised_recorded(
        cfg,
        &mech,
        Some(plan),
        SupervisorConfig::default(),
        capacity,
    )
    .expect("stormy run");
    let t = run.telemetry().expect("telemetry attached");
    assert_eq!(t.capacity(), capacity);
    assert!(t.events().len() <= capacity);
    assert!(
        t.dropped() > 0,
        "260 stormy queries must overflow a 32-slot ring (recorded {})",
        t.recorded()
    );
    assert_eq!(t.recorded(), t.events().len() as u64 + t.dropped());
    // The ring keeps the most recent events: sequence numbers are
    // contiguous and end at recorded - 1.
    let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
    for w in seqs.windows(2) {
        assert_eq!(w[1], w[0] + 1, "retained tail must stay contiguous");
    }
    assert_eq!(seqs.last().copied(), Some(t.recorded() - 1));
}

/// Histogram buckets are strictly ordered and every value lands in the
/// unique bucket whose bounds contain it.
#[test]
fn histogram_buckets_are_monotone() {
    let bounds: Vec<u64> = (0..HISTOGRAM_BUCKETS)
        .map(Histogram::bucket_bound)
        .collect();
    for w in bounds.windows(2) {
        assert!(w[0] < w[1], "bucket bounds must strictly increase: {w:?}");
    }
    let probes: Vec<u64> = (0..63)
        .flat_map(|p| {
            let v = 1u64 << p;
            [v - 1, v, v + 1]
        })
        .chain([0, u64::MAX])
        .collect();
    let mut last_index = 0;
    let mut last_value = 0;
    for &v in &probes {
        let i = Histogram::bucket_index(v);
        assert!(i < HISTOGRAM_BUCKETS);
        if v >= last_value {
            assert!(i >= last_index, "bucket index must be monotone in value");
        }
        if i < HISTOGRAM_BUCKETS - 1 {
            assert!(v < Histogram::bucket_bound(i), "v={v} above bucket {i}");
        }
        if i > 0 {
            assert!(
                v >= Histogram::bucket_bound(i - 1),
                "v={v} below bucket {i}"
            );
        }
        last_index = i;
        last_value = v;
    }
}

/// Replaying a seed reproduces the *event log* bit-for-bit, not just
/// the per-query records — the recorder inherits the stack's
/// determinism contract.
#[test]
fn replay_reproduces_identical_event_log() {
    let mech = Dvfs::new();
    let run = |seed| {
        let (cfg, plan) = scenario(seed, 150);
        run_supervised_recorded(cfg, &mech, Some(plan), SupervisorConfig::default(), 512)
            .expect("recorded run")
    };
    for seed in [5u64, 41] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.records(), b.records(), "seed {seed}");
        assert_eq!(
            a.telemetry(),
            b.telemetry(),
            "event log must replay bit-for-bit (seed {seed})"
        );
        assert!(!a.telemetry().expect("telemetry").events().is_empty());
    }
    // Different seeds must not accidentally share a log.
    assert_ne!(run(5).telemetry(), run(41).telemetry());
}
