//! Property-based tests on core invariants (proptest).

use model_sprint::prelude::*;
use model_sprint::simcore::dist::{Dist, DistKind};
use model_sprint::simcore::stats::StreamingStats;
use model_sprint::simcore::SimRng;
use model_sprint::testbed::{ArrivalSpec, BudgetSpec, ServerConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every distribution's sample mean tracks its configured mean.
    #[test]
    fn distribution_sample_means_track_config(
        mean_secs in 10.0..500.0f64,
        seed in 0u64..1_000,
        which in 0usize..4,
    ) {
        let mean = SimDuration::from_secs_f64(mean_secs);
        let dist = match which {
            0 => Dist::exponential(mean),
            1 => Dist::deterministic(mean),
            2 => Dist::lognormal(mean, 0.5),
            _ => Dist::hyperexponential(mean, 1.5),
        };
        let mut rng = SimRng::new(seed);
        let n = 40_000;
        let total: f64 = (0..n).map(|_| dist.sample(&mut rng).as_secs_f64()).sum();
        let sample_mean = total / n as f64;
        prop_assert!(
            (sample_mean - mean_secs).abs() / mean_secs < 0.08,
            "mean {} vs configured {}", sample_mean, mean_secs
        );
    }

    /// The queue simulator conserves queries, keeps FIFO order on a
    /// single slot, and never reports negative response times.
    #[test]
    fn qsim_conservation_and_fifo(
        util in 0.1..0.9f64,
        speedup in 1.0..4.0f64,
        timeout in 10.0..400.0f64,
        budget in 0.0..500.0f64,
        seed in 0u64..500,
    ) {
        let mu = 3_600.0 / 60.0;
        let mut cfg = QsimConfig::mm1(
            Rate::per_hour(mu * util),
            Dist::exponential(SimDuration::from_secs(60)),
            seed,
        );
        cfg.num_queries = 400;
        cfg.warmup = 0;
        cfg.sprint_speedup = speedup;
        cfg.timeout = SimDuration::from_secs_f64(timeout);
        cfg.budget_capacity_secs = budget;
        cfg.refill_secs = 800.0;
        let r = Qsim::new(cfg).run();
        prop_assert_eq!(r.queries.len(), 400);
        let mut sorted = r.queries.clone();
        sorted.sort_by(|a, b| a.arrival_secs.total_cmp(&b.arrival_secs));
        let mut prev_depart = 0.0;
        for q in &sorted {
            prop_assert!(q.depart_secs >= q.arrival_secs);
            // Single slot FIFO: departures follow arrival order.
            prop_assert!(q.depart_secs >= prev_depart);
            prev_depart = q.depart_secs;
            // Sprint time cannot exceed time in system.
            prop_assert!(q.sprint_secs <= q.depart_secs - q.arrival_secs + 1e-6);
        }
    }

    /// Testbed runs conserve queries, respect FIFO dispatch, and never
    /// spend more sprint-seconds than the budget could supply.
    #[test]
    fn testbed_budget_and_fifo_invariants(
        util in 0.2..0.9f64,
        timeout in 20.0..300.0f64,
        budget_frac in 0.05..0.8f64,
        refill in 100.0..1000.0f64,
        seed in 0u64..200,
    ) {
        let mech = Dvfs::new();
        let cfg = ServerConfig {
            mix: QueryMix::single(WorkloadKind::Jacobi),
            arrivals: ArrivalSpec::poisson(Rate::per_hour(51.0 * util)),
            policy: SprintPolicy::new(
                SimDuration::from_secs_f64(timeout),
                BudgetSpec::FractionOfRefill(budget_frac),
                SimDuration::from_secs_f64(refill),
            ),
            slots: 1,
            num_queries: 150,
            warmup: 0,
            seed,
        };
        let r = model_sprint::testbed::server::run(cfg, &mech);
        prop_assert_eq!(r.records().len(), 150);

        let mut by_arrival: Vec<_> = r.records().to_vec();
        by_arrival.sort_by_key(|q| q.arrival);
        let mut prev_dispatch = SimTime::ZERO;
        for q in &by_arrival {
            prop_assert!(q.dispatch >= q.arrival);
            prop_assert!(q.depart > q.dispatch);
            prop_assert!(q.dispatch >= prev_dispatch, "FIFO dispatch violated");
            prev_dispatch = q.dispatch;
            prop_assert!(q.sprint_seconds >= 0.0);
            prop_assert!(
                q.sprint_seconds <= q.processing_time().as_secs_f64() + 1e-6,
                "sprinted longer than processing"
            );
            if q.sprinted {
                prop_assert!(q.timed_out, "sprinting requires a timeout");
            }
        }

        // Budget conservation: total sprint-seconds cannot exceed the
        // initial capacity plus the maximum possible refill over the
        // whole span.
        let capacity = budget_frac * refill;
        let span = by_arrival.last().unwrap().depart
            .since(by_arrival[0].arrival)
            .as_secs_f64();
        let max_supply = capacity + capacity / refill * span + 1.0;
        let consumed: f64 = r.records().iter().map(|q| q.sprint_seconds).sum();
        prop_assert!(
            consumed <= max_supply,
            "consumed {} sprint-seconds, supply bound {}", consumed, max_supply
        );
    }

    /// The random forest returns finite predictions inside and
    /// slightly outside the training range.
    #[test]
    fn forest_predictions_finite(seed in 0u64..100, slope in 0.5..3.0f64) {
        use model_sprint::mlcore::Dataset;
        let mut d = Dataset::new(vec!["x", "z"]);
        for i in 0..80 {
            let x = i as f64;
            let z = ((i * 13) % 7) as f64;
            d.push(vec![x, z], slope * x + z);
        }
        let cfg = ForestConfig { seed, ..ForestConfig::default() };
        let f = RandomForest::train(&d, 0, cfg);
        for probe in [[-5.0, 0.0], [0.0, 3.0], [40.0, 6.0], [90.0, 1.0]] {
            let p = f.predict(&probe);
            prop_assert!(p.is_finite());
        }
    }

    /// Welford merge equals sequential accumulation.
    #[test]
    fn welford_merge_matches_sequential(xs in proptest::collection::vec(-1e3..1e3f64, 2..200), split in 0usize..200) {
        let split = split % xs.len();
        let mut whole = StreamingStats::new();
        for &x in &xs { whole.push(x); }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3);
    }

    /// Simulated annealing never evaluates outside its bounds and its
    /// best value is consistent with its trace.
    #[test]
    fn annealing_respects_bounds(lo in 0.0..50.0f64, width in 10.0..300.0f64, seed in 0u64..50) {
        use model_sprint::policy::explore_timeout;
        use model_sprint::profiler::{Condition, WorkloadProfile};

        struct Quad(WorkloadProfile);
        impl ResponseTimeModel for Quad {
            fn name(&self) -> &'static str { "quad" }
            fn predict_response_secs(&self, c: &Condition) -> f64 {
                100.0 + (c.timeout_secs - 77.0).powi(2) / 100.0
            }
            fn profile(&self) -> &WorkloadProfile { &self.0 }
        }
        let profile = WorkloadProfile {
            mix: QueryMix::single(WorkloadKind::Jacobi),
            mechanism: "x".into(),
            mu: Rate::per_hour(50.0),
            mu_m: Rate::per_hour(75.0),
            service_samples_secs: vec![70.0],
            profiling_hours: 0.0,
        };
        let cfg = AnnealingConfig {
            iterations: 60,
            bounds_secs: (lo, lo + width),
            seed,
            ..AnnealingConfig::default()
        };
        let base = Condition {
            utilization: 0.5,
            arrival_kind: DistKind::Exponential,
            timeout_secs: 0.0,
            budget_frac: 0.2,
            refill_secs: 200.0,
        };
        let r = explore_timeout(&Quad(profile), &base, &cfg);
        let hi = lo + width;
        prop_assert!(r.trace.iter().all(|&(t, _)| t >= lo - 1e-9 && t <= hi + 1e-9));
        let trace_best = r.trace.iter().map(|&(_, rt)| rt).fold(f64::INFINITY, f64::min);
        prop_assert!((r.best_response_secs - trace_best).abs() < 1e-9);
    }
}
