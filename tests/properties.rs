//! Property-style tests on core invariants: hand-rolled randomized
//! sweeps (seeded, deterministic) over distributions, the queue
//! simulator, the testbed, fault injection, the budget, and the
//! model-health breaker.

use model_sprint::prelude::*;
use model_sprint::simcore::dist::{Dist, DistKind};
use model_sprint::simcore::stats::StreamingStats;
use model_sprint::simcore::SimRng;
use model_sprint::testbed::server::{run, run_supervised, run_with_faults};
use model_sprint::testbed::{ArrivalSpec, BudgetSpec, ServerConfig};

/// Every distribution's sample mean tracks its configured mean.
#[test]
fn distribution_sample_means_track_config() {
    let mut rng = SimRng::new(0xD157);
    for which in 0..4usize {
        for _ in 0..4 {
            let mean_secs = rng.uniform(10.0, 500.0);
            let mean = SimDuration::from_secs_f64(mean_secs);
            let dist = match which {
                0 => Dist::exponential(mean),
                1 => Dist::deterministic(mean),
                2 => Dist::lognormal(mean, 0.5),
                _ => Dist::hyperexponential(mean, 1.5),
            };
            let mut sample_rng = SimRng::new(rng.next_u64());
            let n = 40_000;
            let total: f64 = (0..n)
                .map(|_| dist.sample(&mut sample_rng).as_secs_f64())
                .sum();
            let sample_mean = total / n as f64;
            assert!(
                (sample_mean - mean_secs).abs() / mean_secs < 0.08,
                "dist {which}: mean {sample_mean} vs configured {mean_secs}"
            );
        }
    }
}

/// The queue simulator conserves queries, keeps FIFO order on a
/// single slot, and never reports negative response times.
#[test]
fn qsim_conservation_and_fifo() {
    let mut rng = SimRng::new(0x51F0);
    for _ in 0..12 {
        let util = rng.uniform(0.1, 0.9);
        let mu = 3_600.0 / 60.0;
        let mut cfg = QsimConfig::mm1(
            Rate::per_hour(mu * util),
            Dist::exponential(SimDuration::from_secs(60)),
            rng.next_u64() % 500,
        );
        cfg.num_queries = 400;
        cfg.warmup = 0;
        cfg.sprint_speedup = rng.uniform(1.0, 4.0);
        cfg.timeout = SimDuration::from_secs_f64(rng.uniform(10.0, 400.0));
        cfg.budget_capacity_secs = rng.uniform(0.0, 500.0);
        cfg.refill_secs = 800.0;
        let r = Qsim::new(cfg)
            .expect("randomized config is valid")
            .run()
            .expect("randomized run completes");
        assert_eq!(r.queries.len(), 400);
        let mut sorted = r.queries.clone();
        sorted.sort_by(|a, b| a.arrival_secs.total_cmp(&b.arrival_secs));
        let mut prev_depart = 0.0;
        for q in &sorted {
            assert!(q.depart_secs >= q.arrival_secs);
            // Single slot FIFO: departures follow arrival order.
            assert!(q.depart_secs >= prev_depart);
            prev_depart = q.depart_secs;
            // Sprint time cannot exceed time in system.
            assert!(q.sprint_secs <= q.depart_secs - q.arrival_secs + 1e-6);
        }
    }
}

/// Testbed runs conserve queries, respect FIFO dispatch, and never
/// spend more sprint-seconds than the budget could supply.
#[test]
fn testbed_budget_and_fifo_invariants() {
    let mech = Dvfs::new();
    let mut rng = SimRng::new(0x7E57);
    for _ in 0..8 {
        let util = rng.uniform(0.2, 0.9);
        let timeout = rng.uniform(20.0, 300.0);
        let budget_frac = rng.uniform(0.05, 0.8);
        let refill = rng.uniform(100.0, 1_000.0);
        let cfg = ServerConfig {
            mix: QueryMix::single(WorkloadKind::Jacobi),
            arrivals: ArrivalSpec::poisson(Rate::per_hour(51.0 * util)),
            policy: SprintPolicy::new(
                SimDuration::from_secs_f64(timeout),
                BudgetSpec::FractionOfRefill(budget_frac),
                SimDuration::from_secs_f64(refill),
            ),
            slots: 1,
            num_queries: 150,
            warmup: 0,
            seed: rng.next_u64() % 200,
        };
        let r = run(cfg, &mech).expect("randomized config is valid");
        assert_eq!(r.records().len(), 150);

        let mut by_arrival: Vec<_> = r.records().to_vec();
        by_arrival.sort_by_key(|q| q.arrival);
        let mut prev_dispatch = SimTime::ZERO;
        for q in &by_arrival {
            assert!(q.dispatch >= q.arrival);
            assert!(q.depart > q.dispatch);
            assert!(q.dispatch >= prev_dispatch, "FIFO dispatch violated");
            prev_dispatch = q.dispatch;
            assert!(q.sprint_seconds >= 0.0);
            assert!(
                q.sprint_seconds <= q.processing_time().as_secs_f64() + 1e-6,
                "sprinted longer than processing"
            );
            if q.sprinted {
                assert!(q.timed_out, "sprinting requires a timeout");
            }
        }

        // Budget conservation: total sprint-seconds cannot exceed the
        // initial capacity plus the maximum possible refill over the
        // whole span.
        let capacity = budget_frac * refill;
        let span = by_arrival
            .last()
            .unwrap()
            .depart
            .since(by_arrival[0].arrival)
            .as_secs_f64();
        let max_supply = capacity + capacity / refill * span + 1.0;
        let consumed: f64 = r.records().iter().map(|q| q.sprint_seconds).sum();
        assert!(
            consumed <= max_supply,
            "consumed {consumed} sprint-seconds, supply bound {max_supply}"
        );
    }
}

/// The budget pool never goes negative, never exceeds capacity, and
/// refills monotonically while idle — under randomized interleavings
/// of engage, disengage, and time advance.
#[test]
fn budget_invariants_under_random_usage() {
    let mut rng = SimRng::new(0xB0D9);
    for trial in 0..25 {
        let capacity = rng.uniform(0.0, 300.0);
        let refill = rng.uniform(10.0, 1_000.0);
        let mut b = Budget::new(capacity, refill).expect("positive refill is valid");
        let mut now = SimTime::ZERO;
        let mut active = 0usize;
        for step in 0..300 {
            now += SimDuration::from_secs_f64(rng.uniform(0.0, 40.0));
            let before = b.level();
            let idle = active == 0;
            b.update(now);
            assert!(
                b.level() >= 0.0,
                "trial {trial} step {step}: negative level"
            );
            assert!(
                b.level() <= capacity + 1e-9,
                "trial {trial} step {step}: level {} above capacity {capacity}",
                b.level()
            );
            if idle {
                assert!(
                    b.level() >= before - 1e-9,
                    "trial {trial} step {step}: refill not monotone while idle"
                );
            }
            if rng.chance(0.4) {
                b.start_sprint();
                active += 1;
            } else if active > 0 && rng.chance(0.5) {
                b.end_sprint();
                active -= 1;
            }
            assert_eq!(b.sprinting(), active);
        }
    }
}

/// A sprinting server config shared by the fault-injection tests.
fn sprint_cfg(num_queries: usize, seed: u64) -> ServerConfig {
    ServerConfig {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        arrivals: ArrivalSpec::poisson(Rate::per_hour(51.0 * 0.7)),
        policy: SprintPolicy::new(
            SimDuration::from_secs(30),
            BudgetSpec::FractionOfRefill(0.3),
            SimDuration::from_secs(600),
        ),
        slots: 1,
        num_queries,
        warmup: 0,
        seed,
    }
}

/// The same server with sprinting disabled entirely.
fn no_sprint_cfg(num_queries: usize, seed: u64) -> ServerConfig {
    ServerConfig {
        policy: SprintPolicy::never(),
        ..sprint_cfg(num_queries, seed)
    }
}

/// Same (config seed, fault plan) ⇒ the exact same run, down to every
/// record and fault counter — with every fault class armed at once.
#[test]
fn faulted_runs_replay_bit_identically() {
    let mech = Dvfs::new();
    let plan = FaultPlan {
        seed: 11,
        engage_failure_prob: 0.3,
        stuck_sprint_prob: 0.1,
        budget_drift_secs: 5.0,
        crash_prob: 0.05,
        bad_slot: Some(0),
        bad_slot_crash_prob: 0.1,
        max_retries: 2,
        crash_repair_secs: 0.0,
        storms: vec![StormWindow {
            start_secs: 500.0,
            duration_secs: 2_000.0,
            multiplier: 2.5,
        }],
        thermal_period_secs: 1_500.0,
        thermal_lockout_secs: 90.0,
        messages: faults::MessageFaults {
            delay_prob: 0.3,
            delay_secs: 20.0,
            drop_prob: 0.1,
            dup_prob: 0.1,
            partitions: Vec::new(),
        },
    };
    let a = run_with_faults(sprint_cfg(250, 17), &mech, plan.clone()).unwrap();
    let b = run_with_faults(sprint_cfg(250, 17), &mech, plan.clone()).unwrap();
    assert_eq!(a.records(), b.records());
    assert_eq!(a.fault_counters(), b.fault_counters());
    assert!(
        a.fault_counters().total() > 0,
        "an armed plan should inject something: {:?}",
        a.fault_counters()
    );
    // A different fault seed on the same config must diverge — the
    // counters are real, not replayed coincidence.
    let other =
        run_with_faults(sprint_cfg(250, 17), &mech, FaultPlan { seed: 12, ..plan }).unwrap();
    assert_ne!(a.records(), other.records());
}

/// An empty fault plan is a no-op: records are byte-identical to a
/// run without any fault machinery.
#[test]
fn empty_fault_plan_output_is_byte_identical() {
    let mech = Dvfs::new();
    let clean = run(sprint_cfg(200, 41), &mech).unwrap();
    let noop = run_with_faults(sprint_cfg(200, 41), &mech, FaultPlan::default()).unwrap();
    assert_eq!(clean.records(), noop.records());
    // Byte-level: the rendered record streams match exactly.
    assert_eq!(
        format!("{:?}", clean.records()),
        format!("{:?}", noop.records())
    );
    assert_eq!(noop.fault_counters().total(), 0);
}

/// Injected budget-sensor drift starves sprinting; the health monitor
/// must trip into the no-sprint fallback, whose tail latency stays
/// within 2X of an honest no-sprint baseline.
#[test]
fn budget_drift_trips_breaker_and_fallback_tail_is_bounded() {
    let mech = Dvfs::new();
    // Predictions: what a healthy sprinting server delivers.
    let predicted = run(sprint_cfg(400, 21), &mech).unwrap();
    // Observations: the same server, but the budget sensor reads
    // empty, so it never sprints and responses inflate.
    let plan = FaultPlan {
        seed: 3,
        budget_drift_secs: -1e9,
        ..FaultPlan::default()
    };
    let observed = run_with_faults(sprint_cfg(400, 21), &mech, plan).unwrap();

    let mut monitor = ModelHealthMonitor::new(BreakerConfig {
        window: 64,
        min_samples: 16,
        warn_divergence: 0.1,
        trip_divergence: 0.25,
        recalibration_tolerance: 0.1,
    })
    .unwrap();
    for (p, o) in predicted.records().iter().zip(observed.records()) {
        monitor.observe(
            p.response_time().as_secs_f64(),
            o.response_time().as_secs_f64(),
        );
        if monitor.level() == DegradationLevel::NoSprint {
            break;
        }
    }
    assert!(
        monitor.trips() >= 1,
        "drift-starved sprinting must trip the breaker (divergence {:?})",
        monitor.divergence()
    );
    assert!(!monitor.sprint_allowed());

    // The tripped breaker's fallback is the no-sprint policy: its tail
    // must stay within 2X of an honest no-sprint baseline.
    let fallback = run(no_sprint_cfg(400, 33), &mech).unwrap();
    let baseline = run(no_sprint_cfg(400, 77), &mech).unwrap();
    let fallback_p99 = fallback.response_quantile_secs(0.99);
    let baseline_p99 = baseline.response_quantile_secs(0.99);
    assert!(
        fallback_p99 <= 2.0 * baseline_p99,
        "fallback p99 {fallback_p99} vs no-sprint baseline p99 {baseline_p99}"
    );
}

/// The random forest returns finite predictions inside and slightly
/// outside the training range.
#[test]
fn forest_predictions_finite() {
    use model_sprint::mlcore::Dataset;
    let mut rng = SimRng::new(0xF03E);
    for _ in 0..6 {
        let slope = rng.uniform(0.5, 3.0);
        let mut d = Dataset::new(vec!["x", "z"]);
        for i in 0..80 {
            let x = i as f64;
            let z = ((i * 13) % 7) as f64;
            d.push(vec![x, z], slope * x + z);
        }
        let cfg = ForestConfig {
            seed: rng.next_u64() % 100,
            ..ForestConfig::default()
        };
        let f = RandomForest::train(&d, 0, cfg);
        for probe in [[-5.0, 0.0], [0.0, 3.0], [40.0, 6.0], [90.0, 1.0]] {
            assert!(f.predict(&probe).is_finite());
        }
    }
}

/// Welford merge equals sequential accumulation.
#[test]
fn welford_merge_matches_sequential() {
    let mut rng = SimRng::new(0x3E1F);
    for _ in 0..20 {
        let n = 2 + (rng.next_u64() % 198) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-1e3, 1e3)).collect();
        let split = (rng.next_u64() as usize) % n;
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-6);
        assert!((a.variance() - whole.variance()).abs() < 1e-3);
    }
}

/// Simulated annealing never evaluates outside its bounds and its
/// best value is consistent with its trace.
#[test]
fn annealing_respects_bounds() {
    use model_sprint::profiler::{Condition, WorkloadProfile};

    struct Quad(WorkloadProfile);
    impl ResponseTimeModel for Quad {
        fn name(&self) -> &'static str {
            "quad"
        }
        fn predict_response_secs(&self, c: &Condition) -> f64 {
            100.0 + (c.timeout_secs - 77.0).powi(2) / 100.0
        }
        fn profile(&self) -> &WorkloadProfile {
            &self.0
        }
    }
    let profile = WorkloadProfile {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        mechanism: "x".into(),
        mu: Rate::per_hour(50.0),
        mu_m: Rate::per_hour(75.0),
        service_samples_secs: vec![70.0],
        profiling_hours: 0.0,
    };
    let base = Condition {
        utilization: 0.5,
        arrival_kind: DistKind::Exponential,
        timeout_secs: 0.0,
        budget_frac: 0.2,
        refill_secs: 200.0,
    };
    let mut rng = SimRng::new(0xA213);
    for _ in 0..8 {
        let lo = rng.uniform(0.0, 50.0);
        let width = rng.uniform(10.0, 300.0);
        let cfg = AnnealingConfig {
            iterations: 60,
            bounds_secs: (lo, lo + width),
            seed: rng.next_u64() % 50,
            ..AnnealingConfig::default()
        };
        let r = explore_timeout(&Quad(profile.clone()), &base, &cfg).unwrap();
        let hi = lo + width;
        assert!(r
            .trace
            .iter()
            .all(|&(t, _)| t >= lo - 1e-9 && t <= hi + 1e-9));
        let trace_best = r
            .trace
            .iter()
            .map(|&(_, rt)| rt)
            .fold(f64::INFINITY, f64::min);
        assert!((r.best_response_secs - trace_best).abs() < 1e-9);
    }
}

/// The watchdog bounds sprint duration: with every sprint stuck on,
/// the supervisor force-unsprints past the deadline, while the same
/// plan unsupervised lets sprints run arbitrarily long.
#[test]
fn watchdog_force_unsprints_stuck_sprints() {
    let mech = Dvfs::new();
    let plan = FaultPlan {
        seed: 9,
        stuck_sprint_prob: 1.0,
        ..FaultPlan::default()
    };
    let sup = SupervisorConfig {
        watchdog_secs: 15.0,
        ..SupervisorConfig::default()
    };
    let supervised = run_supervised(sprint_cfg(300, 5), &mech, Some(plan.clone()), sup).unwrap();
    let slack = 2.0;
    let max_sprint = |r: &model_sprint::testbed::RunResult| {
        r.records()
            .iter()
            .map(|q| q.sprint_seconds)
            .fold(0.0_f64, f64::max)
    };
    assert!(
        supervised.recovery_counters().forced_unsprints > 0,
        "stuck sprints must trip the watchdog"
    );
    assert!(
        max_sprint(&supervised) <= sup.watchdog_secs + slack,
        "supervised sprints stay under the watchdog deadline"
    );
    let unsupervised = run_with_faults(sprint_cfg(300, 5), &mech, plan).unwrap();
    assert!(
        max_sprint(&unsupervised) > sup.watchdog_secs + slack,
        "the same plan unsupervised must exceed the deadline, or the \
         watchdog assertion above is vacuous"
    );
}

/// A persistently crashing slot is quarantined after the configured
/// number of crashes, and crashes stop once it leaves the rotation.
#[test]
fn flaky_slot_is_quarantined_after_configured_crashes() {
    let mech = Dvfs::new();
    let cfg = ServerConfig {
        slots: 2,
        ..sprint_cfg(250, 13)
    };
    let plan = FaultPlan {
        seed: 21,
        bad_slot: Some(0),
        bad_slot_crash_prob: 0.95,
        max_retries: 10,
        ..FaultPlan::default()
    };
    // Watermarks far above any queue this run builds, so admission
    // control stays out of the picture and only slot supervision acts.
    let sup = SupervisorConfig {
        quarantine_after: 3,
        shed_watermark: 500,
        reject_watermark: 1_000,
        drain_watermark: 250,
        ..SupervisorConfig::default()
    };
    let r = run_supervised(cfg, &mech, Some(plan), sup).unwrap();
    let rec = r.recovery_counters();
    assert_eq!(rec.quarantines, 1, "exactly the bad slot is quarantined");
    assert!(
        r.fault_counters().slot_crashes <= sup.quarantine_after as u64,
        "crashes stop at the quarantine threshold, got {}",
        r.fault_counters().slot_crashes
    );
    assert_eq!(rec.requeued_queries, r.fault_counters().slot_crashes);
    assert!(r.conserves_queries());
    assert_eq!(r.served(), r.arrived(), "nothing shed at these watermarks");
}

/// Crash-requeued queries re-enter at the *head* of the queue: on a
/// single slot, service order (and thus departure order) still follows
/// arrival order even when queries crash mid-service.
#[test]
fn crash_requeue_preserves_fifo_order() {
    let mech = Dvfs::new();
    let plan = FaultPlan {
        seed: 31,
        crash_prob: 0.3,
        max_retries: 3,
        ..FaultPlan::default()
    };
    let sup = SupervisorConfig {
        shed_watermark: 500,
        reject_watermark: 1_000,
        drain_watermark: 250,
        ..SupervisorConfig::default()
    };
    let r = run_supervised(sprint_cfg(200, 3), &mech, Some(plan), sup).unwrap();
    assert!(
        r.records().iter().any(|q| q.retries > 0),
        "crash_prob 0.3 must requeue something"
    );
    let mut by_arrival: Vec<_> = r.records().to_vec();
    by_arrival.sort_by(|a, b| a.arrival.as_secs_f64().total_cmp(&b.arrival.as_secs_f64()));
    let mut prev_depart = 0.0;
    for q in &by_arrival {
        let depart = q.depart.as_secs_f64();
        assert!(
            depart >= prev_depart,
            "head requeue keeps single-slot FIFO: query {} departed early",
            q.id
        );
        prev_depart = depart;
    }
}

/// Under a sustained arrival storm with tight watermarks, the ladder
/// both sheds (every other arrival) and rejects (drain mode), and the
/// two buckets plus served queries exactly account for every arrival.
#[test]
fn admission_ladder_shed_and_reject_accounting() {
    let mech = Dvfs::new();
    let plan = FaultPlan {
        seed: 47,
        storms: vec![StormWindow {
            start_secs: 0.0,
            duration_secs: 50_000.0,
            multiplier: 6.0,
        }],
        ..FaultPlan::default()
    };
    let sup = SupervisorConfig {
        shed_watermark: 4,
        reject_watermark: 8,
        drain_watermark: 2,
        ..SupervisorConfig::default()
    };
    let r = run_supervised(sprint_cfg(400, 29), &mech, Some(plan), sup).unwrap();
    let rec = r.recovery_counters();
    assert!(
        rec.shed_queries > 0,
        "the storm must push past the shed mark"
    );
    assert!(rec.rejected_queries > 0, "and into drain mode");
    assert!(rec.degraded_secs > 0.0);
    assert_eq!(
        r.served() as u64 + rec.shed_queries + rec.rejected_queries,
        r.arrived() as u64,
        "every arrival is served, shed, or rejected"
    );
    assert!(r.conserves_queries());
    assert_eq!(r.served(), r.records().len());
}
