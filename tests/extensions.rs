//! Integration tests for the §5 extensions: multi-class simulation,
//! online load estimation, time-varying arrivals and trace export —
//! exercised together, end to end.

use model_sprint::prelude::*;
use model_sprint::simcore::dist::{Dist, DistKind};
use model_sprint::testbed::{trace, ArrivalSpec, BudgetSpec, ServerConfig};

#[test]
fn multiclass_prefers_sprinting_the_elastic_class() {
    // Two classes share a binding budget. Spending it on the class with
    // the larger speedup must beat spending it on the weak class:
    // compare per-class-timeout configurations that gate one class out.
    let base = MultiClassConfig {
        arrival_rate: Rate::per_hour(28.0),
        arrival_kind: DistKind::Exponential,
        classes: vec![
            ClassSpec {
                weight: 0.5,
                service: Dist::lognormal(SimDuration::from_secs(100), 0.15),
                sprint_speedup: 1.3,
                timeout: SimDuration::from_secs(0),
            },
            ClassSpec {
                weight: 0.5,
                service: Dist::lognormal(SimDuration::from_secs(45), 0.4),
                sprint_speedup: 2.5,
                timeout: SimDuration::from_secs(0),
            },
        ],
        budget_capacity_secs: 100.0,
        refill_secs: 2_000.0,
        slots: 1,
        num_queries: 25_000,
        warmup: 2_500,
        seed: 99,
    };

    // Gate the weak class out of sprinting entirely.
    let mut strong_only = base.clone();
    strong_only.classes[0].timeout = SimDuration::MAX;
    // Gate the strong class out instead.
    let mut weak_only = base.clone();
    weak_only.classes[1].timeout = SimDuration::MAX;

    let strong_rt = MultiClassQsim::new(strong_only)
        .unwrap()
        .run()
        .unwrap()
        .mean_response_secs();
    let weak_rt = MultiClassQsim::new(weak_only)
        .unwrap()
        .run()
        .unwrap()
        .mean_response_secs();
    assert!(
        strong_rt < weak_rt,
        "budget on the elastic class should win: {strong_rt:.1} !< {weak_rt:.1}"
    );
}

#[test]
fn online_estimator_tracks_a_spiky_testbed_run() {
    // Replay a spiky pattern on the testbed and confirm the sliding
    // window's estimate lands between the calm and spike rates.
    let mech = Dvfs::new();
    let base = Rate::per_hour(51.0 * 0.4);
    let cfg = ServerConfig {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        arrivals: ArrivalSpec::poisson_with_spike(base, 2.5, 900.0, 3_600.0)
            .expect("spike fits inside the period"),
        policy: SprintPolicy::never(),
        slots: 1,
        num_queries: 400,
        warmup: 0,
        seed: 41,
    };
    let result = model_sprint::testbed::server::run(cfg, &mech).expect("valid spiky config");

    let mut est = ArrivalRateEstimator::new(7_200.0, 10);
    for q in result.records() {
        est.record(q.arrival);
    }
    let rate = est.rate().expect("warm estimator").qph();
    let calm = base.qph();
    let spike = base.qph() * 2.5;
    assert!(
        rate > calm * 0.95 && rate < spike,
        "estimate {rate:.1} should sit between calm {calm:.1} and spike {spike:.1}"
    );
}

#[test]
fn trace_export_round_trips_a_real_run() {
    let mech = CpuThrottle::new(0.2);
    let cfg = ServerConfig {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        arrivals: ArrivalSpec::poisson(Rate::per_hour(10.0)),
        policy: SprintPolicy::new(
            SimDuration::from_secs(60),
            BudgetSpec::Seconds(200.0),
            SimDuration::from_secs(1_000),
        ),
        slots: 1,
        num_queries: 60,
        warmup: 0,
        seed: 31,
    };
    let result = model_sprint::testbed::server::run(cfg, &mech).expect("valid trace config");
    let csv = trace::to_csv(result.records());
    assert_eq!(csv.lines().count(), 61, "header + one row per query");
    // Sanity on content: ids sequential, responses positive.
    for (i, line) in csv.lines().skip(1).enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[0], i.to_string());
        let arrival: f64 = fields[2].parse().unwrap();
        let depart: f64 = fields[4].parse().unwrap();
        assert!(depart > arrival);
    }
    let timeline = trace::ascii_timeline(result.records(), 8, 72).expect("records exist");
    assert_eq!(timeline.lines().count(), 9);
}

#[test]
fn what_if_budget_doubling_helps_under_binding_budget() {
    // The intro's what-if, asked through the public API: doubling a
    // binding budget at heavy load must lower simulated response time.
    let profile = model_sprint::profiler::WorkloadProfile {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        mechanism: "CPUThrottle".into(),
        mu: Rate::per_hour(14.8),
        mu_m: Rate::per_hour(74.0),
        service_samples_secs: (0..150).map(|i| 230.0 + (i % 27) as f64).collect(),
        profiling_hours: 0.0,
    };
    let cond = model_sprint::profiler::Condition {
        utilization: 0.9,
        arrival_kind: DistKind::Exponential,
        timeout_secs: 120.0,
        budget_frac: 0.05,
        refill_secs: 3_600.0,
    };
    let sim = SimOptions {
        sim_queries: 3_000,
        warmup: 300,
        replications: 3,
        ..SimOptions::default()
    };
    let speedup = profile.mu_m.qph() / profile.mu.qph();
    let tight = sim.simulate(&profile, &cond, speedup);
    let mut doubled = cond;
    doubled.budget_frac *= 2.0;
    let loose = sim.simulate(&profile, &doubled, speedup);
    assert!(
        loose < tight * 0.95,
        "doubling a binding budget should help: {loose:.0} !< {tight:.0}"
    );
}
