//! Cross-worker cache-sharing tests: the process-wide CRN trace cache
//! and prediction memo behind [`model_sprint::sprint_core::NoMlModel`]
//! must be bit-invisible in results across pool sizes, and must
//! actually raise the cache hit rate over per-model private caches.
//!
//! These tests live in their own integration binary because they read
//! the process-wide obs counters; sharing a binary with unrelated
//! tests would race on the global registry.

use std::sync::Mutex;

use model_sprint::obs;
use model_sprint::profiler::{Condition, WorkloadProfile};
use model_sprint::simcore::dist::DistKind;
use model_sprint::simcore::time::Rate;
use model_sprint::sprint_core::{NoMlModel, ResponseTimeModel, SimOptions};
use model_sprint::workloads::{QueryMix, WorkloadKind};

/// Serializes the tests in this binary: both touch the global metrics
/// registry and the shared caches.
static GATE: Mutex<()> = Mutex::new(());

fn profile() -> WorkloadProfile {
    WorkloadProfile {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        mechanism: "DVFS".into(),
        mu: Rate::per_hour(50.0),
        mu_m: Rate::per_hour(75.0),
        service_samples_secs: (0..100).map(|i| 60.0 + (i % 21) as f64).collect(),
        profiling_hours: 1.0,
    }
}

fn cond(timeout_secs: f64) -> Condition {
    Condition {
        utilization: 0.7,
        arrival_kind: DistKind::Exponential,
        timeout_secs,
        budget_frac: 0.4,
        refill_secs: 200.0,
    }
}

fn sim_options(threads: usize) -> SimOptions {
    SimOptions {
        sim_queries: 400,
        warmup: 40,
        replications: 2,
        threads,
        ..SimOptions::default()
    }
}

/// Same seed ⇒ byte-identical predictions at pool sizes 1, 2 and 8:
/// the workers inside each pool share one trace cache and memo, and
/// neither the sharing nor the worker count may leak into results.
#[test]
fn predictions_are_bit_identical_across_pool_sizes() {
    let _gate = GATE.lock().unwrap();
    let conds: Vec<Condition> = (0..6).map(|i| cond(40.0 + 12.0 * f64::from(i))).collect();
    let predict_all = |threads: usize| -> Vec<u64> {
        // Private caches per run so pools 2 and 8 genuinely recompute
        // instead of memo-hitting pool 1's results.
        let model = NoMlModel::new(profile(), sim_options(threads)).with_private_caches();
        conds
            .iter()
            .map(|c| model.predict_response_secs(c).to_bits())
            .collect()
    };
    let one = predict_all(1);
    assert_eq!(one, predict_all(2), "pool of 2 diverged from pool of 1");
    assert_eq!(one, predict_all(8), "pool of 8 diverged from pool of 1");
}

/// Shared caches must beat the per-model private baseline: a second
/// model over the same conditions resolves whole predictions from the
/// shared memo (no private-cache run ever memo-hits across models) and
/// re-materializes fewer CRN traces.
#[test]
fn shared_caches_raise_hit_rate_over_private_baseline() {
    let _gate = GATE.lock().unwrap();
    let conds: Vec<Condition> = (0..4).map(|i| cond(55.0 + 15.0 * f64::from(i))).collect();
    // Distinct seed from every other test in this binary so the
    // process-wide shared caches start cold for this workload.
    let opts = SimOptions {
        seed: 0x5AFE_CAFE,
        ..sim_options(1)
    };
    let run = |shared: bool| -> (u64, u64) {
        obs::set_enabled(true);
        obs::global().reset();
        for _ in 0..2 {
            let model = if shared {
                NoMlModel::new(profile(), opts)
            } else {
                NoMlModel::new(profile(), opts).with_private_caches()
            };
            for c in &conds {
                model.predict_response_secs(c);
            }
        }
        let m = obs::global();
        let out = (m.memo_hits.get(), m.trace_cache_misses.get());
        obs::set_enabled(false);
        out
    };
    let (private_memo_hits, private_trace_misses) = run(false);
    let (shared_memo_hits, shared_trace_misses) = run(true);
    assert!(
        shared_memo_hits > private_memo_hits,
        "shared memo hits {shared_memo_hits} must strictly exceed the per-worker \
         baseline {private_memo_hits}"
    );
    assert!(
        shared_trace_misses < private_trace_misses,
        "shared caches must re-materialize fewer traces: {shared_trace_misses} \
         vs private {private_trace_misses}"
    );
}
