//! End-to-end determinism and variance-reduction tests for the
//! prediction fast path: the persistent worker pool, common-random-
//! number (CRN) trace reuse, and the direct k = 1 engine must be
//! invisible in results — only in wall-clock.

use model_sprint::policy::{explore_timeout, AnnealingConfig};
use model_sprint::profiler::{Condition, WorkloadProfile};
use model_sprint::qsim::{
    predict_mean_response, predict_mean_response_traced, run_batch_with, Backend, QsimConfig,
    TraceCache,
};
use model_sprint::simcore::dist::{Dist, DistKind};
use model_sprint::simcore::time::{Rate, SimDuration};
use model_sprint::sprint_core::{NoMlModel, SimOptions};
use model_sprint::workloads::{QueryMix, WorkloadKind};

fn batch_cfg(seed: u64) -> QsimConfig {
    let mut c = QsimConfig::mm1(
        Rate::per_hour(45.0),
        Dist::exponential(SimDuration::from_secs(60)),
        seed,
    );
    c.num_queries = 1_200;
    c.warmup = 120;
    c.timeout = SimDuration::from_secs(80);
    c.budget_capacity_secs = 80.0;
    c.refill_secs = 200.0;
    c.sprint_speedup = 1.5;
    c
}

fn profile() -> WorkloadProfile {
    WorkloadProfile {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        mechanism: "DVFS".into(),
        mu: Rate::per_hour(50.0),
        mu_m: Rate::per_hour(75.0),
        service_samples_secs: (0..100).map(|i| 60.0 + (i % 21) as f64).collect(),
        profiling_hours: 1.0,
    }
}

fn cond(timeout_secs: f64) -> Condition {
    Condition {
        utilization: 0.75,
        arrival_kind: DistKind::Exponential,
        timeout_secs,
        budget_frac: 0.4,
        refill_secs: 200.0,
    }
}

/// Small-but-real simulation sizes so the whole suite stays fast.
fn sim_options(fast_path: bool) -> SimOptions {
    SimOptions {
        sim_queries: 500,
        warmup: 50,
        replications: 2,
        threads: 1,
        fast_path,
        ..SimOptions::default()
    }
}

/// Batches are bit-identical across thread counts and across the
/// persistent-pool, scoped-thread, and frozen reference backends.
#[test]
fn run_batch_is_bit_identical_across_threads_and_backends() {
    let configs: Vec<QsimConfig> = (0..6).map(|i| batch_cfg(100 + i)).collect();
    let baseline = run_batch_with(configs.clone(), 1, Backend::Pool).unwrap();
    for threads in [2, 8] {
        for backend in [Backend::Pool, Backend::Scoped, Backend::Reference] {
            let out = run_batch_with(configs.clone(), threads, backend).unwrap();
            for (i, (a, b)) in baseline.iter().zip(out.iter()).enumerate() {
                assert_eq!(
                    a.queries, b.queries,
                    "config {i} diverged at {threads} threads on {backend:?}"
                );
            }
        }
    }
}

/// Trace-replayed predictions equal live-RNG predictions bit for bit,
/// and repeated traced predictions reuse the cache without drifting.
#[test]
fn traced_predictions_match_live_bitwise() {
    let cfg = batch_cfg(7);
    let cache = TraceCache::new();
    let live = predict_mean_response(&cfg, 3, 1).unwrap();
    let traced = predict_mean_response_traced(&cfg, 3, 1, &cache).unwrap();
    assert_eq!(live.to_bits(), traced.to_bits());
    let again = predict_mean_response_traced(&cfg, 3, 1, &cache).unwrap();
    assert_eq!(traced.to_bits(), again.to_bits());
}

/// CRN variance reduction: comparing two candidate timeouts on shared
/// traces gives a lower-variance estimate of their response-time
/// *difference* than comparing them on independent randomness — the
/// property that makes annealing comparisons trustworthy at small
/// replication counts.
#[test]
fn shared_traces_reduce_comparison_variance() {
    let t_a = 40.0;
    let t_b = 120.0;
    let groups = 12u64;
    let spread = |diffs: &[f64]| {
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        (diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / diffs.len() as f64).sqrt()
    };

    // CRN: both timeouts replay the identical per-seed traces (the
    // trace key excludes the timeout), so the difference isolates the
    // policy change.
    let crn: Vec<f64> = (0..groups)
        .map(|g| {
            let cache = TraceCache::new();
            let mut a = batch_cfg(1_000 + g);
            a.timeout = SimDuration::from_secs_f64(t_a);
            let mut b = a.clone();
            b.timeout = SimDuration::from_secs_f64(t_b);
            predict_mean_response_traced(&a, 2, 1, &cache).unwrap()
                - predict_mean_response_traced(&b, 2, 1, &cache).unwrap()
        })
        .collect();

    // Independent: the second timeout sees different randomness, so
    // arrival/service noise leaks into the difference.
    let indep: Vec<f64> = (0..groups)
        .map(|g| {
            let mut a = batch_cfg(1_000 + g);
            a.timeout = SimDuration::from_secs_f64(t_a);
            let mut b = batch_cfg(5_000 + g);
            b.timeout = SimDuration::from_secs_f64(t_b);
            predict_mean_response(&a, 2, 1).unwrap() - predict_mean_response(&b, 2, 1).unwrap()
        })
        .collect();

    let (s_crn, s_indep) = (spread(&crn), spread(&indep));
    assert!(
        s_crn <= s_indep,
        "CRN comparison spread {s_crn:.3} should not exceed independent spread {s_indep:.3}"
    );
}

/// One annealing search, run twice at the same seed on fresh models,
/// reproduces its evaluation trace byte for byte — and the fast path
/// (pool + traces + direct engine + memo) agrees bitwise with the
/// frozen reference path.
#[test]
fn annealing_trace_is_reproducible_and_backend_invariant() {
    let base = cond(80.0);
    let accfg = AnnealingConfig {
        iterations: 30,
        ..AnnealingConfig::default()
    };
    let search = |fast_path: bool| {
        let model = NoMlModel::new(profile(), sim_options(fast_path));
        explore_timeout(&model, &base, &accfg).unwrap()
    };
    let a = search(true);
    let b = search(true);
    assert_eq!(a.trace, b.trace, "same-seed reruns must be byte-stable");
    assert_eq!(a.best_timeout_secs.to_bits(), b.best_timeout_secs.to_bits());

    let reference = search(false);
    assert_eq!(
        a.trace, reference.trace,
        "fast and reference searches must evaluate identical (t, RT) pairs"
    );
    assert_eq!(
        a.best_timeout_secs.to_bits(),
        reference.best_timeout_secs.to_bits()
    );
}
