//! Integration tests for the deterministic reactor runtime: journal
//! bit-identity under message-level faults, and the promise that an
//! empty message plan is behaviorally invisible.

use faults::{FaultPlan, LinkPartition, MessageFaults, Peer};
use mechanisms::MechanismKind;
use simcore::time::{Rate, SimDuration};
use testbed::spec::{run_journaled, RunSpec};
use testbed::{ArrivalSpec, BudgetSpec, ServerConfig, SprintPolicy, SupervisorConfig};
use workloads::{QueryMix, WorkloadKind};

fn base_cfg(seed: u64) -> ServerConfig {
    ServerConfig {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        arrivals: ArrivalSpec::poisson(Rate::per_hour(25.0)),
        policy: SprintPolicy::new(
            SimDuration::from_secs(40),
            BudgetSpec::Seconds(60.0),
            SimDuration::from_secs(3600),
        ),
        slots: 1,
        num_queries: 70,
        warmup: 7,
        seed,
    }
}

fn supervised(seed: u64, messages: MessageFaults) -> RunSpec {
    RunSpec {
        cfg: base_cfg(seed),
        mechanism: MechanismKind::CpuThrottle,
        plan: Some(FaultPlan {
            seed: seed.wrapping_mul(0x2545_F491_4F6C_DD1D),
            stuck_sprint_prob: 0.5,
            messages,
            ..FaultPlan::default()
        }),
        supervisor: Some(SupervisorConfig {
            watchdog_secs: 25.0,
            ..SupervisorConfig::default()
        }),
    }
}

fn delay_plan() -> MessageFaults {
    MessageFaults {
        delay_prob: 0.6,
        delay_secs: 20.0,
        ..MessageFaults::default()
    }
}

fn drop_plan() -> MessageFaults {
    MessageFaults {
        drop_prob: 0.5,
        ..MessageFaults::default()
    }
}

fn partition_plan() -> MessageFaults {
    MessageFaults {
        partitions: vec![LinkPartition {
            a: Peer::Watchdog,
            b: Peer::Controller,
            start_secs: 500.0,
            duration_secs: 4000.0,
        }],
        ..MessageFaults::default()
    }
}

#[test]
fn same_seed_same_journal_under_every_message_fault_class() {
    for (label, messages) in [
        ("delay", delay_plan()),
        ("drop", drop_plan()),
        ("partition", partition_plan()),
    ] {
        let spec = supervised(0xABCD, messages);
        let (r1, j1) = run_journaled(&spec).expect("first run");
        let (r2, j2) = run_journaled(&spec).expect("second run");
        assert!(!j1.is_empty(), "{label}: journal must have entries");
        assert!(
            j1.diff(&j2).is_none(),
            "{label}: same seed diverged: {:?}",
            j1.diff(&j2)
        );
        assert_eq!(
            j1.to_jsonl(),
            j2.to_jsonl(),
            "{label}: serialized journals must match byte for byte"
        );
        assert_eq!(r1.records(), r2.records(), "{label}: records must match");
        assert_eq!(
            r1.fault_counters(),
            r2.fault_counters(),
            "{label}: counters must match"
        );
    }
}

#[test]
fn different_seeds_produce_different_journals() {
    let (_, j1) = run_journaled(&supervised(1, delay_plan())).expect("seed 1");
    let (_, j2) = run_journaled(&supervised(2, delay_plan())).expect("seed 2");
    assert!(
        j1.diff(&j2).is_some(),
        "different seeds must not share a journal"
    );
}

#[test]
fn empty_message_plan_is_invisible_in_journal_and_records() {
    // A plan whose message faults are all off must behave exactly like
    // the same plan before the reactor refactor existed: identical
    // journal, records, and counters to the plan with a default
    // MessageFaults (which is itself the pre-reactor code path, since
    // Inline delivery is a synchronous call at the send site).
    let with_empty = supervised(77, MessageFaults::default());
    let (r1, j1) = run_journaled(&with_empty).expect("empty-messages run");
    // Same plan, constructed independently — guards against hidden
    // state leaking between runs.
    let (r2, j2) = run_journaled(&with_empty.clone()).expect("clone run");
    assert!(j1.diff(&j2).is_none());
    assert_eq!(r1.records(), r2.records());
    // The journal of an empty-message run must contain no routing
    // entries at all: no message faults means no simulated network.
    assert!(
        !j1.to_jsonl().contains("route "),
        "empty message plans must not route messages"
    );
    assert_eq!(r1.fault_counters().msgs_delayed, 0);
    assert_eq!(r1.fault_counters().msgs_dropped, 0);
    assert_eq!(r1.fault_counters().msgs_duplicated, 0);
    assert_eq!(r1.fault_counters().partition_drops, 0);
}

#[test]
fn message_faults_actually_change_the_run() {
    let clean = supervised(77, MessageFaults::default());
    let faulted = supervised(77, drop_plan());
    let (rc, jc) = run_journaled(&clean).expect("clean");
    let (rf, jf) = run_journaled(&faulted).expect("faulted");
    assert!(
        jc.diff(&jf).is_some(),
        "dropping every other control message must alter the journal"
    );
    assert!(rf.fault_counters().msgs_dropped > 0);
    assert_eq!(rc.fault_counters().msgs_dropped, 0);
    // Faulted journals carry the routing verdicts for the divergence
    // hunt the replay tool performs.
    assert!(jf.to_jsonl().contains("route "));
}

#[test]
fn journal_survives_a_file_style_round_trip() {
    use reactor::Journal;
    let (_, j) = run_journaled(&supervised(5, partition_plan())).expect("run");
    let text = j.to_jsonl();
    let back = Journal::parse_jsonl(&text).expect("parse");
    assert!(j.diff(&back).is_none());
    // Tampering with one entry must be caught by the diff.
    let tampered = text.replacen("\"t_us\": ", "\"t_us\": 9", 1);
    let bad = Journal::parse_jsonl(&tampered).expect("still well-formed");
    assert!(j.diff(&bad).is_some());
}
