//! Integration tests for the deterministic reactor runtime: journal
//! bit-identity under message-level faults, the promise that an empty
//! message plan is behaviorally invisible, and the fleet layer's
//! fail-safe lease protocol (partition → lease lapse → forced
//! unsprint, all seed-replayable).

use faults::{FaultPlan, LinkPartition, MessageFaults, Peer};
use fleet::{run_fleet, run_fleet_journaled, FleetPartition, FleetSpec};
use mechanisms::MechanismKind;
use obs::EventKind;
use simcore::time::{Rate, SimDuration};
use testbed::spec::{run_journaled, RunSpec};
use testbed::{ArrivalSpec, BudgetSpec, ServerConfig, SprintPolicy, SupervisorConfig};
use workloads::{QueryMix, WorkloadKind};

fn base_cfg(seed: u64) -> ServerConfig {
    ServerConfig {
        mix: QueryMix::single(WorkloadKind::Jacobi),
        arrivals: ArrivalSpec::poisson(Rate::per_hour(25.0)),
        policy: SprintPolicy::new(
            SimDuration::from_secs(40),
            BudgetSpec::Seconds(60.0),
            SimDuration::from_secs(3600),
        ),
        slots: 1,
        num_queries: 70,
        warmup: 7,
        seed,
    }
}

fn supervised(seed: u64, messages: MessageFaults) -> RunSpec {
    RunSpec {
        cfg: base_cfg(seed),
        mechanism: MechanismKind::CpuThrottle,
        plan: Some(FaultPlan {
            seed: seed.wrapping_mul(0x2545_F491_4F6C_DD1D),
            stuck_sprint_prob: 0.5,
            messages,
            ..FaultPlan::default()
        }),
        supervisor: Some(SupervisorConfig {
            watchdog_secs: 25.0,
            ..SupervisorConfig::default()
        }),
    }
}

fn delay_plan() -> MessageFaults {
    MessageFaults {
        delay_prob: 0.6,
        delay_secs: 20.0,
        ..MessageFaults::default()
    }
}

fn drop_plan() -> MessageFaults {
    MessageFaults {
        drop_prob: 0.5,
        ..MessageFaults::default()
    }
}

fn partition_plan() -> MessageFaults {
    MessageFaults {
        partitions: vec![LinkPartition {
            a: Peer::Watchdog,
            b: Peer::Controller,
            start_secs: 500.0,
            duration_secs: 4000.0,
        }],
        ..MessageFaults::default()
    }
}

#[test]
fn same_seed_same_journal_under_every_message_fault_class() {
    for (label, messages) in [
        ("delay", delay_plan()),
        ("drop", drop_plan()),
        ("partition", partition_plan()),
    ] {
        let spec = supervised(0xABCD, messages);
        let (r1, j1) = run_journaled(&spec).expect("first run");
        let (r2, j2) = run_journaled(&spec).expect("second run");
        assert!(!j1.is_empty(), "{label}: journal must have entries");
        assert!(
            j1.diff(&j2).is_none(),
            "{label}: same seed diverged: {:?}",
            j1.diff(&j2)
        );
        assert_eq!(
            j1.to_jsonl(),
            j2.to_jsonl(),
            "{label}: serialized journals must match byte for byte"
        );
        assert_eq!(r1.records(), r2.records(), "{label}: records must match");
        assert_eq!(
            r1.fault_counters(),
            r2.fault_counters(),
            "{label}: counters must match"
        );
    }
}

#[test]
fn different_seeds_produce_different_journals() {
    let (_, j1) = run_journaled(&supervised(1, delay_plan())).expect("seed 1");
    let (_, j2) = run_journaled(&supervised(2, delay_plan())).expect("seed 2");
    assert!(
        j1.diff(&j2).is_some(),
        "different seeds must not share a journal"
    );
}

#[test]
fn empty_message_plan_is_invisible_in_journal_and_records() {
    // A plan whose message faults are all off must behave exactly like
    // the same plan before the reactor refactor existed: identical
    // journal, records, and counters to the plan with a default
    // MessageFaults (which is itself the pre-reactor code path, since
    // Inline delivery is a synchronous call at the send site).
    let with_empty = supervised(77, MessageFaults::default());
    let (r1, j1) = run_journaled(&with_empty).expect("empty-messages run");
    // Same plan, constructed independently — guards against hidden
    // state leaking between runs.
    let (r2, j2) = run_journaled(&with_empty.clone()).expect("clone run");
    assert!(j1.diff(&j2).is_none());
    assert_eq!(r1.records(), r2.records());
    // The journal of an empty-message run must contain no routing
    // entries at all: no message faults means no simulated network.
    assert!(
        !j1.to_jsonl().contains("route "),
        "empty message plans must not route messages"
    );
    assert_eq!(r1.fault_counters().msgs_delayed, 0);
    assert_eq!(r1.fault_counters().msgs_dropped, 0);
    assert_eq!(r1.fault_counters().msgs_duplicated, 0);
    assert_eq!(r1.fault_counters().partition_drops, 0);
}

#[test]
fn message_faults_actually_change_the_run() {
    let clean = supervised(77, MessageFaults::default());
    let faulted = supervised(77, drop_plan());
    let (rc, jc) = run_journaled(&clean).expect("clean");
    let (rf, jf) = run_journaled(&faulted).expect("faulted");
    assert!(
        jc.diff(&jf).is_some(),
        "dropping every other control message must alter the journal"
    );
    assert!(rf.fault_counters().msgs_dropped > 0);
    assert_eq!(rc.fault_counters().msgs_dropped, 0);
    // Faulted journals carry the routing verdicts for the divergence
    // hunt the replay tool performs.
    assert!(jf.to_jsonl().contains("route "));
}

fn window_partition_plan(start_secs: f64, duration_secs: f64) -> MessageFaults {
    MessageFaults {
        partitions: vec![LinkPartition {
            a: Peer::Watchdog,
            b: Peer::Controller,
            start_secs,
            duration_secs,
        }],
        ..MessageFaults::default()
    }
}

#[test]
fn healed_partition_resumes_delivery_deterministically() {
    // A partition window that closes mid-run: messages crossing the
    // link during the window drop, and delivery resumes once it heals.
    let healed = supervised(0x4EA1, window_partition_plan(400.0, 800.0));
    // The same run with the window left open forever.
    let permanent = supervised(0x4EA1, window_partition_plan(400.0, 4.0e6));

    let (rh1, jh1) = run_journaled(&healed).expect("healed run");
    let (rh2, jh2) = run_journaled(&healed).expect("healed replay");
    let (rp, _) = run_journaled(&permanent).expect("permanent run");

    // The window actually bit.
    assert!(
        rh1.fault_counters().partition_drops > 0,
        "the partition window must drop at least one crossing message"
    );
    // Healing is observable: once the window closes, crossing messages
    // deliver again, so the permanent partition drops strictly more.
    assert!(
        rp.fault_counters().partition_drops > rh1.fault_counters().partition_drops,
        "healing must stop the drops ({} healed vs {} permanent)",
        rh1.fault_counters().partition_drops,
        rp.fault_counters().partition_drops
    );
    // And the heal itself is deterministic: same seed, same journal,
    // byte for byte.
    assert!(
        jh1.diff(&jh2).is_none(),
        "healed-partition replay diverged: {:?}",
        jh1.diff(&jh2)
    );
    assert_eq!(jh1.to_jsonl(), jh2.to_jsonl());
    assert_eq!(rh1.records(), rh2.records());
}

/// A fleet of eight nodes whose coordinators are both cut off from
/// every node for `duration_secs` starting at `start_secs`: side A is
/// the two coordinators, side B is every node.
fn stranded_fleet(seed: u64, start_secs: f64, duration_secs: f64) -> FleetSpec {
    let mut spec = FleetSpec::small(seed, 8).expect("spec");
    spec.faults.partitions.push(FleetPartition {
        coords_a: vec![0, 1],
        nodes_a_lo: 0,
        nodes_a_hi: 0,
        start_secs,
        duration_secs,
    });
    spec
}

#[test]
fn lease_expiry_under_partition_force_unsprints_within_one_lease() {
    const START: f64 = 100.0;
    const DURATION: f64 = 200.0;
    let mut total_expiries = 0u64;
    let mut total_forced = 0u64;
    // Seeds chosen so at least one catches the lease holder mid-sprint
    // (whether the sole budget-1 holder happens to be sprinting at the
    // lapse instant is seed-dependent).
    for seed in [2_u64, 6, 14, 16] {
        let spec = stranded_fleet(seed, START, DURATION);
        let lease = spec.lease_secs;
        let result = run_fleet(&spec).expect("fleet run");
        assert!(
            result.invariants_clean(),
            "seed {seed:#x}: {:?}",
            result.violations
        );
        total_expiries += result.stats.expiries;
        total_forced += result.forced_unsprints;

        let mut lapses_in_window = 0u32;
        for ev in result.telemetry.events() {
            let t = ev.at.as_secs_f64();
            match ev.kind {
                // Any lease alive when the partition cut the nodes off
                // was granted before START, so it lapses no later than
                // START + lease_secs: the fail-safe window is one lease
                // duration, the fleet analogue of a watchdog period.
                EventKind::LeaseExpired { .. } if (START..START + DURATION).contains(&t) => {
                    assert!(
                        t <= START + lease,
                        "seed {seed:#x}: lease lapsed at {t:.1}s, after the \
                         one-lease fail-safe bound ({:.1}s)",
                        START + lease
                    );
                    lapses_in_window += 1;
                }
                // With every node cut off from every coordinator, no
                // grant can be delivered inside the window.
                EventKind::LeaseGranted { .. } => {
                    assert!(
                        !(t > START && t < START + DURATION),
                        "seed {seed:#x}: grant delivered at {t:.1}s inside a \
                         total partition [{START:.1}, {:.1})",
                        START + DURATION
                    );
                }
                _ => {}
            }
        }
        assert!(
            lapses_in_window > 0,
            "seed {seed:#x}: stranded nodes must lose their leases"
        );
    }
    assert!(total_expiries > 0);
    // Across the seeds, at least one node is mid-sprint when its lease
    // lapses, and the lapse force-ends the sprint immediately.
    assert!(
        total_forced > 0,
        "a lapse caught mid-sprint must force-unsprint the node"
    );
}

#[test]
fn hundred_node_fleet_replays_bit_identically() {
    let spec = FleetSpec::small(0xF1EE7, 100).expect("spec");
    let (r1, j1) = run_fleet_journaled(&spec).expect("first run");
    let (r2, j2) = run_fleet_journaled(&spec).expect("replay");
    assert!(!j1.is_empty());
    assert!(
        j1.diff(&j2).is_none(),
        "100-node fleet replay diverged: {:?}",
        j1.diff(&j2)
    );
    assert_eq!(j1.to_jsonl(), j2.to_jsonl());
    assert_eq!(r1.served, r2.served);
    assert_eq!(r1.served, u64::from(spec.queries_total));
    assert!(r1.invariants_clean(), "{:?}", r1.violations);
}

#[test]
fn journal_survives_a_file_style_round_trip() {
    use reactor::Journal;
    let (_, j) = run_journaled(&supervised(5, partition_plan())).expect("run");
    let text = j.to_jsonl();
    let back = Journal::parse_jsonl(&text).expect("parse");
    assert!(j.diff(&back).is_none());
    // Tampering with one entry must be caught by the diff.
    let tampered = text.replacen("\"t_us\": ", "\"t_us\": 9", 1);
    let bad = Journal::parse_jsonl(&tampered).expect("still well-formed");
    assert!(j.diff(&bad).is_some());
}
