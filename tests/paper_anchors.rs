//! Cross-crate integration tests pinning the reproduction to the
//! paper's published numbers (Table 1, §3.3, §3.4, §4.3).

use model_sprint::prelude::*;

#[test]
fn table_1c_reproduced_on_the_testbed() {
    let mech = Dvfs::new();
    let profiler = Profiler {
        queries_per_run: 250,
        warmup: 25,
        replays: 1,
        threads: 4,
        seed: 2024,
    };
    for w in Workload::all() {
        let p = profiler.measure_rates(&QueryMix::single(w.kind), &mech);
        let mu_err = (p.mu.qph() - w.dvfs_sustained.qph()).abs() / w.dvfs_sustained.qph();
        let mum_err = (p.mu_m.qph() - w.dvfs_burst.qph()).abs() / w.dvfs_burst.qph();
        assert!(
            mu_err < 0.10,
            "{}: measured µ {} vs published {}",
            w.kind.name(),
            p.mu,
            w.dvfs_sustained
        );
        // Burst measurements include the queue manager's dispatch and
        // interrupt overheads plus the sprint toggle, which cost fast
        // workloads (short sprinted services) a larger relative share.
        assert!(
            mum_err < 0.16,
            "{}: measured µm {} vs published {}",
            w.kind.name(),
            p.mu_m,
            w.dvfs_burst
        );
    }
}

#[test]
fn section_4_3_throttled_jacobi_rates() {
    // Sustained 14.8 qph, sprint 74 qph.
    let mech = CpuThrottle::new(0.2);
    assert!((mech.sustained_rate(WorkloadKind::Jacobi).qph() - 14.8).abs() < 1e-9);
    let sprint = mech.sustained_rate(WorkloadKind::Jacobi).qph()
        * mech.marginal_speedup(WorkloadKind::Jacobi);
    assert!((sprint - 74.0).abs() < 1e-9);
}

#[test]
fn section_3_3_core_scaling_phase_behaviour() {
    // Full-run ~1.87X; the tail phase only ~1.5X.
    let mech = CoreScale::new();
    let agg = mech.marginal_speedup(WorkloadKind::Jacobi);
    assert!((agg - 1.87).abs() < 0.03, "aggregate {agg}");
    let jacobi = Workload::get(WorkloadKind::Jacobi);
    let tail = mech.phase_speedup(WorkloadKind::Jacobi, jacobi.phases.last().unwrap());
    assert!((tail - 1.5).abs() < 0.05, "tail {tail}");
}

#[test]
fn section_3_4_mix_service_rates() {
    // Measured 35 qph (Mix I) and 30 qph (Mix II) — interference pulls
    // both below the no-interference mixture.
    let mech = Dvfs::new();
    let profiler = Profiler {
        queries_per_run: 300,
        warmup: 30,
        replays: 1,
        threads: 4,
        seed: 4,
    };
    let mix_i = profiler.measure_rates(&QueryMix::mix_i(), &mech);
    assert!(
        (mix_i.mu.qph() - 35.0).abs() < 4.0,
        "Mix I measured {} vs paper 35",
        mix_i.mu
    );
    let mix_ii = profiler.measure_rates(&QueryMix::mix_ii(), &mech);
    assert!(
        (mix_ii.mu.qph() - 30.0).abs() < 5.0,
        "Mix II measured {} vs paper 30",
        mix_ii.mu
    );
}

#[test]
fn aws_burstable_policy_arithmetic() {
    // T2.small: 20% share, 5X sprint, 720 sprint-seconds per hour.
    let p = BurstablePolicy::aws_t2_small();
    assert_eq!(p.share, 0.2);
    assert_eq!(p.sprint_multiplier, 5.0);
    assert_eq!(p.budget_secs_per_hour, 720.0);
}
