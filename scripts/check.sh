#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
#
# Offline-safe: the workspace has no external dependencies, and
# --offline makes cargo fail fast instead of touching the network if
# one is ever reintroduced by accident.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline
run cargo fmt --all -- --check
run cargo clippy --all-targets --workspace --offline -- -D warnings

# Reactor record/replay smoke: fixed-seed journal determinism (with and
# without message faults), a file round-trip through the journal format,
# and a tamper-detection self-test. Exits non-zero on any divergence.
run ./target/release/reactor_replay --smoke > /dev/null

# Fleet smoke: a 100-node fleet records, re-executes, and diffs
# bit-identically from one seed, then the canonical coordinator-crash
# run (fleet_report) re-checks the four fleet invariants — bounded
# power, epoch fencing, fail-safe sprinting, convergence — plus
# failover actually happening. Both exit non-zero on any violation.
run ./target/release/reactor_replay --fleet-smoke > /dev/null
run ./target/release/fleet_report > /dev/null

# Bounded chaos smoke sweep: fixed seeds, full grid, a few seconds.
# Runs the fleet scenarios (coordinator crash mid-sprint-wave,
# split-brain, lease-renewal storm) before the randomized sweep. Exits
# non-zero on any recovery- or fleet-invariant violation or any cell
# where supervision fails to improve SLO attainment. (The fixed-seed
# single-node message-fault scenarios moved to the TOML catalog below.)
run ./target/release/chaos_sweep --seeds 8 > /dev/null

# Prediction fast-path gate: asserts fast/reference bit-identity, the
# >=3X explorer speedup, the >=1M preds/min warm shared-cache
# throughput, batched-flat-beats-pointer forest inference, and the
# <=5% enabled-telemetry overhead. When a schema-2 BENCH_qsim.json
# baseline is committed it also diffs every leg against it with
# per-leg tolerance bands (10% on the gated warm throughput leg,
# wider on the load-sensitive cold/ns legs), prints the regression
# table below, and exits non-zero on any band violation.
run ./target/release/perf_smoke

# Telemetry completeness gate: renders the flight-recorder timeline and
# the full metrics table on a fixed seed, and exits non-zero if any
# registered metric family is missing from the report or never fired.
run ./target/release/sprint_report --seed 181 > /dev/null

# Root-cause tracing gate: reruns the fixed-seed chaos scenarios (three
# single-node message-fault scenarios plus the fleet split-brain) with
# causal tracing enabled, reconstructs each causal chain from the
# recorded spans, and exits non-zero unless every scenario's trace is
# bit-identical across replay and dominated by its documented root
# cause (message-drop, message-delay, partition, partition).
run ./target/release/trace_report --smoke > /dev/null

# Scenario catalog gate: executes every scenarios/*.toml file (strict
# parse, unknown keys rejected) at its committed seed and evaluates
# the machine-checked invariants — conservation, replay bit-identity,
# metric/SLO bounds, budget conservation, clean-twin watchdog bounds,
# root-cause recovery, cloning fast-vs-reference bit-identity. Exits
# non-zero if any scenario violates any invariant.
run ./target/release/scenario_run --smoke > /dev/null

# Paper-parity gate: re-measures every anchored figure relation against
# the committed golden values (crates/conformance/golden/anchors.json),
# runs the differential oracles, and proves drift detection by
# perturbing every golden value (--selftest). Exits non-zero on any
# drift. Seed-matrix mode (--seeds 3) is run in CI-ish contexts by
# hand; the per-change gate sticks to the golden seed for speed.
run ./target/release/paper_parity --offline --selftest > /dev/null

echo "All checks passed."
