#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
#
# Offline-safe: the workspace has no external dependencies, and
# --offline makes cargo fail fast instead of touching the network if
# one is ever reintroduced by accident.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline
run cargo fmt --all -- --check
run cargo clippy --all-targets --workspace --offline -- -D warnings

# Bounded chaos smoke sweep: fixed seeds, full grid, a few seconds.
# Exits non-zero on any recovery-invariant violation or any cell where
# supervision fails to improve SLO attainment.
run ./target/release/chaos_sweep --seeds 8 > /dev/null

# Prediction fast-path gate: asserts fast/reference bit-identity, the
# >=3X explorer speedup, and — when a BENCH_qsim.json baseline is
# committed — that pooled prediction throughput has not regressed more
# than 30% below it.
run ./target/release/perf_smoke > /dev/null

echo "All checks passed."
