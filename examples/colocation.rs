//! Burstable-instance colocation (§4.4): how many workloads fit on a
//! node under the SLO with the fixed AWS policy vs model-driven
//! policies, and what that does to revenue — including the profiling
//! break-even timeline of Fig. 14.
//!
//! ```text
//! cargo run --release --example colocation
//! ```

use model_sprint::cloud::colocate::combo;
use model_sprint::cloud::revenue::{break_even_hours, break_even_timeline, SERVER_LIFETIME_HOURS};
use model_sprint::cloud::SloOptions;
use model_sprint::prelude::*;

fn main() -> Result<(), model_sprint::simcore::SprintError> {
    let opts = SloOptions::default();

    // The paper's third combo: four diverse workloads at 50-80% load.
    let demands = combo(3)?;
    println!("demands:");
    for d in &demands {
        println!(
            "  {} at {:.0}% utilization",
            d.kind.name(),
            d.utilization * 100.0
        );
    }

    let mut md_rate = 0.0;
    let mut aws_rate = 0.0;
    for strategy in [
        Strategy::Aws,
        Strategy::ModelDrivenBudgeting,
        Strategy::ModelDrivenSprinting,
    ] {
        let r = colocate(&demands, strategy, &opts)?;
        println!(
            "\n{}: hosts {}/{} workloads (CPU committed {:.2}), revenue ${:.3}/h",
            strategy.name(),
            r.hosted.len(),
            demands.len(),
            r.committed_cpu,
            r.revenue_per_hour()
        );
        for (d, p) in &r.hosted {
            println!(
                "  {}: {:.1}X sprint, {:.0} s/h budget, timeout {:.0} s",
                d.kind.name(),
                p.sprint_multiplier,
                p.budget_secs_per_hour,
                p.timeout_secs
            );
        }
        match strategy {
            Strategy::Aws => aws_rate = r.revenue_per_hour(),
            Strategy::ModelDrivenSprinting => md_rate = r.revenue_per_hour(),
            Strategy::ModelDrivenBudgeting => {}
        }
    }

    // Profiling costs revenue before it pays off (Fig. 14).
    let timeline =
        break_even_timeline(aws_rate, md_rate, demands.len(), SERVER_LIFETIME_HOURS, 2.0)?;
    if let Some(h) = break_even_hours(&timeline) {
        println!(
            "\nmodel-driven sprinting breaks even after {h:.0} hours (~{:.1} days)",
            h / 24.0
        );
    }
    let last = timeline.last().ok_or_else(|| {
        model_sprint::simcore::SprintError::runtime("colocation", "empty break-even timeline")
    })?;
    println!(
        "over a {SERVER_LIFETIME_HOURS:.0}-hour server lifetime: {:.2}X the AWS revenue",
        last.model_hybrid / last.aws
    );
    Ok(())
}
