//! Quickstart: profile a workload, train the hybrid model, predict
//! response time under a sprinting policy, and check the prediction
//! against the ground-truth testbed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use model_sprint::prelude::*;
use model_sprint::profiler::Condition;
use model_sprint::simcore::dist::DistKind;
use model_sprint::testbed::{ArrivalSpec, BudgetSpec, ServerConfig};

fn main() -> Result<(), model_sprint::simcore::SprintError> {
    // 1. The system under study: Jacobi on the DVFS platform.
    let mech = Dvfs::new();
    let mix = QueryMix::single(WorkloadKind::Jacobi);

    // 2. Offline profiling over cluster-sampled conditions (§2.1).
    println!("profiling Jacobi over 30 sampled conditions ...");
    let conditions = SamplingGrid::paper().sample_conditions(30, 42);
    let data = Profiler::default().profile(&mix, &mech, &conditions);
    println!(
        "  measured service rate µ = {:.1} qph, marginal sprint rate µm = {:.1} qph",
        data.profile.mu.qph(),
        data.profile.mu_m.qph()
    );

    // 3. Train the hybrid model: calibrate effective sprint rates
    //    (Eq. 2) and fit the random decision forest (§2.3-2.4).
    println!("training the hybrid model ...");
    let model = train_hybrid(&data, &TrainOptions::default())?;

    // 4. Ask a policy question: 75% load, 90-second timeout, a budget
    //    of 20% of a 500-second refill window.
    let question = Condition {
        utilization: 0.75,
        arrival_kind: DistKind::Exponential,
        timeout_secs: 90.0,
        budget_frac: 0.2,
        refill_secs: 500.0,
    };
    let predicted = model.predict_response_secs(&question);
    println!(
        "predicted mean response time at 75% load, timeout 90 s: {predicted:.1} s \
         (effective sprint rate {:.1} qph)",
        model.effective_rate_qph(&question)
    );

    // 5. Validate against the ground truth (normally unavailable —
    //    that is the point of the model).
    let observed = model_sprint::testbed::server::run(
        ServerConfig {
            mix,
            arrivals: ArrivalSpec::poisson(data.profile.mu.scale(question.utilization)),
            policy: SprintPolicy::new(
                question.timeout(),
                BudgetSpec::FractionOfRefill(question.budget_frac),
                question.refill(),
            ),
            slots: 1,
            num_queries: 600,
            warmup: 60,
            seed: 777,
        },
        &mech,
    )?
    .mean_response_secs();
    println!(
        "observed on the testbed: {observed:.1} s  ->  error {:.1}%",
        (predicted - observed).abs() / observed * 100.0
    );
    Ok(())
}
