//! Fleet quickstart: run a ten-node sprinting fleet under a
//! coordinator crash, watch failover happen, and replay the whole run
//! bit-identically from the same seed.
//!
//! ```text
//! cargo run --release --example fleet_run
//! ```
//!
//! The fleet layer puts N testbed servers behind a cluster load
//! balancer and arbitrates the shared sprint budget with time-bounded
//! leases: a node may sprint only while it holds an unexpired lease,
//! and every failure fails safe — if the lease lapses, the node
//! force-unsprints. To replay any fleet from a recorded spec:
//!
//! ```text
//! cargo run --release -p fleet --bin reactor_replay -- --record-fleet /tmp/fleet.json 7 100
//! cargo run --release -p fleet --bin reactor_replay -- --fleet /tmp/fleet.json
//! ```

use model_sprint::fleet::{run_fleet_journaled, CoordinatorCrash, FleetSpec};
use model_sprint::simcore::SprintError;

fn main() -> Result<(), SprintError> {
    // 1. A canonical small fleet: ten Jacobi servers, two sprint
    //    coordinators, and the shared budget certified by the AWS
    //    T2.small policy (ten T2.smalls admit two concurrent
    //    sprinters).
    let mut spec = FleetSpec::small(7, 10)?;
    println!(
        "fleet: {} nodes, {} coordinators, budget {} concurrent sprinters, lease {:.0}s",
        spec.nodes, spec.coordinators, spec.budget_power, spec.lease_secs
    );

    // 2. Kill the initial primary a minute in. The standby must elect
    //    itself within election_secs and start granting in a fresh,
    //    fenced epoch; the dead coordinator rejoins as a standby later.
    spec.faults.coordinator_crashes.push(CoordinatorCrash {
        coordinator: 0,
        at_secs: 60.0,
        repair_secs: 300.0,
    });

    // 3. Run it, journaled. Every fleet run machine-checks four
    //    invariants as it goes: aggregate sprint power stays within
    //    budget (+ one lease-duration of slack around epoch changes),
    //    no two coordinators grant in the same epoch, lease lapses
    //    force-unsprint immediately, and the run converges.
    let (result, journal) = run_fleet_journaled(&spec)?;
    println!(
        "served {}/{} queries in {:.0}s, sprint fraction {:.3}, budget utilization {:.3}",
        result.served,
        spec.queries_total,
        result.horizon_secs,
        result.sprint_fraction,
        result.budget_utilization
    );
    let s = &result.stats;
    println!(
        "leases: {} grants, {} renewals, {} expiries; failover: {} elections, max epoch {}",
        s.grants, s.renewals, s.expiries, s.elections, s.max_epoch
    );
    assert!(s.elections > 0, "the standby must take over");
    assert!(result.invariants_clean(), "{:?}", result.violations);

    // 4. Same seed, same spec — same run, bit for bit. The journal is
    //    the proof: one event queue, one clock, one seed.
    let (_, replayed) = run_fleet_journaled(&spec)?;
    assert!(journal.diff(&replayed).is_none(), "replay diverged");
    println!(
        "replay: {} journal entries, bit-identical from seed {}",
        journal.len(),
        spec.seed
    );
    Ok(())
}
