//! What-if exploration (§1): "what would response time have been if
//! the sprinting budget had doubled during last week's spike?" —
//! answered entirely from the trained model, without touching the
//! production system.
//!
//! ```text
//! cargo run --release --example what_if
//! ```

use model_sprint::prelude::*;
use model_sprint::profiler::Condition;
use model_sprint::simcore::dist::DistKind;

fn main() -> Result<(), model_sprint::simcore::SprintError> {
    let mech = Dvfs::new();
    let mix = QueryMix::single(WorkloadKind::SparkKmeans);

    println!("profiling Spark K-means on DVFS ...");
    let conditions = SamplingGrid::paper().sample_conditions(40, 123);
    let data = Profiler::default().profile(&mix, &mech, &conditions);
    let model = train_hybrid(&data, &TrainOptions::default())?;

    // "Last week's spike": 95% utilization with the production policy.
    let spike = Condition {
        utilization: 0.95,
        arrival_kind: DistKind::Exponential,
        timeout_secs: 80.0,
        budget_frac: 0.16,
        refill_secs: 500.0,
    };
    let actual = model.predict_response_secs(&spike);
    println!("\nresponse time during the spike (as configured): {actual:.0} s");

    // What-if 1: double the sprinting budget.
    let mut doubled = spike;
    doubled.budget_frac *= 2.0;
    let rt = model.predict_response_secs(&doubled);
    println!(
        "what if the budget had doubled?            {rt:.0} s ({:+.0}%)",
        (rt - actual) / actual * 100.0
    );

    // What-if 2: buy hardware with a better sprinting mechanism. The
    // model's first-principles core lets us swap in a hypothetical
    // 1.3X-faster marginal sprint rate.
    let upgraded = {
        let mut profile = data.profile.clone();
        profile.mu_m = profile.mu_m.scale(1.3);
        let better = Profiler::default();
        let _ = better; // Profiling a hypothetical machine is exactly
                        // what the simulator replaces.
        let sim = SimOptions::default();
        sim.simulate(&profile, &spike, profile.mu_m.qph() / profile.mu.qph())
    };
    println!(
        "what if the sprint rate were 1.3X faster?  {upgraded:.0} s ({:+.0}%)",
        (upgraded - actual) / actual * 100.0
    );

    // What-if 3: sweep the timeout to find the spike-optimal setting.
    let mut best = (spike.timeout_secs, actual);
    for t in [0.0, 20.0, 40.0, 60.0, 100.0, 140.0, 200.0] {
        let mut c = spike;
        c.timeout_secs = t;
        let rt = model.predict_response_secs(&c);
        if rt < best.1 {
            best = (t, rt);
        }
    }
    println!(
        "best timeout for spikes like this:         {:.0} s -> {:.0} s ({:+.0}%)",
        best.0,
        best.1,
        (best.1 - actual) / actual * 100.0
    );
    Ok(())
}
