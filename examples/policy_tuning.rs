//! Model-driven policy tuning (§4.3): pick the timeout for a
//! CPU-throttled Jacobi service by simulated annealing over the hybrid
//! model, and compare against the Few-to-Many and Adrenaline
//! baselines — all validated on the ground-truth testbed.
//!
//! ```text
//! cargo run --release --example policy_tuning
//! ```

use model_sprint::policy::{adrenaline_timeout, explore_timeout, few_to_many_timeout};
use model_sprint::prelude::*;
use model_sprint::profiler::Condition;
use model_sprint::simcore::dist::DistKind;
use model_sprint::testbed::{ArrivalSpec, BudgetSpec, ServerConfig};

fn main() -> Result<(), model_sprint::simcore::SprintError> {
    // §4.3's setup: Jacobi throttled to 20% (sustained 14.8 qph,
    // sprint 74 qph), λ = 11.8 qph, budget for ~5 full sprints.
    let mech = CpuThrottle::new(0.2);
    let mix = QueryMix::single(WorkloadKind::Jacobi);
    let base = Condition {
        utilization: 0.8,
        arrival_kind: DistKind::Exponential,
        timeout_secs: 0.0,
        budget_frac: 243.0 / 3_600.0,
        refill_secs: 3_600.0,
    };

    println!("profiling the throttled service ...");
    let grid = SamplingGrid {
        utilizations: vec![0.5, 0.65, 0.8, 0.95],
        timeouts_secs: vec![0.0, 30.0, 60.0, 100.0, 150.0, 220.0, 300.0],
        refills_secs: vec![1_800.0, 3_600.0],
        budget_fracs: vec![0.05, 0.1, 0.2, 0.3],
        arrival_kinds: vec![DistKind::Exponential],
    };
    let conditions = grid.sample_conditions(48, 7);
    let data = Profiler::default().profile(&mix, &mech, &conditions);
    let model = train_hybrid(&data, &TrainOptions::default())?;

    println!("exploring timeouts with simulated annealing ...");
    let annealed = explore_timeout(
        &model,
        &base,
        &AnnealingConfig {
            iterations: 120,
            bounds_secs: (0.0, 350.0),
            ..AnnealingConfig::default()
        },
    )?;
    let sim = SimOptions::default();
    let ftm = few_to_many_timeout(&data.profile, &base, &sim, (0.0, 2_000.0), 25.0)?;
    let adr = adrenaline_timeout(&data.profile, &base, &sim)?;

    let observe = |timeout_secs: f64| -> f64 {
        let mut c = base;
        c.timeout_secs = timeout_secs;
        model_sprint::testbed::server::run(
            ServerConfig {
                mix: mix.clone(),
                arrivals: ArrivalSpec::poisson(data.profile.mu.scale(c.utilization)),
                policy: SprintPolicy::new(
                    c.timeout(),
                    BudgetSpec::FractionOfRefill(c.budget_frac),
                    c.refill(),
                ),
                slots: 1,
                num_queries: 500,
                warmup: 50,
                seed: 99,
            },
            &mech,
        )
        .expect("validation config is valid")
        .mean_response_secs()
    };

    println!("\npolicy                    timeout   observed mean RT");
    for (name, t) in [
        ("model-driven (annealed)", annealed.best_timeout_secs),
        ("few-to-many", ftm),
        ("adrenaline", adr),
        ("burst-everything", 0.0),
    ] {
        println!("{name:<25} {t:>6.0} s   {:>8.1} s", observe(t));
    }
    Ok(())
}
