//! Spike analysis: time-varying load, online load estimation, and
//! trace export — three deployment-facing extensions around the
//! paper's core (§1's what-if spikes, §5's online estimation).
//!
//! A Jacobi service under CPU throttling sees a 3X arrival spike for
//! ten minutes of every hour. We replay it on the testbed, watch a
//! sliding-window estimator track the load, and ask the first-
//! principles simulator what a doubled budget would have done for the
//! spike windows.
//!
//! ```text
//! cargo run --release --example spike_analysis
//! ```

use model_sprint::prelude::*;
use model_sprint::profiler::Condition;
use model_sprint::simcore::dist::DistKind;
use model_sprint::sprint_core::ArrivalRateEstimator;
use model_sprint::testbed::trace;
use model_sprint::testbed::{ArrivalSpec, BudgetSpec, ServerConfig};

fn main() -> Result<(), model_sprint::simcore::SprintError> {
    let mech = CpuThrottle::new(0.2);
    let mix = QueryMix::single(WorkloadKind::Jacobi);
    let base_rate = Rate::per_hour(14.8 * 0.6);

    // 3X spike for 600 s out of every 3600 s.
    let cfg = ServerConfig {
        mix: mix.clone(),
        arrivals: ArrivalSpec::poisson_with_spike(base_rate, 3.0, 600.0, 3_600.0)?,
        policy: SprintPolicy::new(
            SimDuration::from_secs(120),
            BudgetSpec::Seconds(240.0),
            SimDuration::from_secs(3_600),
        ),
        slots: 1,
        num_queries: 600,
        warmup: 50,
        seed: 2718,
    };
    println!("replaying a spiky hour-long pattern on the testbed ...");
    let result = model_sprint::testbed::server::run(cfg, &mech)?;
    println!(
        "overall mean response {:.0} s; p99 {:.0} s; {} queries sprinted",
        result.mean_response_secs(),
        result.response_quantile_secs(0.99),
        result.records().iter().filter(|q| q.sprinted).count(),
    );

    // Online estimation: feed arrivals through the sliding window and
    // report what the estimator saw in calm vs spike segments.
    let mut calm_est = ArrivalRateEstimator::new(1_800.0, 5);
    let mut spike_samples = 0usize;
    for q in result.records() {
        calm_est.record(q.arrival);
        let phase = q.arrival.as_secs_f64() % 3_600.0;
        if phase >= 3_000.0 {
            spike_samples += 1;
        }
    }
    if let Some(rate) = calm_est.rate() {
        println!(
            "sliding-window estimate at the end of the replay: {:.1} qph \
             (base {:.1} qph; {spike_samples} arrivals landed in spikes)",
            rate.qph(),
            base_rate.qph()
        );
    }

    // Export the first spike window as a trace for offline inspection.
    let spike_queries: Vec<_> = result
        .records()
        .iter()
        .filter(|q| {
            let t = q.arrival.as_secs_f64();
            (3_000.0..4_200.0).contains(&t)
        })
        .cloned()
        .collect();
    if !spike_queries.is_empty() {
        println!("\nfirst spike window, Fig.1-style timeline:");
        println!("{}", trace::ascii_timeline(&spike_queries, 12, 64)?);
        let dir = std::env::temp_dir().join("model_sprint_spike_trace.csv");
        if trace::write_csv(&spike_queries, &dir).is_ok() {
            println!("full trace written to {}", dir.display());
        }
    }

    // What-if: would doubling the budget have tamed the spike? Answer
    // with the first-principles simulator at spike-level load.
    let profile = Profiler::default().measure_rates(&mix, &mech);
    // A 3X spike on a 60%-utilized throttled service is a transient
    // overload; ask the steady-state question just below saturation.
    let spike_util = (0.6 * 3.0 * (14.8 / profile.mu.qph())).min(0.95);
    let spike_cond = Condition {
        utilization: spike_util,
        arrival_kind: DistKind::Exponential,
        timeout_secs: 120.0,
        budget_frac: 240.0 / 3_600.0,
        refill_secs: 3_600.0,
    };
    let sim = SimOptions {
        sim_queries: 600,
        warmup: 60,
        replications: 5,
        ..SimOptions::default()
    };
    let as_is = sim.simulate(&profile, &spike_cond, profile.marginal_speedup());
    let mut doubled = spike_cond;
    doubled.budget_frac *= 2.0;
    let better = sim.simulate(&profile, &doubled, profile.marginal_speedup());
    println!(
        "\nwhat-if at spike load: budget 240 s -> {as_is:.0} s mean RT; \
         budget 480 s -> {better:.0} s ({:+.0}%)",
        (better - as_is) / as_is * 100.0
    );
    Ok(())
}
